"""repro — FARM: distributed recovery for large-scale storage systems.

A full reproduction of *Evaluation of Distributed Recovery in Large-Scale
Storage Systems* (Qin Xin, Ethan L. Miller, Thomas J. E. Schwarz —
HPDC 2004), built as a reusable Python library:

* :mod:`repro.sim` — discrete-event simulation engine (PARSEC substitute);
* :mod:`repro.redundancy` — (m, n) schemes, redundancy groups, and real
  Reed–Solomon / XOR erasure codecs over GF(2^8);
* :mod:`repro.disks` — drive model with bathtub failure rates (Table 1);
* :mod:`repro.placement` — RUSH-style decentralized placement with
  candidate lists, plus a vectorized statistical equivalent;
* :mod:`repro.cluster` — storage-system model, failure detection,
  batch replacement, workload;
* :mod:`repro.core` — **FARM** and the traditional-RAID baseline;
* :mod:`repro.reliability` — fast Monte-Carlo engine, Markov/analytic
  cross-checks;
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation.

Quickstart::

    from repro import SystemConfig, estimate_p_loss

    cfg = SystemConfig()                       # the paper's 2 PB base system
    farm = estimate_p_loss(cfg, n_runs=20)
    raid = estimate_p_loss(cfg.with_(use_farm=False), n_runs=20)
    print(farm.p_loss, "vs", raid.p_loss)
"""

from .config import PAPER_BASE, SystemConfig
from .core import (FarmRecovery, PolicyConfig, RecoveryStats,
                   TraditionalRecovery, simulate_run)
from .disks import BathtubFailureModel, Disk, DiskVintage
from .placement import RandomPlacement, RushPlacement
from .redundancy import (PAPER_SCHEMES, RedundancyGroup, RedundancyScheme,
                         ReedSolomon, XorParity)
from .reliability import (MonteCarloResult, ReliabilitySimulation,
                          estimate_p_loss, wilson_interval)
from .sim import RandomStreams, Simulator

__version__ = "1.0.0"

__all__ = [
    "SystemConfig", "PAPER_BASE",
    "FarmRecovery", "TraditionalRecovery", "PolicyConfig", "RecoveryStats",
    "simulate_run",
    "ReliabilitySimulation", "estimate_p_loss", "MonteCarloResult",
    "wilson_interval",
    "RedundancyScheme", "PAPER_SCHEMES", "RedundancyGroup",
    "ReedSolomon", "XorParity",
    "Disk", "DiskVintage", "BathtubFailureModel",
    "RushPlacement", "RandomPlacement",
    "Simulator", "RandomStreams",
    "__version__",
]
