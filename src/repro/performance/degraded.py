"""Degraded-mode performance: the classical argument for declustering.

The paper's §1–2: "RAID designers have long recognized the benefits of
declustering for system performance ... after a disk failure, the data
needed to reconstruct the lost data is distributed over a number of drives
in the disk array.  Thus, declustering leads to good performance for
storage systems in degraded mode."  The quantitative version is Muntz &
Lui's analysis: in a non-declustered array of ``n`` disks, the survivors
absorb the failed disk's read load *and* serve reconstruction reads,
roughly doubling their utilization; declustered over ``N >> n`` disks the
same work raises per-disk load only by ``O(n/N)``.

This module provides that model for the schemes and geometries used in the
reproduction:

* read amplification of degraded reads (an m/n code turns one read into m);
* per-surviving-disk load factor with ``f`` failed disks, declustered vs
  a dedicated non-declustered array;
* rebuild-traffic interference: the fraction of each survivor's bandwidth
  consumed by FARM reconstruction reads versus the single-spare bottleneck.

Everything is closed form and unit-tested against limiting cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..redundancy.composite import SchemeLike


@dataclass(frozen=True)
class DegradedLoad:
    """Per-surviving-disk load, relative to the healthy-system load (=1)."""

    layout: str            # "declustered" | "dedicated-array"
    n_disks: int           # disks sharing the degraded work
    failed: int
    user_load_factor: float    # serving user reads/writes only
    rebuild_read_share: float  # fraction of bandwidth doing rebuild reads

    @property
    def total_load_factor(self) -> float:
        return self.user_load_factor + self.rebuild_read_share


def degraded_read_amplification(scheme: SchemeLike) -> float:
    """Physical reads needed to serve one logical read of a lost block.

    Mirroring redirects to the surviving replica (1 read); an m/n code
    reconstructs from m surviving blocks (m reads).
    """
    return 1.0 if scheme.m == 1 else float(scheme.m)


def degraded_read_cost(scheme: SchemeLike, degraded_group_seconds: float,
                       read_rate_per_group: float = 1.0) -> float:
    """Extra physical reads incurred while groups sat degraded.

    A degraded group serves each logical read with
    :func:`degraded_read_amplification` physical reads instead of one, so
    with ``read_rate_per_group`` logical reads per group-second the excess
    over healthy operation is ``(amp - 1) * rate * degraded_seconds``.
    ``degraded_group_seconds`` is the engines' summed per-group
    unavailability span total (``RecoveryStats.unavail_group_seconds``),
    so mirrored schemes (amp = 1, reads redirect to the surviving
    replica) cost exactly zero, matching the paper's declustering story.
    """
    if degraded_group_seconds < 0:
        raise ValueError("degraded_group_seconds must be >= 0")
    if read_rate_per_group < 0:
        raise ValueError("read_rate_per_group must be >= 0")
    amp = degraded_read_amplification(scheme)
    return (amp - 1.0) * read_rate_per_group * degraded_group_seconds


def user_load_factor(scheme: SchemeLike, n_disks: int,
                     failed: int = 1) -> float:
    """Relative user-serving load per survivor with ``failed`` disks out.

    The survivors pick up (a) their own share and (b) the failed disks'
    share, amplified by the degraded-read cost.  With load spread over
    ``n_disks - failed`` survivors:

    ``factor = (survivors + failed * amp) / survivors``

    — at ``failed = 0`` this is exactly 1; for a dedicated n-disk RAID-5
    stripe with one failure it gives the classical ~2x (each degraded read
    touches every survivor), and for a mirrored pair exactly 2x.
    """
    if failed < 0 or failed >= n_disks:
        raise ValueError("need 0 <= failed < n_disks")
    if failed == 0:
        return 1.0
    amp = degraded_read_amplification(scheme)
    survivors = n_disks - failed
    # total work: the survivors' own reads (``survivors`` shares) plus the
    # failed disks' reads served degraded (``failed * amp`` shares)
    total_work = survivors + failed * amp
    return total_work / survivors


def rebuild_read_share(cfg: SystemConfig, n_sharing: int) -> float:
    """Fraction of a survivor's bandwidth consumed by reconstruction reads.

    One failed disk carries ``C*u`` bytes; reconstructing it reads
    ``C*u * m`` bytes (scheme read cost) spread over ``n_sharing``
    survivors for the duration of the recovery.  Under FARM the recovery
    lasts one block-window and the reads spread over (nearly) the whole
    cluster; without FARM the spare writes for ``C*u/b`` seconds while the
    same read volume is spread over the survivors for that whole period.
    """
    if n_sharing <= 0:
        raise ValueError("n_sharing must be positive")
    scheme = cfg.scheme
    used = cfg.vintage.capacity_bytes * cfg.target_utilization
    # Rebuilding each lost block reads rebuild_read_bytes; the disk held
    # used/block_bytes blocks, so total reads = used * (read amp).
    amp = scheme.rebuild_read_bytes(cfg.group_user_bytes) \
        / scheme.block_bytes(cfg.group_user_bytes)
    read_bytes = used * amp
    duration = used / cfg.recovery_bandwidth       # recovery period
    per_disk_rate = read_bytes / n_sharing / duration
    return per_disk_rate / cfg.vintage.bandwidth_bps


def compare_layouts(cfg: SystemConfig, failed: int = 1
                    ) -> tuple[DegradedLoad, DegradedLoad]:
    """(declustered, dedicated-array) degraded loads for the config.

    The dedicated array is the bare ``scheme.n``-disk stripe (the spare
    holds no user data) — the traditional layout FARM's Figure 2 contrasts
    against; the declustered layout spreads the same work over the whole
    cluster.
    """
    scheme = cfg.scheme
    big = cfg.n_disks
    small = scheme.n
    declustered = DegradedLoad(
        layout="declustered", n_disks=big, failed=failed,
        user_load_factor=user_load_factor(scheme, big, failed),
        rebuild_read_share=rebuild_read_share(cfg, big - failed))
    dedicated = DegradedLoad(
        layout="dedicated-array", n_disks=small,
        failed=min(failed, small - 1),
        user_load_factor=user_load_factor(scheme, small,
                                          min(failed, small - 1)),
        rebuild_read_share=rebuild_read_share(cfg, small - 1))
    return declustered, dedicated
