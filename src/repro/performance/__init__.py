"""Degraded-mode performance models (the declustering argument)."""

from .degraded import (DegradedLoad, compare_layouts,
                       degraded_read_amplification, degraded_read_cost,
                       rebuild_read_share, user_load_factor)

__all__ = [
    "DegradedLoad", "compare_layouts", "degraded_read_amplification",
    "degraded_read_cost", "rebuild_read_share", "user_load_factor",
]
