"""The (m, n) redundancy-scheme algebra from the paper (§2.1–§2.2).

A scheme stores ``m`` user blocks as ``n`` blocks on ``n`` distinct disks and
survives any ``n - m`` erasures ("m-availability").  The paper's six
configurations:

========  ====  =========  ==================================
name      m/n   tolerance  nature
========  ====  =========  ==================================
1/2       1/2   1          two-way mirroring
1/3       1/3   2          three-way mirroring
2/3       2/3   1          RAID 5 (2+1)
4/5       4/5   1          RAID 5 (4+1)
4/6       4/6   2          Reed–Solomon ECC
8/10      8/10  2          Reed–Solomon ECC
========  ====  =========  ==================================

For a redundancy group holding ``G`` bytes of *user* data (the paper defines
group size as user data only), each block is ``G / m`` bytes, the group
occupies ``G * n / m`` bytes of raw storage, and rebuilding one lost block
reads ``m`` buddy blocks and writes ``G / m`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .reedsolomon import ReedSolomon
    from .xor_parity import XorParity


class SchemeKind(Enum):
    MIRROR = "mirror"
    PARITY = "parity"    # single XOR parity (RAID 5)
    ECC = "ecc"          # generalized Reed-Solomon


@dataclass(frozen=True)
class RedundancyScheme:
    """An m-out-of-n redundancy scheme."""

    m: int
    n: int

    def __post_init__(self) -> None:
        if not 1 <= self.m <= self.n:
            raise ValueError(f"need 1 <= m <= n, got {self.m}/{self.n}")

    # -- identity ------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"{self.m}/{self.n}"

    @property
    def kind(self) -> SchemeKind:
        if self.m == 1:
            return SchemeKind.MIRROR
        if self.n == self.m + 1:
            return SchemeKind.PARITY
        return SchemeKind.ECC

    # -- algebra -------------------------------------------------------- #
    @property
    def tolerance(self) -> int:
        """Number of simultaneous block losses the scheme survives."""
        return self.n - self.m

    @property
    def storage_efficiency(self) -> float:
        """Ratio of user data to raw storage (paper §2.2)."""
        return self.m / self.n

    @property
    def stretch(self) -> float:
        """Raw bytes stored per user byte (1 / efficiency)."""
        return self.n / self.m

    def block_bytes(self, group_user_bytes: float) -> float:
        """Size of each stored block for a group of the given user size."""
        return group_user_bytes / self.m

    def raw_bytes(self, group_user_bytes: float) -> float:
        """Total raw bytes a group occupies across its n disks."""
        return group_user_bytes * self.stretch

    def rebuild_read_bytes(self, group_user_bytes: float) -> float:
        """Bytes read from survivors to rebuild one lost block.

        Mirroring reads the single surviving replica; an m/n code reads m
        buddy blocks of ``G/m`` bytes each, i.e. ``G`` bytes total.
        """
        if self.m == 1:
            return group_user_bytes
        return self.block_bytes(group_user_bytes) * self.m

    def rebuild_write_bytes(self, group_user_bytes: float) -> float:
        """Bytes written to the recovery target to rebuild one lost block."""
        return self.block_bytes(group_user_bytes)

    # -- codec ---------------------------------------------------------- #
    def make_codec(self) -> XorParity | ReedSolomon | None:
        """Instantiate the byte-level codec realizing this scheme.

        Mirroring needs no codec (blocks are verbatim copies); RAID 5 uses
        :class:`~repro.redundancy.xor_parity.XorParity`; general schemes use
        :class:`~repro.redundancy.reedsolomon.ReedSolomon`.
        """
        if self.kind is SchemeKind.MIRROR:
            return None
        if self.kind is SchemeKind.PARITY:
            from .xor_parity import XorParity
            return XorParity(self.m)
        from .reedsolomon import ReedSolomon
        return ReedSolomon(self.m, self.n)

    # -- parsing --------------------------------------------------------- #
    @classmethod
    def parse(cls, text: str) -> "RedundancyScheme":
        """Parse '4/6'-style scheme names."""
        try:
            m_str, n_str = text.strip().split("/")
            return cls(int(m_str), int(n_str))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"cannot parse scheme {text!r}") from exc

    def __str__(self) -> str:
        return self.name


#: The six configurations evaluated in the paper (Figures 3 and 8).
MIRROR_2 = RedundancyScheme(1, 2)
MIRROR_3 = RedundancyScheme(1, 3)
RAID5_2_3 = RedundancyScheme(2, 3)
RAID5_4_5 = RedundancyScheme(4, 5)
ECC_4_6 = RedundancyScheme(4, 6)
ECC_8_10 = RedundancyScheme(8, 10)

PAPER_SCHEMES: tuple[RedundancyScheme, ...] = (
    MIRROR_2, MIRROR_3, RAID5_2_3, RAID5_4_5, ECC_4_6, ECC_8_10,
)
