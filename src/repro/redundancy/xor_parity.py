"""Single-parity (RAID-5 style) coding: the m/(m+1) special case.

An XOR codec is provided separately from Reed–Solomon because (a) it is what
the paper's "RAID 5 schemes" (2/3 and 4/5) use conceptually, and (b) the XOR
path is a useful independent oracle for testing the RS codec at k=1.

In an (m, m+1) XOR code every shard equals the XOR of the other m, so
reconstruction of any single erasure is one pass over the survivors.
"""

from __future__ import annotations

import numpy as np


class XorParity:
    """Systematic (m, m+1) code: one parity block = XOR of m data blocks."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m
        self.n = m + 1
        self.k = 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Shape (m, bs) -> (m+1, bs); last row is the parity."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.m:
            raise ValueError(
                f"expected (m={self.m}, blocksize) array, got {data.shape}")
        parity = np.bitwise_xor.reduce(data, axis=0, keepdims=True)
        return np.concatenate([data, parity], axis=0)

    def reconstruct_shard(self, shards: dict[int, np.ndarray],
                          target: int) -> np.ndarray:
        """Rebuild one lost shard as the XOR of the other m shards."""
        if not 0 <= target < self.n:
            raise ValueError(f"target {target} out of range 0..{self.n - 1}")
        others = [np.asarray(shards[i], dtype=np.uint8)
                  for i in range(self.n) if i != target and i in shards]
        if len(others) < self.m:
            raise ValueError(
                f"need all {self.m} other shards, got {len(others)}")
        return np.bitwise_xor.reduce(np.stack(others), axis=0)

    def decode(self, shards: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the m data blocks from any m of the m+1 shards."""
        if len(shards) < self.m:
            raise ValueError(f"need {self.m} shards, got {len(shards)}")
        blocks = {i: np.asarray(v, dtype=np.uint8) for i, v in shards.items()}
        missing = [i for i in range(self.m) if i not in blocks]
        if missing:
            # exactly one data shard can be missing with m survivors
            blocks[missing[0]] = self.reconstruct_shard(blocks, missing[0])
        return np.stack([blocks[i] for i in range(self.m)])
