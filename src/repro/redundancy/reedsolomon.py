"""Systematic Reed–Solomon erasure coding over GF(2^8).

This is the real codec behind the paper's *m/n schemes*: ``m`` user data
blocks are encoded into ``n = m + k`` blocks (the first ``m`` are the data
verbatim, the last ``k`` are generalized parity) such that *any* ``m`` of the
``n`` blocks reconstruct everything.  Construction follows Plank's tutorial
(with the Plank–Ding correction): an ``n x m`` Vandermonde matrix is
column-reduced so its top ``m x m`` block is the identity, which preserves
the property that every ``m x m`` row submatrix is invertible.

Example
-------
>>> import numpy as np
>>> rs = ReedSolomon(m=4, n=6)
>>> data = np.frombuffer(b"abcdefgh" * 2, dtype=np.uint8).reshape(4, 4)
>>> blocks = rs.encode(data)
>>> got = rs.decode({0: blocks[0], 3: blocks[3], 4: blocks[4], 5: blocks[5]})
>>> bool((got == data).all())
True
"""

from __future__ import annotations

import numpy as np

from .gf256 import gf_mat_inv, gf_matmul, vandermonde


class DecodeError(ValueError):
    """Raised when too few blocks survive to reconstruct the data."""


class ReedSolomon:
    """A systematic (m, n) Reed–Solomon erasure code.

    Parameters
    ----------
    m:
        Number of user data blocks (the code dimension).
    n:
        Total number of stored blocks; ``k = n - m`` parity blocks are
        generated, and the code tolerates any ``k`` erasures.
    """

    def __init__(self, m: int, n: int) -> None:
        if not 1 <= m <= n:
            raise ValueError(f"need 1 <= m <= n, got m={m} n={n}")
        if n > 255:
            raise ValueError("GF(256) Reed-Solomon supports n <= 255")
        self.m = m
        self.n = n
        self.k = n - m
        self.generator = self._systematic_generator(m, n)

    @staticmethod
    def _systematic_generator(m: int, n: int) -> np.ndarray:
        """n x m generator whose top m x m block is the identity."""
        v = vandermonde(n, m)
        top_inv = gf_mat_inv(v[:m, :m])
        gen = gf_matmul(v, top_inv)
        # The construction guarantees an exact identity on top; assert it so
        # a table bug cannot silently corrupt data.
        assert np.array_equal(gen[:m], np.eye(m, dtype=np.uint8))
        return gen

    # ------------------------------------------------------------------ #
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``m`` equal-length data blocks into ``n`` blocks.

        ``data`` has shape (m, blocksize) and dtype uint8; the result has
        shape (n, blocksize) whose first m rows equal ``data``.
        """
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.m:
            raise ValueError(
                f"expected (m={self.m}, blocksize) array, got {data.shape}")
        return gf_matmul(self.generator, data)

    def parity(self, data: np.ndarray) -> np.ndarray:
        """Return only the k parity blocks for ``data``."""
        return self.encode(data)[self.m:]

    def decode(self, shards: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the m data blocks from any m surviving shards.

        Parameters
        ----------
        shards:
            Mapping from shard index (0 <= i < n) to its byte content.  At
            least ``m`` entries are required; extras are ignored
            deterministically (lowest indexes win).
        """
        if len(shards) < self.m:
            raise DecodeError(
                f"need {self.m} shards to decode, got {len(shards)}")
        idx = sorted(shards)[:self.m]
        for i in idx:
            if not 0 <= i < self.n:
                raise ValueError(f"shard index {i} out of range 0..{self.n-1}")
        rows = np.stack([np.asarray(shards[i], dtype=np.uint8) for i in idx])
        if rows.ndim != 2:
            raise ValueError("shards must be 1-D byte arrays of equal length")
        sub = self.generator[idx, :]
        return gf_matmul(gf_mat_inv(sub), rows)

    def reconstruct_shard(self, shards: dict[int, np.ndarray],
                          target: int) -> np.ndarray:
        """Rebuild a single lost shard ``target`` from m survivors.

        This is exactly the FARM recovery operation: read ``m`` buddies,
        produce the lost block.
        """
        if not 0 <= target < self.n:
            raise ValueError(f"target {target} out of range 0..{self.n-1}")
        data = self.decode(shards)
        return gf_matmul(self.generator[target:target + 1, :], data)[0]

    def update_parity(self, old_parity: np.ndarray, data_index: int,
                      old_block: np.ndarray,
                      new_block: np.ndarray) -> np.ndarray:
        """RAID-5-style small-write parity update (paper §2.2).

        When a single data block changes, each parity block is updated from
        the delta without re-reading the other data blocks:
        ``p_j' = p_j + G[m+j, i] * (d_i + d_i')``.
        """
        if not 0 <= data_index < self.m:
            raise ValueError(f"data index {data_index} out of range")
        old_parity = np.asarray(old_parity, dtype=np.uint8)
        if old_parity.shape[0] != self.k:
            raise ValueError(f"expected {self.k} parity blocks")
        delta = np.bitwise_xor(np.asarray(old_block, dtype=np.uint8),
                               np.asarray(new_block, dtype=np.uint8))
        coeff = self.generator[self.m:, data_index:data_index + 1]
        from .gf256 import gf_mul
        return np.bitwise_xor(old_parity, gf_mul(coeff, delta[None, :]))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReedSolomon(m={self.m}, n={self.n})"
