"""Arithmetic in GF(2^8), vectorized over NumPy byte arrays.

The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) — the 0x11d polynomial
used by most storage erasure codes.  Multiplication uses log/antilog tables;
all operations broadcast over ``uint8`` arrays.
"""

from __future__ import annotations

import numpy as np

#: The primitive polynomial (0x11d) defining the field.
PRIMITIVE_POLY = 0x11D
#: Field order.
ORDER = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    exp[255:510] = exp[0:255]  # duplicated so exp[a+b] needs no mod
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_add(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
    """Addition (== subtraction) in GF(2^8) is XOR."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8),
                          np.asarray(b, dtype=np.uint8))


gf_sub = gf_add


def gf_mul(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
    """Element-wise product in GF(2^8)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    out = EXP_TABLE[LOG_TABLE[a.astype(np.int32)]
                    + LOG_TABLE[b.astype(np.int32)]]
    zero = (a == 0) | (b == 0)
    return np.where(zero, 0, out).astype(np.uint8)


def gf_inv(a: np.ndarray | int) -> np.ndarray:
    """Multiplicative inverse; raises on zero."""
    a = np.asarray(a, dtype=np.uint8)
    if np.any(a == 0):
        raise ZeroDivisionError("inverse of 0 in GF(256)")
    return EXP_TABLE[255 - LOG_TABLE[a.astype(np.int32)]].astype(np.uint8)


def gf_div(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
    """Element-wise quotient a / b in GF(2^8); raises on b == 0."""
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by 0 in GF(256)")
    a = np.asarray(a, dtype=np.uint8)
    out = EXP_TABLE[(LOG_TABLE[a.astype(np.int32)]
                     - LOG_TABLE[b.astype(np.int32)]) % 255]
    return np.where(a == 0, 0, out).astype(np.uint8)


def gf_pow(a: int, n: int) -> int:
    """Scalar exponentiation a**n in GF(2^8)."""
    a = int(a)
    if a == 0:
        return 0 if n > 0 else 1
    return int(EXP_TABLE[(LOG_TABLE[a] * (n % 255)) % 255])


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    ``a`` is (r, k), ``b`` is (k, c); the result is (r, c).  Implemented as a
    loop over the contraction dimension with vectorized row scaling, which is
    fast for the small code dimensions used here (k <= 32).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        # outer product of column j of a with row j of b, accumulated by XOR
        out ^= gf_mul(a[:, j:j + 1], b[j:j + 1, :])
    return out


def gf_mat_inv(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination."""
    m = np.asarray(m, dtype=np.uint8)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    n = m.shape[0]
    aug = np.concatenate([m.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        # find pivot
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # normalize pivot row
        aug[col] = gf_div(aug[col], aug[col, col])
        # eliminate other rows
        for row in range(n):
            if row != col and aug[row, col]:
                aug[row] = gf_add(aug[row], gf_mul(aug[row, col], aug[col]))
    return aug[:, n:].copy()


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = (i+1)^j over GF(2^8).

    Using generators ``1..rows`` keeps every square submatrix of the first
    ``cols`` rows nonsingular for the sizes used by storage codes.
    """
    if rows > 255:
        raise ValueError("at most 255 rows in GF(256) Vandermonde")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i + 1, j)
    return out
