"""Redundancy groups: the unit of redundancy and of recovery (paper §2.1).

A *redundancy group* is a set of ``n`` blocks — ``m`` user-data blocks plus
replicas or parity — placed on ``n`` distinct disks.  Blocks in a group are
*buddies*; each is identified by ``<grp_id, rep_id>`` exactly as in the
paper's Figure 1.  The group tracks which blocks are currently failed and
whether the group has been lost (more than ``n - m`` simultaneous losses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .schemes import RedundancyScheme


class GroupState(Enum):
    HEALTHY = "healthy"        # all n blocks present
    DEGRADED = "degraded"      # >= 1 block failed, still recoverable
    LOST = "lost"              # fewer than m blocks survive


@dataclass(frozen=True)
class BlockId:
    """Identifier of one block: group id plus replica index (Figure 1)."""

    grp_id: int
    rep_id: int

    def __str__(self) -> str:
        return f"<{self.grp_id}, {self.rep_id}>"


@dataclass
class RedundancyGroup:
    """State machine for one redundancy group.

    Parameters
    ----------
    grp_id:
        Group identifier.
    scheme:
        The (m, n) redundancy scheme.
    user_bytes:
        User data stored in the group (the paper's "size of a redundancy
        group" — replicas/parity excluded).
    disks:
        The n disk ids currently holding the group's blocks, indexed by
        rep_id.  A value of ``-1`` marks a block that is failed and not yet
        rebuilt.
    """

    grp_id: int
    scheme: RedundancyScheme
    user_bytes: float
    disks: list[int]
    failed: set[int] = field(default_factory=set)
    lost: bool = False
    loss_time: float | None = None

    def __post_init__(self) -> None:
        if len(self.disks) != self.scheme.n:
            raise ValueError(
                f"group {self.grp_id}: expected {self.scheme.n} disks, "
                f"got {len(self.disks)}")
        if len(set(self.disks)) != len(self.disks):
            raise ValueError(
                f"group {self.grp_id}: blocks must be on distinct disks")

    # -- queries --------------------------------------------------------- #
    @property
    def n(self) -> int:
        return self.scheme.n

    @property
    def m(self) -> int:
        return self.scheme.m

    @property
    def surviving(self) -> int:
        """Number of blocks currently readable."""
        return self.n - len(self.failed)

    @property
    def state(self) -> GroupState:
        if self.lost:
            return GroupState.LOST
        return GroupState.DEGRADED if self.failed else GroupState.HEALTHY

    def block_ids(self) -> list[BlockId]:
        return [BlockId(self.grp_id, r) for r in range(self.n)]

    def buddies_of(self, rep_id: int) -> list[int]:
        """Disks holding the other blocks of this group (recovery sources)."""
        return [d for r, d in enumerate(self.disks)
                if r != rep_id and r not in self.failed]

    def holds_buddy(self, disk_id: int) -> bool:
        """True if the disk already holds a live block of this group.

        Used by the recovery-target constraints: a new replica must not land
        on a disk that already has a buddy (paper §2.3, constraint (b)).
        """
        return any(d == disk_id for r, d in enumerate(self.disks)
                   if r not in self.failed)

    def _data_unrecoverable(self) -> bool:
        """Whether the current failed set defeats the scheme.

        Plain m/n codes lose when fewer than m blocks survive; composite
        schemes (repro.redundancy.composite) supply a set-based
        ``is_lost`` predicate instead.
        """
        is_lost = getattr(self.scheme, "is_lost", None)
        if is_lost is not None:
            return bool(is_lost(self.failed))
        return self.surviving < self.m

    # -- transitions ----------------------------------------------------- #
    def fail_block(self, rep_id: int, now: float) -> GroupState:
        """Record the loss of block ``rep_id``; returns the new state."""
        if not 0 <= rep_id < self.n:
            raise ValueError(f"rep_id {rep_id} out of range")
        self.failed.add(rep_id)
        if not self.lost and self._data_unrecoverable():
            self.lost = True
            self.loss_time = now
        return self.state

    def complete_rebuild(self, rep_id: int, target_disk: int,
                         allow_buddy: bool = False) -> None:
        """A failed block has been reconstructed onto ``target_disk``.

        ``allow_buddy`` permits co-locating two blocks of this group on one
        disk — only for ablation studies of the placement constraint (a
        later failure of that disk then correctly counts as a double block
        loss via :meth:`fail_disk`).
        """
        if rep_id not in self.failed:
            raise ValueError(
                f"group {self.grp_id}: block {rep_id} is not failed")
        if not allow_buddy and self.holds_buddy(target_disk):
            raise ValueError(
                f"group {self.grp_id}: target disk {target_disk} already "
                f"holds a buddy")
        self.failed.discard(rep_id)
        self.disks[rep_id] = target_disk

    def fail_disk(self, disk_id: int, now: float) -> list[int]:
        """Fail every block the group keeps on ``disk_id``.

        Returns the rep_ids that were failed (usually one; zero if the disk
        holds no live block of this group).
        """
        hit = [r for r, d in enumerate(self.disks)
               if d == disk_id and r not in self.failed]
        for r in hit:
            self.fail_block(r, now)
        return hit
