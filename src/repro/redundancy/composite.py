"""Mixed redundancy schemes (paper §2.2).

Beyond plain m/n threshold codes, the paper mentions "mixed schemes that
structure a redundancy group by data blocks and an (XOR-)parity block, and
a mirror of the data blocks with parity".  Such schemes are *not*
threshold codes: whether data survives depends on **which** blocks die,
not just how many.  This module provides the abstraction — a scheme with a
set-based survival predicate — plus the paper's mixed scheme:

:class:`MirroredParity(m)`
    Two mirrored copies of an (m+1)-block RAID-5 stripe, ``2(m+1)`` blocks
    in total.  A stripe *position* (one of the m data blocks or the
    parity) is dead only when both of its copies are lost; the data
    survives as long as at most one position is dead (the stripe's XOR
    rebuilds one missing position).  Guaranteed tolerance is therefore 3
    (any three block losses kill at most one position), and many 4-loss
    patterns survive too — at a storage efficiency of ``m / (2(m+1))``.

Composite schemes run on the object engine (whose redundancy groups track
the exact failed set); the flat-array Monte-Carlo engine is threshold-only
and rejects them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

from .schemes import RedundancyScheme, SchemeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .xor_parity import XorParity


@dataclass(frozen=True)
class MirroredParity:
    """Mirror of an (m+1)-block XOR-parity stripe ("RAID 5+1").

    Block position ``p`` (0 <= p < 2(m+1)) is copy ``p // (m+1)`` of
    stripe index ``p % (m+1)``; index ``m`` is the parity.
    """

    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")

    # -- identity (same surface as RedundancyScheme) -------------------- #
    @property
    def n(self) -> int:
        return 2 * (self.m + 1)

    @property
    def name(self) -> str:
        return f"mirrored-raid5({self.m}+1)x2"

    @property
    def kind(self) -> SchemeKind:
        return SchemeKind.ECC

    # -- algebra ---------------------------------------------------------- #
    @property
    def tolerance(self) -> int:
        """Guaranteed (worst-case) tolerance.

        Three losses can kill at most one stripe position (two of them
        must pair up on a single position); the XOR stripe rebuilds one
        dead position, so any 3 losses are survivable.  Four losses can
        kill two positions (2 + 2), which is fatal.
        """
        return 3

    @property
    def storage_efficiency(self) -> float:
        return self.m / self.n

    @property
    def stretch(self) -> float:
        return self.n / self.m

    def block_bytes(self, group_user_bytes: float) -> float:
        return group_user_bytes / self.m

    def raw_bytes(self, group_user_bytes: float) -> float:
        return group_user_bytes * self.stretch

    def rebuild_read_bytes(self, group_user_bytes: float) -> float:
        """Preferred rebuild reads the surviving mirror copy (one block);
        falls back to an m-block XOR reconstruction when the copy is gone.
        We model the cheap path, like plain mirroring."""
        return self.block_bytes(group_user_bytes)

    def rebuild_write_bytes(self, group_user_bytes: float) -> float:
        return self.block_bytes(group_user_bytes)

    # -- the set-based survival predicate --------------------------------- #
    def position_of(self, rep_id: int) -> tuple[int, int]:
        """(copy, stripe index) of a block."""
        if not 0 <= rep_id < self.n:
            raise ValueError(f"rep_id {rep_id} out of range")
        return divmod(rep_id, self.m + 1)

    def is_lost(self, failed: Iterable[int]) -> bool:
        """Data is lost when two or more stripe positions are fully dead."""
        dead_count: dict[int, int] = {}
        for rep in failed:
            idx = rep % (self.m + 1)
            dead_count[idx] = dead_count.get(idx, 0) + 1
        fully_dead = sum(1 for c in dead_count.values() if c == 2)
        return fully_dead >= 2

    def make_codec(self) -> XorParity:
        """Byte-level realization: the stripe's XOR codec (copies are
        verbatim mirrors, so one codec serves both)."""
        from .xor_parity import XorParity
        return XorParity(self.m)

    def __str__(self) -> str:
        return self.name


#: Anything with the RedundancyScheme surface: plain threshold codes, or
#: composite schemes carrying a set-based ``is_lost`` predicate.
SchemeLike = Union[RedundancyScheme, MirroredParity]


def pattern_is_lost(scheme: SchemeLike, failed: Iterable[int]) -> bool:
    """Whether a failed-block set defeats ``scheme`` (works for both
    threshold and composite schemes)."""
    is_lost = getattr(scheme, "is_lost", None)
    if is_lost is not None:
        return bool(is_lost(set(failed)))
    return len(set(failed)) > scheme.tolerance


def exhaustive_tolerance(scheme: SchemeLike) -> int:
    """Guaranteed tolerance by exhaustive search over failure patterns.

    The largest k such that *every* k-subset of block positions is
    survivable.  Exponential in n — intended for n <= ~12 (tests, the
    mixed-scheme study), where it serves as an oracle for a scheme's
    declared ``tolerance``.
    """
    import itertools
    for k in range(1, scheme.n + 1):
        for subset in itertools.combinations(range(scheme.n), k):
            if pattern_is_lost(scheme, subset):
                return k - 1
    return scheme.n


def survival_fraction(scheme: SchemeLike, k: int) -> float:
    """Fraction of k-failure patterns the scheme survives.

    ``k`` beyond the scheme's block count means the whole group is gone:
    the fraction is 0.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k > scheme.n:
        return 0.0
    import itertools
    patterns = list(itertools.combinations(range(scheme.n), k))
    survived = sum(1 for p in patterns if not pattern_is_lost(scheme, p))
    return survived / len(patterns)


def is_threshold_scheme(scheme: SchemeLike) -> bool:
    """Whether loss depends only on the number of failed blocks.

    Threshold schemes (all plain m/n codes) work on both engines; schemes
    with a custom set-based ``is_lost`` need the object engine.
    """
    return not hasattr(scheme, "is_lost")
