"""Redundancy substrate: schemes, groups, and real erasure codecs."""

from .composite import MirroredParity, is_threshold_scheme
from .group import BlockId, GroupState, RedundancyGroup
from .reedsolomon import DecodeError, ReedSolomon
from .schemes import (ECC_4_6, ECC_8_10, MIRROR_2, MIRROR_3, PAPER_SCHEMES,
                      RAID5_2_3, RAID5_4_5, RedundancyScheme, SchemeKind)
from .xor_parity import XorParity

__all__ = [
    "RedundancyScheme", "SchemeKind", "PAPER_SCHEMES",
    "MIRROR_2", "MIRROR_3", "RAID5_2_3", "RAID5_4_5", "ECC_4_6", "ECC_8_10",
    "ReedSolomon", "DecodeError", "XorParity",
    "RedundancyGroup", "BlockId", "GroupState",
    "MirroredParity", "is_threshold_scheme",
]
