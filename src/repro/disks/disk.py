"""Per-disk dynamic state.

A :class:`Disk` tracks the mutable quantities the recovery engines care
about: liveness, bytes used (primary data plus recovered replicas), and
deployment time (which, with the vintage's failure model, determines the
drive's age-dependent failure behaviour).

The reliability Monte-Carlo keeps the same quantities in flat NumPy arrays
(see :mod:`repro.reliability.simulation`); this object model is the public
API used by examples, the object-level FARM engine, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .vintage import PAPER_VINTAGE, DiskVintage


class DiskState(Enum):
    ONLINE = "online"
    OFFLINE = "offline"   # transient outage: data intact, disk unreachable
    FAILED = "failed"
    RETIRED = "retired"   # removed at EODL / replaced


@dataclass
class Disk:
    """One disk drive.

    Parameters
    ----------
    disk_id:
        Stable integer identifier (placement key).
    vintage:
        Static generation properties.
    deployed_at:
        Simulation time the drive entered service (age 0 at this time).
    spare_reserve_fraction:
        Fraction of capacity that must remain free at initial data placement
        so it is available for recovered data (paper: ~4% at initialization).
    """

    disk_id: int
    vintage: DiskVintage = PAPER_VINTAGE
    deployed_at: float = 0.0
    spare_reserve_fraction: float = 0.04
    state: DiskState = DiskState.ONLINE
    used_bytes: float = 0.0
    failed_at: float | None = None
    #: Recovery-bandwidth multiplier in (0, 1]; < 1 marks a straggler whose
    #: rebuilds stretch by 1/factor (the slowest participant of a rebuild
    #: bounds its throughput).
    bandwidth_factor: float = 1.0
    #: Latent sector errors: (grp_id, rep_id) -> corruption time.  The block
    #: is silently unreadable; nothing notices until a scrub or a rebuild
    #: read touches it.
    latent_blocks: dict[tuple[int, int], float] = field(default_factory=dict)
    offline_since: float | None = None
    offline_seconds: float = 0.0

    # -- geometry -------------------------------------------------------- #
    @property
    def capacity_bytes(self) -> float:
        return self.vintage.capacity_bytes

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use."""
        return self.used_bytes / self.capacity_bytes

    def age(self, now: float) -> float:
        """Drive age in seconds at simulation time ``now``."""
        if now < self.deployed_at:
            raise ValueError(f"now={now} precedes deployment "
                             f"{self.deployed_at} of disk {self.disk_id}")
        return now - self.deployed_at

    # -- state ------------------------------------------------------------ #
    @property
    def online(self) -> bool:
        return self.state is DiskState.ONLINE

    @property
    def dead(self) -> bool:
        """Permanently gone (failed or retired) — unlike a transient outage."""
        return self.state in (DiskState.FAILED, DiskState.RETIRED)

    def fail(self, now: float) -> None:
        """Permanent failure; legal from ONLINE or OFFLINE (a disk can die
        during a transient outage)."""
        if self.dead:
            raise ValueError(f"disk {self.disk_id} is already dead")
        if self.state is DiskState.OFFLINE:
            self._accumulate_outage(now)
        self.state = DiskState.FAILED
        self.failed_at = now

    def retire(self) -> None:
        if self.state is not DiskState.ONLINE:
            raise ValueError(f"disk {self.disk_id} is not online")
        self.state = DiskState.RETIRED

    def set_offline(self, now: float) -> None:
        """Begin a transient outage: the disk is unreachable but its data
        survives and returns intact on :meth:`restore`."""
        if self.state is not DiskState.ONLINE:
            raise ValueError(f"disk {self.disk_id} is not online")
        self.state = DiskState.OFFLINE
        self.offline_since = now

    def restore(self, now: float) -> None:
        """End a transient outage (inverse of :meth:`set_offline`)."""
        if self.state is not DiskState.OFFLINE:
            raise ValueError(f"disk {self.disk_id} is not offline")
        self._accumulate_outage(now)
        self.state = DiskState.ONLINE

    def _accumulate_outage(self, now: float) -> None:
        if self.offline_since is not None:
            self.offline_seconds += now - self.offline_since
            self.offline_since = None

    # -- latent sector errors --------------------------------------------- #
    def add_latent_error(self, grp_id: int, rep_id: int, now: float) -> None:
        """Silently corrupt block ``<grp_id, rep_id>`` held by this disk."""
        self.latent_blocks.setdefault((grp_id, rep_id), now)

    def clear_latent_error(self, grp_id: int, rep_id: int) -> float | None:
        """Forget a latent error; returns its corruption time if present."""
        return self.latent_blocks.pop((grp_id, rep_id), None)

    def has_latent_error(self, grp_id: int, rep_id: int) -> bool:
        return (grp_id, rep_id) in self.latent_blocks

    # -- allocation -------------------------------------------------------- #
    def can_accept(self, nbytes: float, initial_placement: bool = False
                   ) -> bool:
        """Whether ``nbytes`` more data fit on this disk.

        During *initial placement* the spare reserve must be preserved
        (constraint from paper §3.1); recovered data may dig into the
        reserve — that is what it is for.
        """
        limit = self.capacity_bytes
        if initial_placement:
            limit *= (1.0 - self.spare_reserve_fraction)
        return self.online and self.used_bytes + nbytes <= limit

    def allocate(self, nbytes: float, initial_placement: bool = False) -> None:
        """Account for ``nbytes`` of new data on this disk."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if not self.can_accept(nbytes, initial_placement):
            raise ValueError(
                f"disk {self.disk_id} cannot accept {nbytes:.3g} B "
                f"(used {self.used_bytes:.3g}/{self.capacity_bytes:.3g})")
        self.used_bytes += nbytes

    def release(self, nbytes: float) -> None:
        """Account for data removed (e.g. migrated off) this disk."""
        if nbytes < 0 or nbytes > self.used_bytes + 1e-6:
            raise ValueError(
                f"disk {self.disk_id}: invalid release of {nbytes:.3g} B")
        self.used_bytes = max(0.0, self.used_bytes - nbytes)
