"""Bathtub (piecewise-constant hazard) disk failure model.

The paper (Table 1, following Elerath and the IDEMA R2-98 standard) rejects
the flat-MTBF assumption: drives fail at a high rate when young ("infant
mortality") and the rate decays toward a steady state as they age.  Failure
rates are quoted the way the industry quotes them — percent of the installed
population failing per 1000 power-on hours — as a step function of drive age.

This module turns that schedule into a proper hazard function and provides
exact inverse-CDF sampling of failure ages, vectorized over whole batches of
disks.  The sampler supports conditioning on current age (a disk that has
survived to age ``a`` draws from the conditional distribution), which is what
makes batch replacement and the cohort effect (paper §3.6) work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import HOUR, MONTH


@dataclass(frozen=True)
class RatePeriod:
    """One row of Table 1: a drive-age interval and its failure rate."""

    start_months: float
    end_months: float           # inf for the final period
    pct_per_1000h: float        # percent of population per 1000 hours

    @property
    def hazard_per_second(self) -> float:
        return self.pct_per_1000h / 100.0 / (1000.0 * HOUR)


#: Table 1 of the paper (rates reconstructed per DESIGN.md §1): infant
#: mortality of 0.5%/1000 h decaying to 0.2%/1000 h steady state.
ELERATH_TABLE1: tuple[RatePeriod, ...] = (
    RatePeriod(0.0, 3.0, 0.50),
    RatePeriod(3.0, 6.0, 0.35),
    RatePeriod(6.0, 12.0, 0.25),
    RatePeriod(12.0, float("inf"), 0.20),
)


class BathtubFailureModel:
    """Piecewise-constant hazard over drive age, with exact sampling.

    Parameters
    ----------
    periods:
        Age intervals with rates; must start at 0, be contiguous, and end
        with an unbounded period.
    rate_multiplier:
        Scales every rate (Figure 8(b) uses 2.0 for "disks with a failure
        rate twice that listed in Table 1").
    """

    def __init__(self, periods: tuple[RatePeriod, ...] = ELERATH_TABLE1,
                 rate_multiplier: float = 1.0) -> None:
        if not periods:
            raise ValueError("at least one rate period required")
        if periods[0].start_months != 0.0:
            raise ValueError("first period must start at age 0")
        for a, b in zip(periods, periods[1:]):
            if a.end_months != b.start_months:
                raise ValueError("rate periods must be contiguous")
        if periods[-1].end_months != float("inf"):
            raise ValueError("last period must be unbounded")
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        self.periods = tuple(periods)
        self.rate_multiplier = float(rate_multiplier)

        # Precompute boundaries (seconds) and per-second hazards.
        self._bounds = np.array(
            [p.start_months * MONTH for p in periods] + [np.inf])
        self._rates = np.array(
            [p.hazard_per_second * rate_multiplier for p in periods])
        # Cumulative hazard at each boundary start.
        seg = np.diff(self._bounds[:-1])
        self._cum = np.concatenate([[0.0], np.cumsum(self._rates[:-1] * seg)])

    def scaled(self, multiplier: float) -> "BathtubFailureModel":
        """A copy of this model with all rates multiplied."""
        return BathtubFailureModel(
            self.periods, self.rate_multiplier * multiplier)

    # Value semantics: two models with the same rate schedule are the
    # same model.  Needed so configs round-trip through the canonical
    # serialization (repro.config.config_from_dict) as *equal* objects,
    # and kept consistent with hashing since DiskVintage (a frozen,
    # hashable dataclass) embeds this as a field.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BathtubFailureModel):
            return NotImplemented
        return (self.periods == other.periods
                and self.rate_multiplier == other.rate_multiplier)

    def __hash__(self) -> int:
        from ..sim.rng import stable_hash64
        return stable_hash64(self.periods, self.rate_multiplier)

    # ------------------------------------------------------------------ #
    def hazard(self, age: np.ndarray | float) -> np.ndarray:
        """Instantaneous failure rate (per second) at drive age (seconds)."""
        age = np.asarray(age, dtype=float)
        if np.any(age < 0):
            raise ValueError("age must be non-negative")
        idx = np.searchsorted(self._bounds, age, side="right") - 1
        idx = np.clip(idx, 0, len(self._rates) - 1)
        return self._rates[idx]

    def cumulative_hazard(self, age: np.ndarray | float) -> np.ndarray:
        """H(age) = integral of the hazard from 0 to ``age``."""
        age = np.asarray(age, dtype=float)
        if np.any(age < 0):
            raise ValueError("age must be non-negative")
        idx = np.searchsorted(self._bounds, age, side="right") - 1
        idx = np.clip(idx, 0, len(self._rates) - 1)
        return self._cum[idx] + self._rates[idx] * (age - self._bounds[idx])

    def survival(self, age: np.ndarray | float) -> np.ndarray:
        """P(drive survives past ``age``)."""
        return np.exp(-self.cumulative_hazard(age))

    def _invert_cumulative(self, target: np.ndarray) -> np.ndarray:
        """Age a such that H(a) == target (vectorized exact inverse)."""
        idx = np.searchsorted(self._cum, target, side="right") - 1
        idx = np.clip(idx, 0, len(self._rates) - 1)
        return self._bounds[idx] + (target - self._cum[idx]) / self._rates[idx]

    def sample_failure_age(self, rng: np.random.Generator, size: int,
                           current_age: np.ndarray | float = 0.0
                           ) -> np.ndarray:
        """Draw failure *ages* for ``size`` drives.

        ``current_age`` conditions the draw: a drive that has already
        survived to age ``a`` fails at an age drawn from the conditional
        residual-life distribution; i.e. we solve
        ``H(age) = H(current_age) - ln(U)`` for age.
        """
        u = rng.random(size)
        if np.ndim(current_age) == 0 and float(current_age) == 0.0:
            # New-drive fast path: H(0) == 0 exactly, so the conditional
            # draw degenerates to the unconditional one.  Bit-identical
            # to the general branch (same u, target = 0.0 - log1p(-u)),
            # just without materializing a zero vector — this sits on the
            # bulk engine's per-run hot path.
            target = -np.log1p(-u)
        else:
            base = self.cumulative_hazard(np.broadcast_to(
                np.asarray(current_age, dtype=float), (size,)))
            target = base - np.log1p(-u)   # -log(1-U), U uniform on [0,1)
        return self._invert_cumulative(target)

    def mean_rate_per_year(self, years: float = 6.0) -> float:
        """Average fraction of a cohort failing per year over ``years``.

        A convenience for sanity checks: with Table 1 this is ~2%/yr, giving
        the paper's "about 10% of the disks fail during the first six years".
        """
        from ..units import YEAR
        return float(1.0 - self.survival(years * YEAR)) / years
