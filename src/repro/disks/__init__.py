"""Disk substrate: drive model, vintages, bathtub failure process, SMART."""

from .disk import Disk, DiskState
from .failure import ELERATH_TABLE1, BathtubFailureModel, RatePeriod
from .smart import SmartMonitor
from .vintage import PAPER_VINTAGE, DiskVintage

__all__ = [
    "Disk", "DiskState",
    "BathtubFailureModel", "RatePeriod", "ELERATH_TABLE1",
    "DiskVintage", "PAPER_VINTAGE",
    "SmartMonitor",
]
