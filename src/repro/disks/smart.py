"""S.M.A.R.T.-style health monitoring (paper §2.3).

The paper: "If we use S.M.A.R.T. ... to monitor the health of disks, we are
able to avoid unreliable disks" when choosing recovery targets.  We model a
monitor that flags a drive as *suspect* with some probability ahead of its
actual failure (true positives, with a configurable warning horizon) and
also flags healthy drives spuriously (false positives).  The FARM target
policy can then veto suspect drives.

This is deliberately simple — the paper treats failure *prediction* as out of
scope — but it exercises the code path: target selection must consult the
monitor and fall back gracefully when the candidate list is exhausted.
"""

from __future__ import annotations

import numpy as np

from ..units import DAY


class SmartMonitor:
    """Probabilistic failure-warning oracle.

    Parameters
    ----------
    detection_probability:
        Chance a failing drive is flagged ahead of time (SMART literature
        reports ~0.3–0.6 for threshold methods; Hughes et al. improve this).
    warning_horizon:
        How far before actual failure the flag is raised.
    false_positive_rate:
        Chance a drive that will not fail soon is nonetheless flagged.
    """

    def __init__(self, rng: np.random.Generator,
                 detection_probability: float = 0.4,
                 warning_horizon: float = 7 * DAY,
                 false_positive_rate: float = 0.01) -> None:
        if not 0.0 <= detection_probability <= 1.0:
            raise ValueError("detection_probability must be in [0, 1]")
        if not 0.0 <= false_positive_rate <= 1.0:
            raise ValueError("false_positive_rate must be in [0, 1]")
        if warning_horizon < 0:
            raise ValueError("warning_horizon must be non-negative")
        self.rng = rng
        self.detection_probability = detection_probability
        self.warning_horizon = warning_horizon
        self.false_positive_rate = false_positive_rate
        self._warned: dict[int, bool] = {}

    def register(self, disk_id: int) -> None:
        """Start monitoring a drive (decides its false-positive fate)."""
        self._warned[disk_id] = bool(
            self.rng.random() < self.false_positive_rate)

    def forget(self, disk_id: int) -> None:
        self._warned.pop(disk_id, None)

    def is_suspect(self, disk_id: int, now: float,
                   failure_time: float | None) -> bool:
        """Whether the monitor currently advises against using the drive.

        ``failure_time`` is the drive's (simulator-known) failure time; the
        monitor reveals it only within the warning horizon and only for
        drives where detection succeeded.
        """
        if self._warned.get(disk_id, False):
            return True
        if failure_time is None:
            return False
        if now >= failure_time - self.warning_horizon:
            # Decide detection success lazily but deterministically per disk.
            key = ("detect", disk_id)
            cached = self._warned.get(key)  # type: ignore[arg-type]
            if cached is None:
                cached = bool(self.rng.random() < self.detection_probability)
                self._warned[key] = cached  # type: ignore[index]
            return cached
        return False
