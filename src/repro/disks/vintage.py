"""Disk vintages (paper §3.6 and Figure 8(b)).

A *vintage* bundles the static properties of a generation of drives:
capacity, sustained bandwidth, the fraction of bandwidth recovery may use,
the failure-rate model, and the End Of Design Life.  Batches of replacement
drives may come from different vintages; the paper models them by weight and
by failure-rate multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..units import MB, SECOND, TB, YEAR
from .failure import BathtubFailureModel


@dataclass(frozen=True)
class DiskVintage:
    """Static description of one generation of disk drives.

    Defaults are the paper's extrapolated drive: 1 TB capacity, 80 MB/s
    sustained bandwidth (recovery capped at 20% = 16 MB/s), 6-year EODL,
    Table 1 bathtub failure rates.
    """

    name: str = "paper-2004-extrapolated"
    capacity_bytes: float = 1 * TB
    bandwidth_bps: float = 80 * MB / SECOND
    recovery_bandwidth_fraction: float = 0.20
    eodl_seconds: float = 6 * YEAR
    weight: float = 1.0
    failure_model: BathtubFailureModel = field(
        default_factory=BathtubFailureModel)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bps <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        if not 0.0 < self.recovery_bandwidth_fraction <= 1.0:
            raise ValueError("recovery bandwidth fraction must be in (0, 1]")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def recovery_bandwidth_bps(self) -> float:
        """Bandwidth available to recovery on this drive."""
        return self.bandwidth_bps * self.recovery_bandwidth_fraction

    def with_rate_multiplier(self, multiplier: float) -> "DiskVintage":
        """Vintage identical but with all failure rates scaled (Fig. 8(b))."""
        return replace(
            self,
            name=f"{self.name} (x{multiplier:g} rates)",
            failure_model=self.failure_model.scaled(multiplier))

    def with_recovery_bandwidth(self, bps: float) -> "DiskVintage":
        """Vintage with an explicit recovery bandwidth (Figure 5 sweeps)."""
        if not 0 < bps <= self.bandwidth_bps:
            raise ValueError(f"recovery bandwidth {bps} must be in "
                             f"(0, {self.bandwidth_bps}]")
        return replace(self,
                       recovery_bandwidth_fraction=bps / self.bandwidth_bps)


#: The drive the paper extrapolates from the IBM Deskstar.
PAPER_VINTAGE = DiskVintage()
