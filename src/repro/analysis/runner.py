"""File discovery and rule execution for the static-analysis pass."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .base import RULES, FileContext, Violation, apply_noqa


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path


def lint_source(source: str, path: str | Path) -> list[Violation]:
    """Lint one already-read module source against every rule."""
    ctx = FileContext(path=Path(path), source=source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path=str(path), line=exc.lineno or 0,
                          col=exc.offset or 0, rule="RPR000",
                          message=f"syntax error: {exc.msg}")]
    violations: list[Violation] = []
    for rule in RULES:
        if rule.applies_to(ctx):
            violations.extend(rule.check(tree, ctx))
    return apply_noqa(violations, source.splitlines())


def lint_file(path: str | Path) -> list[Violation]:
    """Lint one file from disk."""
    return lint_source(Path(path).read_text(encoding="utf-8"), path)


def lint_paths(paths: Sequence[str | Path]) -> list[Violation]:
    """Lint every Python file under ``paths``; sorted, deterministic."""
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return sorted(violations)
