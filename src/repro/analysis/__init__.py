"""AST-based invariant linter for the reproduction codebase.

Twelve rules in six families keep the simulator's correctness invariants
machine-checked instead of convention-checked:

**Determinism** — results must be a pure function of ``(config, seed)``:

* ``RPR001`` — no stdlib ``random`` (use named ``RandomStreams``);
* ``RPR002`` — no seedless ``np.random.default_rng()``;
* ``RPR003`` — no builtin ``hash()`` (process-salted; use
  ``stable_hash64``);
* ``RPR004`` — no wall-clock reads in ``sim/``, ``core/``,
  ``reliability/``, ``placement/``;
* ``RPR011`` — the same ban extended to ``cluster/``, ``faults/`` and
  ``telemetry/`` (metrics must be a pure function of simulated time).

**Unit safety** — sizes in bytes, durations in seconds, bandwidths in
bytes/second, exactly as the paper's arithmetic requires:

* ``RPR005`` — unit-valued magic literals must be ``units.*`` constants;
* ``RPR006`` — public parameters use base-unit suffixes
  (``_bytes``/``_s``/``_bps``), not ``_gb``/``_ms``/``_mbps``.

**Simulation discipline** — library code stays silent and never writes
the clock:

* ``RPR007`` — no ``print()`` outside ``__main__.py``/``trace.py``;
* ``RPR008`` — no assignment to ``.now``/``._now`` outside the engine.

**Robustness** — failures must be visible, never silently swallowed:

* ``RPR009`` — no ``except`` that only passes/returns in ``core/`` and
  ``cluster/``; count it, trace it, defer it, or propagate it.

**Parameterization** — knobs are read from the config, never restated:

* ``RPR010`` — no bare numeric literal equal to a known
  ``SystemConfig``/``SmartMonitor`` default in ``core/``, ``cluster/``,
  ``reliability/``, ``disks/`` (definition sites are exempt).

**Weight discipline** — importance-sampling weights have one home:

* ``RPR012`` — no ad-hoc likelihood-ratio arithmetic in
  ``experiments/``; weights fold through ``WeightedAggregate``
  (``repro.reliability.stats``), never hand-rolled sums.

Run it as ``python -m repro.analysis [paths]`` or via
:func:`lint_paths`; suppress a single line with ``# repro: noqa`` or
``# repro: noqa RPRxxx``.  ``tests/test_static_analysis.py`` gates the
tree: tier-1 fails on any violation in ``src/``.
"""

from .base import RULES, FileContext, Rule, Violation
from .determinism import SIM_DIRS, WALL_CLOCK_GUARDED_DIRS
from .discipline import PRINT_SINKS
from .parameters import KNOWN_PARAMETER_DEFAULTS, PARAM_GUARDED_DIRS
from .reporting import render_json, render_rule_list, render_text
from .robustness import GUARDED_DIRS
from .runner import iter_python_files, lint_file, lint_paths, lint_source
from .units_rules import DEPRECATED_SUFFIXES, MAGIC_LITERALS
from .weights import WEIGHT_ATTRS, WEIGHT_GUARDED_DIRS

__all__ = [
    "DEPRECATED_SUFFIXES",
    "FileContext",
    "GUARDED_DIRS",
    "KNOWN_PARAMETER_DEFAULTS",
    "MAGIC_LITERALS",
    "PARAM_GUARDED_DIRS",
    "PRINT_SINKS",
    "RULES",
    "Rule",
    "SIM_DIRS",
    "Violation",
    "WALL_CLOCK_GUARDED_DIRS",
    "WEIGHT_ATTRS",
    "WEIGHT_GUARDED_DIRS",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_rule_list",
    "render_text",
]
