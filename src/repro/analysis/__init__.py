"""Static analyzer for the reproduction codebase.

Two layers keep the simulator's correctness invariants machine-checked
instead of convention-checked:

* **Per-file rules** (``RPR001``–``RPR012``, in :data:`RULES`): AST
  visitors over one module — determinism, unit hygiene, simulation
  discipline, robustness, parameterization, weight discipline.
* **Whole-program rules** (``RPR101``–``RPR104``, in
  :data:`PROJECT_RULES`): checks over the aggregated project facts —
  unit flow across calls and fields, RNG stream ownership, fast/process
  engine parity for every ``SystemConfig`` field, and dead or shadowed
  config knobs.

The full rule catalog, the baseline workflow, and the SARIF output
format are documented in ``docs/ANALYSIS.md``.  Run the analyzer as
``python -m repro.analysis [--strict] [paths]``; suppress a single line
with ``# repro: noqa`` or ``# repro: noqa RPRxxx``.
``tests/test_static_analysis.py`` gates the tree: tier-1 fails on any
violation in ``src/``.
"""

from .base import RULES, FileContext, Rule, Violation
from .baseline import (apply_baseline, load_baseline, render_baseline,
                       violation_fingerprint)
from .cache import AnalysisCache, analyzer_fingerprint, source_digest
from .callgraph import ProjectGraph, build_graph
from .determinism import SIM_DIRS, WALL_CLOCK_GUARDED_DIRS
from .discipline import PRINT_SINKS
from .parameters import KNOWN_PARAMETER_DEFAULTS, PARAM_GUARDED_DIRS
from .project import (PROJECT_RULES, AnalysisError, AnalysisResult,
                      ProjectRuleInfo, analyze_paths,
                      restrict_to_changed)
from .reporting import (render_json, render_rule_list, render_sarif,
                        render_text)
from .robustness import GUARDED_DIRS
from .runner import iter_python_files, lint_file, lint_paths, lint_source
from .symbols import ModuleFacts, collect_facts, module_name_for
from .units_rules import DEPRECATED_SUFFIXES, MAGIC_LITERALS
from .weights import WEIGHT_ATTRS, WEIGHT_GUARDED_DIRS

__all__ = [
    "AnalysisCache",
    "AnalysisError",
    "AnalysisResult",
    "DEPRECATED_SUFFIXES",
    "FileContext",
    "GUARDED_DIRS",
    "KNOWN_PARAMETER_DEFAULTS",
    "MAGIC_LITERALS",
    "ModuleFacts",
    "PARAM_GUARDED_DIRS",
    "PRINT_SINKS",
    "PROJECT_RULES",
    "ProjectGraph",
    "ProjectRuleInfo",
    "RULES",
    "Rule",
    "SIM_DIRS",
    "Violation",
    "WALL_CLOCK_GUARDED_DIRS",
    "WEIGHT_ATTRS",
    "WEIGHT_GUARDED_DIRS",
    "analyze_paths",
    "analyzer_fingerprint",
    "apply_baseline",
    "build_graph",
    "collect_facts",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for",
    "render_baseline",
    "render_json",
    "render_rule_list",
    "render_sarif",
    "render_text",
    "restrict_to_changed",
    "source_digest",
    "violation_fingerprint",
]
