"""Baseline files: accepted findings carried across analyzer upgrades.

Turning on a new whole-program rule over an existing tree can surface
findings that are understood but not yet fixed.  A *baseline* freezes
those: ``--write-baseline`` records a fingerprint per current finding,
and later runs with ``--baseline`` report only findings whose
fingerprint is absent from the file — i.e. only regressions.

Fingerprints are deliberately line-independent (path, rule, message
only), so reflowing a file or adding imports above a known finding does
not resurrect it; changing the finding's *content* does.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Sequence

from .base import Violation

_FINGERPRINT_SIZE = 8


def violation_fingerprint(violation: Violation) -> str:
    """Stable, line-independent identity of one finding."""
    key = "|".join((Path(violation.path).as_posix(), violation.rule,
                    violation.message))
    return hashlib.blake2b(key.encode("utf-8"),
                           digest_size=_FINGERPRINT_SIZE).hexdigest()


def render_baseline(violations: Sequence[Violation]) -> str:
    """Baseline file text: one ``fingerprint  path: rule message`` line.

    Everything after the fingerprint token is a human-readable comment;
    only the first token on each line is read back.
    """
    lines = ["# repro-analysis baseline: accepted findings "
             "(regenerate with --write-baseline)"]
    for v in sorted(violations):
        lines.append(f"{violation_fingerprint(v)}  "
                     f"{Path(v.path).as_posix()}: {v.rule} {v.message}")
    return "\n".join(lines) + "\n"


def load_baseline(path: str | Path) -> frozenset[str]:
    """Fingerprints accepted by the baseline file at ``path``."""
    fingerprints: set[str] = set()
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fingerprints.add(stripped.split()[0])
    return frozenset(fingerprints)


def apply_baseline(violations: Iterable[Violation],
                   accepted: frozenset[str]
                   ) -> tuple[list[Violation], int]:
    """Split findings into (fresh, number suppressed by the baseline)."""
    fresh: list[Violation] = []
    matched = 0
    for v in violations:
        if violation_fingerprint(v) in accepted:
            matched += 1
        else:
            fresh.append(v)
    return fresh, matched
