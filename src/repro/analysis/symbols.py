"""Per-module fact extraction for the whole-program analyzer.

The RPR100-series rules (unit flow, stream ownership, engine parity,
dead config) cannot be checked one file at a time: they relate a
``SystemConfig`` field defined in ``config.py`` to attribute reads in two
engines, or a stream literal in ``faults/`` to a consumer in
``reliability/``.  This module is the *collect* half of the two-pass
design: one AST walk per file produces a :class:`ModuleFacts` record —
plain JSON-serializable data — and the *check* half
(:mod:`repro.analysis.project` and friends) runs over the aggregated
facts without ever re-reading a file.  Because facts depend only on one
file's content, they memoize perfectly under the content-hash cache
(:mod:`repro.analysis.cache`).
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .base import dotted_name, suppressed_rules

#: Name suffixes that declare a dimension under the repo's base-unit
#: convention (see RPR006): sizes in bytes, durations in seconds,
#: bandwidths in bytes/second.  A dimension is an exponent vector over
#: (bytes, seconds): bytes = (1, 0), seconds = (0, 1), bps = (1, -1).
DIM_SUFFIXES: dict[str, tuple[int, int]] = {
    "_bytes": (1, 0),
    "_bps": (1, -1),
    "_bw": (1, -1),
    "_seconds": (0, 1),
    "_s": (0, 1),
}

#: Exact names that carry a dimension without a suffix.
DIM_NAMES: dict[str, tuple[int, int]] = {
    "nbytes": (1, 0),
}

#: ``repro.units`` constants and their dimensions.
UNIT_CONSTANT_DIMS: dict[str, tuple[int, int]] = {
    "KB": (1, 0), "MB": (1, 0), "GB": (1, 0), "TB": (1, 0), "PB": (1, 0),
    "SECOND": (0, 1), "MINUTE": (0, 1), "HOUR": (0, 1), "DAY": (0, 1),
    "MONTH": (0, 1), "YEAR": (0, 1),
}

DIMENSIONLESS: tuple[int, int] = (0, 0)


def name_dim(name: str) -> tuple[int, int] | None:
    """The dimension a variable/parameter/field name declares, if any."""
    exact = DIM_NAMES.get(name)
    if exact is not None:
        return exact
    lowered = name.lower()
    for suffix, dim in DIM_SUFFIXES.items():
        if lowered.endswith(suffix):
            return dim
    return None


# --------------------------------------------------------------------- #
# Dimension terms
# --------------------------------------------------------------------- #
# A *term* is the symbolic dimension of an expression, serialized as a
# small JSON tree:
#   {"k": "dim",  "e": [b, s]}          -- known exponents
#   {"k": "call", "n": "dotted.name"}   -- return dim of a call, resolved
#                                          against the global env later
#   {"k": "attr", "n": "attrname"}      -- dim of an attribute read,
#                                          resolved via field/property env
#   {"k": "op", "op": "mul"|"div", "l": term, "r": term}
# ``None`` means "no information" and poisons nothing: constraints
# containing it are simply never flagged.

Term = dict[str, Any]


def dim_term(e: tuple[int, int]) -> Term:
    return {"k": "dim", "e": [e[0], e[1]]}


@dataclass
class FunctionFacts:
    """Signature-level facts about one function or method."""

    qualname: str
    line: int
    #: positional+keyword parameter names in order, ``self``/``cls``
    #: dropped for methods.
    params: list[str] = field(default_factory=list)
    #: parameter name -> literal default (repr string), only for plain
    #: numeric/str/bool/None literals.
    param_defaults: dict[str, str] = field(default_factory=dict)
    #: decorator dotted names.
    decorators: list[str] = field(default_factory=list)
    #: symbolic dimension of each ``return`` expression.
    return_terms: list[Term] = field(default_factory=list)
    #: attribute names read via ``self.X`` (property expansion).
    self_reads: list[str] = field(default_factory=list)
    is_method: bool = False


@dataclass
class ClassFacts:
    """Facts about one class: bases, dataclass-style fields, methods."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    decorators: list[str] = field(default_factory=list)
    #: annotated class-level fields: name -> {"line", "default"} where
    #: default is a repr string for literal defaults, else "".
    fields: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: property-decorated method names.
    properties: list[str] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything the whole-program checks need to know about one file."""

    module: str
    path: str
    #: resolved imported module names (import graph edges).
    imports: list[str] = field(default_factory=list)
    #: symbol bindings introduced by imports:
    #: local name -> "module" or "module:attr".
    import_bindings: dict[str, str] = field(default_factory=dict)
    #: top-level aliases: ``name = other_name`` re-bindings.
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    #: attribute name read anywhere in the module -> first line seen.
    attr_reads: dict[str, int] = field(default_factory=dict)
    #: RNG stream uses: [normalized stream name, api, line, col].
    stream_uses: list[list[Any]] = field(default_factory=list)
    #: unit-flow constraint records (see :mod:`.unitflow`).
    unit_constraints: list[dict[str, Any]] = field(default_factory=list)
    #: call edges: [caller qualname ("" = module level), callee dotted
    #: name, line].
    calls: list[list[Any]] = field(default_factory=list)
    #: lines carrying a ``# repro: noqa`` directive:
    #: line -> sorted rule ids ("*" alone = suppress everything).
    noqa: dict[str, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleFacts":
        facts = cls(module=data["module"], path=data["path"])
        facts.imports = list(data.get("imports", []))
        facts.import_bindings = dict(data.get("import_bindings", {}))
        facts.aliases = dict(data.get("aliases", {}))
        facts.functions = {
            q: FunctionFacts(**f) for q, f in data.get("functions",
                                                       {}).items()}
        facts.classes = {
            n: ClassFacts(**c) for n, c in data.get("classes", {}).items()}
        facts.attr_reads = {k: int(v)
                            for k, v in data.get("attr_reads", {}).items()}
        facts.stream_uses = [list(u) for u in data.get("stream_uses", [])]
        facts.unit_constraints = list(data.get("unit_constraints", []))
        facts.calls = [list(c) for c in data.get("calls", [])]
        facts.noqa = {k: list(v) for k, v in data.get("noqa", {}).items()}
        return facts

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is noqa-suppressed on ``line``."""
        ids = self.noqa.get(str(line))
        if ids is None:
            return False
        return ids == ["*"] or rule in ids


# --------------------------------------------------------------------- #
# Module-name derivation
# --------------------------------------------------------------------- #
def module_name_for(path: Path, roots: Sequence[Path]) -> str:
    """Dotted module name of ``path`` relative to the analysis roots.

    ``src/repro/sim/rng.py`` under root ``src`` is ``repro.sim.rng``;
    ``__init__.py`` maps to its package.  A file under no root is named
    by its stem (fixtures passed directly).
    """
    resolved = path.resolve()
    for root in roots:
        root = root.resolve()
        try:
            rel = resolved.relative_to(root)
        except ValueError:
            continue
        parts = list(rel.parts)
        if not parts:
            continue
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") \
            else parts[-1]
        if parts[-1] == "__init__":
            parts.pop()
        if parts:
            return ".".join(parts)
        return root.name
    return path.stem


def resolve_relative_import(module: str, target: str | None,
                            level: int) -> str | None:
    """Absolute module named by ``from <target> import ...`` at ``level``.

    ``module`` is the importing module's dotted name.  Returns ``None``
    when the relative import climbs above the known package root.
    """
    if level == 0:
        return target
    parts = module.split(".")
    # level 1 = current package: drop the module's own last component.
    if len(parts) < level:
        return None
    base = parts[:len(parts) - level]
    if target:
        base.append(target)
    return ".".join(base) if base else None


# --------------------------------------------------------------------- #
# Collection
# --------------------------------------------------------------------- #
class _Collector(ast.NodeVisitor):
    """One-pass AST walk filling a :class:`ModuleFacts`."""

    STREAM_APIS = ("get", "fresh", "rare", "bulk")

    def __init__(self, facts: ModuleFacts, is_package: bool) -> None:
        self.facts = facts
        self.is_package = is_package
        #: qualname stack ("" at module level).
        self._scope: list[str] = []
        #: per-function local dim environment.
        self._env: list[dict[str, tuple[int, int]]] = [{}]
        self._class_stack: list[ClassFacts] = []
        self._fn_stack: list[FunctionFacts] = []

    # -- scopes -------------------------------------------------------- #
    @property
    def qualname(self) -> str:
        return ".".join(self._scope)

    # -- imports ------------------------------------------------------- #
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.append(alias.name)
            local = alias.asname or alias.name.split(".")[0]
            self.facts.import_bindings[local] = \
                alias.name if alias.asname else alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # A relative import from a package's __init__ resolves against
        # the package itself, not its parent.
        base_module = self.facts.module
        if self.is_package:
            base_module += ".__init__"
        target = resolve_relative_import(base_module, node.module,
                                         node.level)
        if target is not None:
            self.facts.imports.append(target)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.facts.import_bindings[local] = \
                    f"{target}:{alias.name}"
        self.generic_visit(node)

    # -- definitions --------------------------------------------------- #
    def _literal_repr(self, node: ast.expr | None) -> str:
        if isinstance(node, ast.Constant) and isinstance(
                node.value, (int, float, str, bool, type(None))):
            return repr(node.value)
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, ast.USub) \
                and isinstance(node.operand, ast.Constant):
            return f"-{node.operand.value!r}"
        return ""

    def _handle_function(self, node: ast.FunctionDef
                         | ast.AsyncFunctionDef) -> None:
        in_class = bool(self._class_stack) \
            and len(self._scope) == len(self._class_stack)
        params = [a.arg for a in (*node.args.posonlyargs, *node.args.args,
                                  *node.args.kwonlyargs)]
        if in_class and params and params[0] in ("self", "cls"):
            params = params[1:]
        qual = ".".join([*self._scope, node.name])
        fn = FunctionFacts(qualname=qual, line=node.lineno, params=params,
                           is_method=in_class)
        fn.decorators = [d for d in
                         (dotted_name(dec) for dec in node.decorator_list)
                         if d is not None]
        pos = [*node.args.posonlyargs, *node.args.args]
        for arg, default in zip(reversed(pos),
                                reversed(node.args.defaults)):
            rep = self._literal_repr(default)
            if rep:
                fn.param_defaults[arg.arg] = rep
        for arg, default in zip(node.args.kwonlyargs,
                                node.args.kw_defaults):
            rep = self._literal_repr(default)
            if rep:
                fn.param_defaults[arg.arg] = rep
        self.facts.functions[qual] = fn
        if in_class:
            cls = self._class_stack[-1]
            if any(d in ("property", "cached_property", "functools."
                         "cached_property") for d in fn.decorators):
                cls.properties.append(node.name)

        self._scope.append(node.name)
        env: dict[str, tuple[int, int]] = {}
        for p in params:
            dim = name_dim(p)
            if dim is not None:
                env[p] = dim
        self._env.append(env)
        self._fn_stack.append(fn)
        for stmt in node.body:
            self.visit(stmt)
        self._fn_stack.pop()
        self._env.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassFacts(name=node.name, line=node.lineno)
        cls.bases = [b for b in (dotted_name(base) for base in node.bases)
                     if b is not None]
        cls.decorators = [d for d in
                          (dotted_name(dec)
                           for dec in node.decorator_list)
                          if d is not None]
        self.facts.classes[".".join([*self._scope, node.name])
                           if self._scope else node.name] = cls
        self._class_stack.append(cls)
        self._scope.append(node.name)
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                cls.fields[stmt.target.id] = {
                    "line": stmt.lineno,
                    "default": self._literal_repr(stmt.value),
                }
            self.visit(stmt)
        self._scope.pop()
        self._class_stack.pop()

    # -- expressions --------------------------------------------------- #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.facts.attr_reads.setdefault(node.attr, node.lineno)
            if self._fn_stack and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                self._fn_stack[-1].self_reads.append(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee is not None:
            self.facts.calls.append([self.qualname, callee, node.lineno])
        # RNG stream use: `<obj>.get/fresh/rare("literal")`.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in self.STREAM_APIS and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                stream = arg.value
                if node.func.attr == "rare":
                    stream = f"rare-{stream}"
                elif node.func.attr == "bulk":
                    stream = f"bulk-{stream}"
                receiver = dotted_name(node.func.value) or ""
                # `dict.get(...)`-style false positives are filtered by
                # requiring a stream-ish receiver or a known stream name
                # downstream; record the receiver for that decision.
                self.facts.stream_uses.append(
                    [stream, node.func.attr, node.lineno,
                     node.col_offset, receiver])
        self._record_call_args(node)
        self.generic_visit(node)

    # -- unit-flow constraint extraction ------------------------------- #
    def _term(self, node: ast.expr) -> Term | None:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return dim_term(DIMENSIONLESS)
            return None
        if isinstance(node, ast.Name):
            local = self._env[-1].get(node.id)
            if local is not None:
                return dim_term(local)
            if node.id in UNIT_CONSTANT_DIMS \
                    and self._binds_unit_constant(node.id):
                return dim_term(UNIT_CONSTANT_DIMS[node.id])
            dim = name_dim(node.id)
            if dim is not None:
                return dim_term(dim)
            return None
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None and dotted.startswith("units.") \
                    and node.attr in UNIT_CONSTANT_DIMS:
                return dim_term(UNIT_CONSTANT_DIMS[node.attr])
            dim = name_dim(node.attr)
            if dim is not None:
                return dim_term(dim)
            return {"k": "attr", "n": node.attr}
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is None:
                return None
            return {"k": "call", "n": callee}
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mult):
                return self._binop_term(node, "mul")
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                return self._binop_term(node, "div")
            if isinstance(node.op, (ast.Add, ast.Sub)):
                # checked separately; the result has the operands' dim.
                return self._term(node.left) or self._term(node.right)
            return None
        if isinstance(node, ast.UnaryOp):
            return self._term(node.operand)
        if isinstance(node, ast.IfExp):
            return self._term(node.body) or self._term(node.orelse)
        return None

    def _binds_unit_constant(self, name: str) -> bool:
        """``from ..units import DAY``-style binding is in scope."""
        bound = self.facts.import_bindings.get(name, "")
        return bound.endswith(f":{name}") and ".units" in bound \
            or bound == "units"

    def _binop_term(self, node: ast.BinOp, op: str) -> Term | None:
        left = self._term(node.left)
        right = self._term(node.right)
        if left is None and right is None:
            return None
        return {"k": "op", "op": op,
                "l": left if left is not None else dim_term(DIMENSIONLESS),
                "r": right if right is not None
                else dim_term(DIMENSIONLESS),
                "partial": left is None or right is None}

    def _constrain(self, record: dict[str, Any]) -> None:
        record["fn"] = self.qualname
        self.facts.unit_constraints.append(record)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = self._term(node.left)
            right = self._term(node.right)
            if left is not None and right is not None:
                self._constrain({"kind": "binop", "op": "add",
                                 "l": left, "r": right,
                                 "line": node.lineno,
                                 "col": node.col_offset})
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ops_ok = all(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                     ast.Eq, ast.NotEq))
                     for op in node.ops)
        if ops_ok:
            for a, b in zip(operands, operands[1:]):
                left = self._term(a)
                right = self._term(b)
                if left is not None and right is not None:
                    self._constrain({"kind": "binop", "op": "cmp",
                                     "l": left, "r": right,
                                     "line": node.lineno,
                                     "col": node.col_offset})
        self.generic_visit(node)

    def _handle_assign_target(self, target: ast.expr, value: ast.expr,
                              node: ast.stmt) -> None:
        tname: str | None = None
        if isinstance(target, ast.Name):
            tname = target.id
        elif isinstance(target, ast.Attribute):
            tname = target.attr
        if tname is None:
            return
        tdim = name_dim(tname)
        vterm = self._term(value)
        if tdim is not None and vterm is not None:
            self._constrain({"kind": "assign", "target": tname,
                             "tdim": [tdim[0], tdim[1]], "v": vterm,
                             "line": node.lineno,
                             "col": node.col_offset})
        if isinstance(target, ast.Name):
            if tdim is not None:
                self._env[-1][target.id] = tdim
            elif vterm is not None and vterm.get("k") == "dim":
                e = vterm["e"]
                if tuple(e) != DIMENSIONLESS:
                    self._env[-1][target.id] = (e[0], e[1])

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_assign_target(target, node.value, node)
        if not self._scope and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Name):
            # top-level `alias = original` re-binding (export aliasing).
            self.facts.aliases[node.targets[0].id] = node.value.id
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_assign_target(node.target, node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left: Term | None = None
            tname = None
            if isinstance(node.target, ast.Name):
                tname = node.target.id
            elif isinstance(node.target, ast.Attribute):
                tname = node.target.attr
            if tname is not None:
                dim = self._env[-1].get(tname) or name_dim(tname)
                if dim is not None:
                    left = dim_term(dim)
            right = self._term(node.value)
            if left is not None and right is not None:
                self._constrain({"kind": "binop", "op": "add",
                                 "l": left, "r": right,
                                 "line": node.lineno,
                                 "col": node.col_offset})
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if self._fn_stack and node.value is not None:
            term = self._term(node.value)
            if term is not None:
                self._fn_stack[-1].return_terms.append(term)
        self.generic_visit(node)

    def _record_call_args(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee is None:
            return
        def informative(term: Term | None) -> bool:
            return term is not None and not (
                term.get("k") == "dim"
                and tuple(term["e"]) == DIMENSIONLESS)

        for i, arg in enumerate(node.args):
            term = self._term(arg)
            if informative(term):
                self._constrain({"kind": "callarg", "callee": callee,
                                 "pos": i, "param": None, "v": term,
                                 "line": arg.lineno,
                                 "col": arg.col_offset})
        for kw in node.keywords:
            if kw.arg is None:
                continue
            term = self._term(kw.value)
            if informative(term):
                self._constrain({"kind": "callarg", "callee": callee,
                                 "pos": None, "param": kw.arg, "v": term,
                                 "line": kw.value.lineno,
                                 "col": kw.value.col_offset})


def collect_facts(source: str, path: str | Path,
                  roots: Sequence[str | Path] = ()) -> ModuleFacts:
    """Collect :class:`ModuleFacts` for one module source.

    Raises on unparseable input — callers (the analysis driver) convert
    parse failures into RPR000 violations / internal-error reports.
    """
    path = Path(path)
    module = module_name_for(path, [Path(r) for r in roots])
    facts = ModuleFacts(module=module, path=str(path))
    tree = ast.parse(source, filename=str(path))
    collector = _Collector(facts, is_package=path.name == "__init__.py")
    collector.visit(tree)
    for i, line in enumerate(source.splitlines(), start=1):
        ids = suppressed_rules(line)
        if ids is not None:
            facts.noqa[str(i)] = sorted(ids) if ids else ["*"]
    return facts


def iter_facts(items: Iterable[tuple[str, str | Path]],
               roots: Sequence[str | Path] = ()) -> list[ModuleFacts]:
    """Collect facts for many ``(source, path)`` pairs."""
    return [collect_facts(src, path, roots) for src, path in items]
