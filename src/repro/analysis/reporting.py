"""Violation reporters: plain text and JSON."""

from __future__ import annotations

import json
from typing import Sequence

from .base import RULES, Violation


def render_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: RPRxxx message`` line per violation."""
    return "\n".join(v.format() for v in violations)


def render_json(violations: Sequence[Violation]) -> str:
    """A JSON document: violation list plus a per-rule count summary."""
    counts: dict[str, int] = {}
    for v in violations:
        counts[v.rule] = counts.get(v.rule, 0) + 1
    return json.dumps({"violations": [v.to_dict() for v in violations],
                       "counts": counts, "total": len(violations)},
                      indent=2)


def render_rule_list() -> str:
    """Human-readable table of every registered rule."""
    lines = []
    for rule in sorted(RULES, key=lambda r: r.id):
        lines.append(f"{rule.id}  {rule.summary}")
        doc = (rule.__doc__ or "").strip().splitlines()
        for ln in doc[1:]:
            lines.append(f"        {ln.strip()}")
        lines.append("")
    return "\n".join(lines).rstrip()
