"""Violation reporters: plain text, JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .base import RULES, Violation
from .baseline import violation_fingerprint
from .project import PROJECT_RULES

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_VERSION = "2.1.0"
_TOOL_NAME = "repro-analysis"


def render_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col: RPRxxx message`` line per violation."""
    return "\n".join(v.format() for v in violations)


def render_json(violations: Sequence[Violation]) -> str:
    """A JSON document: violation list plus a per-rule count summary."""
    counts: dict[str, int] = {}
    for v in violations:
        counts[v.rule] = counts.get(v.rule, 0) + 1
    return json.dumps({"violations": [v.to_dict() for v in violations],
                       "counts": counts, "total": len(violations)},
                      indent=2)


def _rule_catalog() -> list[tuple[str, str]]:
    """(id, summary) of every rule — per-file and whole-program."""
    catalog = [(rule.id, rule.summary) for rule in RULES]
    catalog.extend((info.id, info.summary) for info in PROJECT_RULES)
    return sorted(catalog)


def render_sarif(violations: Sequence[Violation]) -> str:
    """A SARIF 2.1.0 log — one run, one result per violation.

    Each result carries the same line-independent fingerprint the
    baseline mechanism uses, so SARIF consumers (code-scanning UIs)
    track a finding across reflows exactly as ``--baseline`` does.
    SARIF regions are 1-based; our columns are 0-based, hence the +1.
    """
    rules = [{"id": rule_id,
              "shortDescription": {"text": summary}}
             for rule_id, summary in _rule_catalog()]
    results = []
    for v in violations:
        results.append({
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": Path(v.path).as_posix()},
                    "region": {"startLine": max(v.line, 1),
                               "startColumn": v.col + 1},
                },
            }],
            "fingerprints": {"reproAnalysis/v1":
                             violation_fingerprint(v)},
        })
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {"name": _TOOL_NAME, "rules": rules}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)


def render_rule_list() -> str:
    """Human-readable table of every rule, per-file and whole-program.

    Detailed per-rule prose lives in ``docs/ANALYSIS.md``; this listing
    is the one-line catalog.
    """
    lines = [f"{rule_id}  {summary}"
             for rule_id, summary in _rule_catalog()]
    lines.append("")
    lines.append("Details: docs/ANALYSIS.md.  Whole-program rules "
                 "(RPR101+) run with --strict.")
    return "\n".join(lines)
