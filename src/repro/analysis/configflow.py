"""RPR103/RPR104 — configuration flow across the whole program.

``SystemConfig`` is the contract between the two recovery engines: a
field consumed by one engine but silently ignored by the other is
exactly the SMART-veto class of parity bug (the fast engine once ignored
``smart_detection_probability``, so sweeping the knob moved only the
object engine's curves).  RPR103 checks the contract statically: every
config field must be read — directly or through a ``SystemConfig``
property — by *both* the fast (flat-array) and the process (object)
engine, or carry an explicit single-engine allowlist justification.

RPR104 generalizes RPR010 cross-module: a config field no code ever
reads is dead weight (and a likely misspelling of the field the author
meant to wire), and a function parameter or dataclass field in model
code that re-states a config field name with its own literal default is
a shadow copy — callers that omit the argument silently pin the knob to
the local default instead of the configured value.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .base import Violation
from .callgraph import ProjectGraph
from .symbols import ModuleFacts

PARITY_RULE_ID = "RPR103"
PARITY_RULE_SUMMARY = ("SystemConfig field not read by both recovery "
                       "engines (engine-parity drift)")
DEADCONF_RULE_ID = "RPR104"
DEADCONF_RULE_SUMMARY = ("dead config field, or local re-default "
                         "shadowing a config field")


@dataclass(frozen=True)
class ParityPolicy:
    """What counts as the config contract and as each engine."""

    config_module: str = "repro.config"
    config_class: str = "SystemConfig"
    #: module prefixes making up the flat-array (fast) engine.
    fast_modules: tuple[str, ...] = ("repro.reliability.simulation",)
    #: module prefixes making up the object (process) engine.
    process_modules: tuple[str, ...] = ("repro.core", "repro.cluster")
    #: field -> justification for a deliberate single-engine read.
    single_engine_fields: dict[str, str] = dc_field(default_factory=dict)
    #: module prefixes where shadow re-defaults are checked (model code).
    shadow_modules: tuple[str, ...] = ("repro.core", "repro.cluster",
                                      "repro.reliability", "repro.disks")
    #: "module:Qual.name" -> justification for a sanctioned re-default.
    shadow_allowlist: dict[str, str] = dc_field(default_factory=dict)


#: The repository's policy.  Keep every allowlist entry justified — the
#: entries are the documented, reviewed exceptions to the contract.
REPRO_PARITY_POLICY = ParityPolicy(
    single_engine_fields={
        # The spare reserve is an *initial-placement* constraint (paper
        # §3.1): recovered data may dig into the reserve, so both
        # engines bound rebuild targets by full capacity.  Only the
        # object model's Disk API enforces the initial-placement limit;
        # the flat-array engine never places initial data above it by
        # construction (target_utilization << 1 - reserve is validated
        # in SystemConfig.__post_init__).
        "spare_reserve_fraction":
            "initial-placement constraint enforced by the object "
            "model's Disk API; rebuild capacity is full-disk in both "
            "engines by design",
    },
    shadow_allowlist={
        # Disk is a standalone public API (examples, tests) and its
        # dataclass default mirrors the config default; StorageSystem
        # always plumbs the configured value through.
        "repro.disks.disk:Disk.spare_reserve_fraction":
            "standalone object API; StorageSystem plumbs the config "
            "value",
        # PolicyConfig.use_smart is an ablation knob layered above the
        # config: the SMART veto it gates is inert unless the system
        # has a monitor, and the monitor exists only when
        # SystemConfig.use_smart built one.
        "repro.core.policy:PolicyConfig.use_smart":
            "ablation knob; the veto is a no-op without the "
            "config-gated SMART monitor",
    },
)


def _module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in prefixes)


def _config_fields(graph: ProjectGraph,
                   policy: ParityPolicy) -> dict[str, dict]:
    facts = graph.modules.get(policy.config_module)
    if facts is None:
        return {}
    cls = facts.classes.get(policy.config_class)
    if cls is None:
        return {}
    return cls.fields


def _engine_field_reads(graph: ProjectGraph, policy: ParityPolicy,
                        prefixes: tuple[str, ...],
                        fields: dict[str, dict],
                        prop_map: dict[str, set[str]]) -> set[str]:
    """Config fields read (directly or via properties) by a module set."""
    read: set[str] = set()
    for name, facts in graph.modules.items():
        if not _module_matches(name, prefixes):
            continue
        for attr in facts.attr_reads:
            if attr in fields:
                read.add(attr)
            for f in prop_map.get(attr, ()):
                if f in fields:
                    read.add(f)
    return read


def check_engine_parity(graph: ProjectGraph,
                        policy: ParityPolicy = REPRO_PARITY_POLICY
                        ) -> list[Violation]:
    """RPR103: each config field is read by both engines (or allowed)."""
    fields = _config_fields(graph, policy)
    if not fields:
        return []
    config_facts = graph.modules[policy.config_module]
    prop_map = graph.property_field_reads(policy.config_module,
                                          policy.config_class)
    fast = _engine_field_reads(graph, policy, policy.fast_modules,
                               fields, prop_map)
    process = _engine_field_reads(graph, policy, policy.process_modules,
                                  fields, prop_map)
    violations: list[Violation] = []
    for fname, meta in fields.items():
        in_fast = fname in fast
        in_process = fname in process
        if in_fast and in_process:
            continue
        if not in_fast and not in_process:
            continue            # dead field: RPR104's finding, not ours
        if fname in policy.single_engine_fields:
            continue
        line = int(meta.get("line", 0))
        if config_facts.suppressed(line, PARITY_RULE_ID):
            continue
        missing = "process (object)" if in_fast else "fast (flat-array)"
        present = "fast (flat-array)" if in_fast else "process (object)"
        violations.append(Violation(
            path=config_facts.path, line=line, col=0,
            rule=PARITY_RULE_ID,
            message=f"{policy.config_class}.{fname} is read by the "
                    f"{present} engine but never by the {missing} "
                    f"engine; wire it through or add a justified "
                    f"single-engine allowlist entry"))
    return sorted(violations)


def check_dead_config(graph: ProjectGraph,
                      policy: ParityPolicy = REPRO_PARITY_POLICY
                      ) -> list[Violation]:
    """RPR104: dead config fields + shadowing re-defaults."""
    fields = _config_fields(graph, policy)
    violations: list[Violation] = []
    if fields:
        config_facts = graph.modules[policy.config_module]
        prop_map = graph.property_field_reads(policy.config_module,
                                              policy.config_class)
        read: set[str] = set()
        for name, facts in graph.modules.items():
            if name == policy.config_module:
                continue
            for attr in facts.attr_reads:
                if attr in fields:
                    read.add(attr)
                for f in prop_map.get(attr, ()):
                    if f in fields:
                        read.add(f)
        for fname, meta in fields.items():
            if fname in read:
                continue
            line = int(meta.get("line", 0))
            if config_facts.suppressed(line, DEADCONF_RULE_ID):
                continue
            violations.append(Violation(
                path=config_facts.path, line=line, col=0,
                rule=DEADCONF_RULE_ID,
                message=f"{policy.config_class}.{fname} is never read "
                        f"outside {policy.config_module}; dead knob or "
                        f"mis-wired name"))
    violations.extend(_shadow_violations(graph, policy, fields))
    return sorted(violations)


def _shadow_violations(graph: ProjectGraph, policy: ParityPolicy,
                       fields: dict[str, dict]) -> list[Violation]:
    if not fields:
        return []
    out: list[Violation] = []
    for name, facts in graph.modules.items():
        if name == policy.config_module:
            continue
        if not _module_matches(name, policy.shadow_modules):
            continue
        out.extend(_function_shadows(name, facts, policy, fields))
        out.extend(_field_shadows(name, facts, policy, fields))
    return out


def _function_shadows(name: str, facts: ModuleFacts,
                      policy: ParityPolicy,
                      fields: dict[str, dict]) -> list[Violation]:
    out: list[Violation] = []
    for qual, fn in facts.functions.items():
        for param, default in fn.param_defaults.items():
            if param not in fields or default in ("None",):
                continue
            key = f"{name}:{qual}.{param}"
            if key in policy.shadow_allowlist:
                continue
            if facts.suppressed(fn.line, DEADCONF_RULE_ID):
                continue
            out.append(Violation(
                path=facts.path, line=fn.line, col=0,
                rule=DEADCONF_RULE_ID,
                message=f"parameter `{param}={default}` of `{qual}` "
                        f"re-defaults the config field "
                        f"`{policy.config_class}.{param}`; omitting "
                        f"the argument shadows the configured value"))
    return out


def _field_shadows(name: str, facts: ModuleFacts, policy: ParityPolicy,
                   fields: dict[str, dict]) -> list[Violation]:
    out: list[Violation] = []
    for cname, cls in facts.classes.items():
        for fname, meta in cls.fields.items():
            default = meta.get("default", "")
            if fname not in fields or not default or default == "None":
                continue
            key = f"{name}:{cname}.{fname}"
            if key in policy.shadow_allowlist:
                continue
            line = int(meta.get("line", 0))
            if facts.suppressed(line, DEADCONF_RULE_ID):
                continue
            out.append(Violation(
                path=facts.path, line=line, col=0,
                rule=DEADCONF_RULE_ID,
                message=f"dataclass field `{cname}.{fname} = {default}` "
                        f"re-defaults the config field "
                        f"`{policy.config_class}.{fname}`; plumb the "
                        f"configured value instead"))
    return out
