"""Import graph, project symbol table, and call graph.

Built once per analysis run from the per-module facts
(:mod:`repro.analysis.symbols`); the RPR100-series checks consult it to
resolve a name used in one module to its definition in another —
following ``from .impl import thing`` re-export chains and top-level
``thing = other`` re-bindings (the ``__init__`` aliasing idiom) — and to
expand property reads into the fields those properties touch.

The import graph is deliberately tolerant: edges to modules outside the
analyzed set (numpy, stdlib) are kept as leaf names so the graph is
complete, but resolution only ever succeeds into analyzed modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .symbols import ModuleFacts


@dataclass(frozen=True)
class Definition:
    """A resolved definition site: ``module``-qualified ``qualname``."""

    module: str
    qualname: str
    kind: str            # "function" | "class" | "module" | "alias"

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"


class ProjectGraph:
    """Symbol table + import graph + call graph over a facts set."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: dict[str, ModuleFacts] = {
            m.module: m for m in modules}
        #: module -> imported module names (analyzed or external).
        #: ``from pkg import submodule`` records ``pkg`` in the facts;
        #: promote the binding to a ``pkg.submodule`` edge when that
        #: submodule is part of the analyzed set.
        self.import_edges: dict[str, set[str]] = {}
        for name, m in self.modules.items():
            edges = set(m.imports)
            for binding in m.import_bindings.values():
                if ":" in binding:
                    target, attr = binding.split(":", 1)
                    candidate = f"{target}.{attr}"
                    if candidate in self.modules:
                        edges.add(candidate)
            self.import_edges[name] = edges
        self._definitions: dict[str, dict[str, Definition]] = {}
        self._resolving: set[tuple[str, str]] = set()
        for name, facts in self.modules.items():
            defs: dict[str, Definition] = {}
            for qual, fn in facts.functions.items():
                if "." not in qual:
                    defs[qual] = Definition(name, qual, "function")
            for cname in facts.classes:
                if "." not in cname:
                    defs[cname] = Definition(name, cname, "class")
            self._definitions[name] = defs
        #: simple function name -> every definition carrying it.
        self.functions_by_name: dict[str, list[tuple[str, str]]] = {}
        for name, facts in self.modules.items():
            for qual in facts.functions:
                simple = qual.rsplit(".", 1)[-1]
                self.functions_by_name.setdefault(simple, []).append(
                    (name, qual))

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #
    def resolve(self, module: str, name: str,
                _depth: int = 0) -> Definition | None:
        """Resolve ``name`` as seen from ``module`` to its definition.

        Follows import bindings (``from .impl import thing``), package
        re-exports (``__init__`` importing from a submodule), and
        top-level alias re-bindings (``thing = other_thing``), with a
        depth limit so accidental cycles cannot hang the analyzer.
        """
        if _depth > 16:
            return None
        facts = self.modules.get(module)
        if facts is None:
            return None
        local = self._definitions.get(module, {}).get(name)
        if local is not None:
            return local
        alias = facts.aliases.get(name)
        if alias is not None and alias != name:
            return self.resolve(module, alias, _depth + 1)
        binding = facts.import_bindings.get(name)
        if binding is None:
            return None
        if ":" not in binding:
            if binding in self.modules:
                return Definition(binding, "", "module")
            return None
        target_module, attr = binding.split(":", 1)
        if target_module in self.modules:
            resolved = self.resolve(target_module, attr, _depth + 1)
            if resolved is not None:
                return resolved
        # `from pkg import submodule` where submodule is a module.
        candidate = f"{target_module}.{attr}"
        if candidate in self.modules:
            return Definition(candidate, "", "module")
        return None

    def resolve_dotted(self, module: str, dotted: str) -> Definition | None:
        """Resolve a dotted use like ``pkg.mod.func`` or ``alias.func``."""
        parts = dotted.split(".")
        head = self.resolve(module, parts[0])
        if head is None:
            return None
        for part in parts[1:]:
            if head.kind == "module":
                head = self.resolve(head.module, part)
                if head is None:
                    return None
            elif head.kind == "class":
                # method lookup on a resolved class
                facts = self.modules.get(head.module)
                if facts is None:
                    return None
                qual = f"{head.qualname}.{part}"
                if qual in facts.functions:
                    return Definition(head.module, qual, "function")
                return None
            else:
                return None
        return head

    # ------------------------------------------------------------------ #
    # Call graph
    # ------------------------------------------------------------------ #
    def call_edges(self) -> dict[str, set[str]]:
        """Resolved call graph: ``module:qualname`` -> callee keys.

        Unresolvable callees (externals, dynamic dispatch) are omitted;
        method calls through ``self`` resolve within the caller's class.
        """
        edges: dict[str, set[str]] = {}
        for name, facts in self.modules.items():
            for caller, callee_dotted, _line in facts.calls:
                caller_key = f"{name}:{caller}"
                target = self._resolve_callee(name, caller, callee_dotted)
                if target is not None:
                    edges.setdefault(caller_key, set()).add(target.key)
        return edges

    def _resolve_callee(self, module: str, caller: str,
                        dotted: str) -> Definition | None:
        facts = self.modules[module]
        if dotted.startswith("self."):
            attr = dotted.split(".", 1)[1]
            if "." in attr:
                return None
            if "." in caller:
                cls = caller.rsplit(".", 1)[0]
                qual = f"{cls}.{attr}"
                if qual in facts.functions:
                    return Definition(module, qual, "function")
            return None
        return self.resolve_dotted(module, dotted)

    # ------------------------------------------------------------------ #
    # Import cycles
    # ------------------------------------------------------------------ #
    def import_cycles(self) -> list[list[str]]:
        """Strongly-connected components (size > 1) of the import graph.

        Only edges between analyzed modules participate; a package and a
        submodule importing each other is the classic cycle this surfaces.
        Deterministic: components and their members are sorted.
        """
        graph = {
            name: sorted(t for t in targets if t in self.modules)
            for name, targets in self.import_edges.items()}
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        components: list[list[str]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: recursion depth is unbounded on long
            # import chains.
            work = [(v, iter(graph.get(v, ())))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(graph.get(w, ()))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        components.append(sorted(comp))

        for v in sorted(graph):
            if v not in index:
                strongconnect(v)
        return sorted(components)

    # ------------------------------------------------------------------ #
    # Property expansion
    # ------------------------------------------------------------------ #
    def property_field_reads(self, module: str,
                             class_name: str) -> dict[str, set[str]]:
        """Per-property transitive ``self.X`` reads for one class.

        A property whose body reads another property is expanded until
        only non-property attribute names remain — exactly what RPR103
        needs to credit an engine that reads ``cfg.recovery_bandwidth``
        with a read of ``recovery_bandwidth_bps``.
        """
        facts = self.modules.get(module)
        if facts is None:
            return {}
        cls = facts.classes.get(class_name)
        if cls is None:
            return {}
        direct: dict[str, set[str]] = {}
        for prop in cls.properties:
            fn = facts.functions.get(f"{class_name}.{prop}")
            direct[prop] = set(fn.self_reads) if fn is not None else set()
        resolved: dict[str, set[str]] = {}

        def expand(prop: str, seen: frozenset[str]) -> set[str]:
            if prop in resolved:
                return resolved[prop]
            out: set[str] = set()
            for attr in direct.get(prop, ()):
                if attr in direct:
                    if attr not in seen:
                        out |= expand(attr, seen | {attr})
                else:
                    out.add(attr)
            resolved[prop] = out
            return out

        for prop in direct:
            expand(prop, frozenset({prop}))
        return resolved


def build_graph(modules: Iterable[ModuleFacts]) -> ProjectGraph:
    return ProjectGraph(modules)


def reachable_modules(import_edges: Mapping[str, set[str]],
                      start: str) -> set[str]:
    """Modules transitively imported from ``start`` (``start`` included)."""
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for target in import_edges.get(current, ()):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen
