"""Determinism rules (RPR001–RPR004, RPR011).

Reject the common ways nondeterminism sneaks into simulation code; the
rationale for each rule is catalogued in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, dotted_name, register


@register
class StdlibRandomImport(Rule):
    """RPR001 — the stdlib ``random`` module is banned in ``src/``."""

    id = "RPR001"
    summary = "stdlib `random` import; use repro.sim.rng.RandomStreams"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                self.report(node, "import of stdlib `random`; draw from a "
                                  "named RandomStreams stream instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module is not None \
                and node.module.split(".")[0] == "random":
            self.report(node, "import from stdlib `random`; draw from a "
                              "named RandomStreams stream instead")
        self.generic_visit(node)


@register
class SeedlessDefaultRng(Rule):
    """RPR002 — ``np.random.default_rng()`` without a seed is banned."""

    id = "RPR002"
    summary = "seedless np.random.default_rng(); pass a seed or use " \
              "RandomStreams"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "default_rng" \
                and not node.args and not node.keywords:
            self.report(node, "default_rng() without a seed is "
                              "nondeterministic; seed it or use "
                              "RandomStreams")
        self.generic_visit(node)


@register
class BuiltinHashCall(Rule):
    """RPR003 — builtin ``hash()`` is banned (process-salted)."""

    id = "RPR003"
    summary = "builtin hash() is process-salted; use stable_hash64"

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self.report(node, "builtin hash() is salted per process; use "
                              "repro.sim.rng.stable_hash64")
        self.generic_visit(node)


#: Directories whose code runs under the simulation clock.
SIM_DIRS = frozenset({"sim", "core", "reliability", "placement"})

#: Directories the wall-clock ban extends to beyond :data:`SIM_DIRS` —
#: the model layer, the telemetry subsystem (whose metrics must be a
#: pure function of simulated time), and the forecast service (``core``
#: appears for documentation; it is already in :data:`SIM_DIRS`, so
#: RPR004 owns it).
WALL_CLOCK_GUARDED_DIRS = frozenset({"core", "cluster", "faults",
                                     "telemetry", "service"})

#: Guarded files *allowed* to read the wall clock, with the justification
#: on record.  Keys are ``"<dir>/<basename>"`` path suffixes.  This is an
#: allowlist, not a suppression: unlike ``# repro: noqa`` it is reviewed
#: here, next to the rule, and a new wall-clock call anywhere else in a
#: guarded directory still fails.
WALL_CLOCK_ALLOWLIST: dict[str, str] = {
    # The HTTP server's request-latency histograms and refinement-queue
    # pacing measure *host* time by definition — no simulation clock
    # exists at the service layer.  Simulated time still never reaches
    # these calls: estimation math lives in reliability/, which stays
    # fully guarded.
    "service/app.py": "host-facing request latency and queue pacing",
}


def _allowlisted_wall_clock(ctx: FileContext) -> bool:
    suffix = "/".join(ctx.path.parts[-2:])
    return suffix in WALL_CLOCK_ALLOWLIST

#: Dotted-call suffixes that read the wall clock.
_WALL_CLOCK_CALLS = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)


def _is_wall_clock_call(name: str) -> bool:
    return any(name == c or name.endswith("." + c)
               for c in _WALL_CLOCK_CALLS)


@register
class WallClockInSimCode(Rule):
    """RPR004 — no wall-clock reads inside simulation code."""

    id = "RPR004"
    summary = "wall-clock read in simulation code; use the engine clock"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return bool(SIM_DIRS & ctx.parts)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and _is_wall_clock_call(name):
            self.report(node, f"wall-clock call {name}() in simulation "
                              "code; use the simulator's `now`")
        self.generic_visit(node)


@register
class WallClockInObservedCode(Rule):
    """RPR011 — no wall-clock reads in model or telemetry code.

    Directories :data:`SIM_DIRS` already guards (``core/`` is in both
    sets) report under RPR004 only, so one call never fires two rules.
    Files in :data:`WALL_CLOCK_ALLOWLIST` are exempt with their
    justification on record next to the rule.
    """

    id = "RPR011"
    summary = "wall-clock read in model/telemetry code; use sim time"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return bool(WALL_CLOCK_GUARDED_DIRS & ctx.parts) \
            and not (SIM_DIRS & ctx.parts) \
            and not _allowlisted_wall_clock(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and _is_wall_clock_call(name):
            self.report(node, f"wall-clock call {name}() in model/"
                              "telemetry code; metrics must be a pure "
                              "function of simulated time")
        self.generic_visit(node)
