"""RPR102 — RNG stream ownership (whole-program determinism taint).

Every named random stream belongs to exactly one subsystem: the
``faults-*`` streams to :mod:`repro.faults`, the ``rare-*`` streams to
the rare-event estimators, the ``bulk-*`` streams to the vectorized
bulk-lifetime engine, ``targets`` to the flat-array engine, and so on.  The discipline that keeps Monte-Carlo results reproducible is that
*only the owning subsystem consumes its streams*: a stray
``streams.get("disk-failures")`` in experiment code would advance the
failure process's generator and silently shift every later draw of the
run.  Per-file linting cannot see this — the literal is legal anywhere —
so this check maps every consumption site in the project against the
ownership registry below.

Cross-subsystem consumption that is *by design* carries an
:data:`STREAM_ALLOWLIST` entry with its justification; anything else —
including a stream name missing from the registry entirely — is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import Violation
from .callgraph import ProjectGraph

RULE_ID = "RPR102"
RULE_SUMMARY = ("RNG stream consumed outside its owning subsystem "
                "(determinism taint)")

#: Receiver spellings that mark a ``.get("...")`` call as a stream draw
#: rather than a dict/os.environ lookup.  ``.rare(...)``/``.fresh(...)``
#: are stream APIs unconditionally.
_STREAM_RECEIVER_SUFFIXES = ("streams",)


@dataclass(frozen=True)
class StreamPolicy:
    """Ownership registry: stream name/prefix -> owner module prefixes."""

    #: exact stream name -> module prefixes allowed to consume it.
    owners: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: stream-name prefix (ending in ``-``) -> owner module prefixes.
    prefix_owners: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: (stream name, consuming module) -> justification for a sanctioned
    #: cross-subsystem consumption.
    allowlist: dict[tuple[str, str], str] = field(default_factory=dict)

    def owners_of(self, stream: str) -> tuple[str, ...] | None:
        exact = self.owners.get(stream)
        if exact is not None:
            return exact
        best: tuple[str, ...] | None = None
        best_len = -1
        for prefix, owners in self.prefix_owners.items():
            if stream.startswith(prefix) and len(prefix) > best_len:
                best, best_len = owners, len(prefix)
        return best

    def allowed(self, stream: str, module: str) -> bool:
        owners = self.owners_of(stream)
        if owners is None:
            return False
        if any(module == o or module.startswith(o + ".") for o in owners):
            return True
        return (stream, module) in self.allowlist


#: The repository's registry.  Owners are dotted module prefixes; every
#: allowlist entry names *why* the cross-subsystem consumption is sound.
REPRO_STREAM_POLICY = StreamPolicy(
    owners={
        # The disk-failure process is embodied twice — flat-array engine
        # and object model — and both must consume the *same* stream for
        # cross-engine parity (tests/test_engine_equivalence.py).
        "disk-failures": ("repro.reliability.simulation",
                          "repro.cluster.system"),
        "targets": ("repro.reliability.simulation",),
        "migration": ("repro.reliability.simulation", "repro.core.farm"),
        "smart": ("repro.cluster.system",),
        "table3-sample": ("repro.experiments.table3",),
        # Failure-domain injectors (golden-pinned streams; the faults-
        # prefix rule would cover them, the exact entries make the
        # ownership greppable next to their pins).
        "faults-domain-bursts": ("repro.faults",),
        "faults-domain-outages": ("repro.faults",),
        "faults-domain-stragglers": ("repro.faults",),
    },
    prefix_owners={
        "faults-": ("repro.faults",),
        "rare-": ("repro.reliability.rare",),
        # The bulk engine's dedicated stream family (failures, placement,
        # windows).  Only the vectorized lifetime may consume them: the
        # whole point of the separate family is that a bulk run with a
        # given seed never perturbs a DES run with the same seed.
        "bulk-": ("repro.reliability.bulk",),
    },
    allowlist={
        # Scenario wiring draws the latent-error injector's stream when
        # replaying scripted latent injections, so scripted and
        # process-driven latents are bit-identical for a given seed.
        ("faults-latent", "repro.reliability.scenarios"):
            "scripted latent injections must replay the injector stream",
        # A restored splitting clone redraws the residual lifetimes of
        # still-alive drives (Markov regeneration); the redraw lives on
        # the dedicated rare-stream family precisely so enabling
        # splitting never perturbs an ordinary run.
        ("rare-clone-failures", "repro.reliability.simulation"):
            "splitting clone restore redraws residual failure times",
    },
)


def _is_stream_use(api: str, receiver: str, stream: str,
                   policy: StreamPolicy) -> bool:
    if api in ("rare", "fresh", "bulk"):
        return True
    if receiver.split(".")[-1] in _STREAM_RECEIVER_SUFFIXES:
        return True
    # `.get("faults-latent")` on an unrecognized receiver still counts
    # when the literal is a registered stream: renamed locals must not
    # dodge the check.
    return policy.owners_of(stream) is not None


def check_streams(graph: ProjectGraph,
                  policy: StreamPolicy = REPRO_STREAM_POLICY
                  ) -> list[Violation]:
    """Run RPR102 over every recorded stream use; sorted output."""
    violations: list[Violation] = []
    for facts in graph.modules.values():
        for stream, api, line, col, receiver in facts.stream_uses:
            if not _is_stream_use(api, receiver, stream, policy):
                continue
            owners = policy.owners_of(stream)
            if owners is None:
                message = (f"stream {stream!r} is not in the ownership "
                           f"registry; register it in "
                           f"repro.analysis.streams with an owner")
            elif policy.allowed(stream, facts.module):
                continue
            else:
                verb = ("reseeded" if api == "fresh" else "consumed")
                message = (f"stream {stream!r} owned by "
                           f"{'/'.join(owners)} is {verb} from "
                           f"{facts.module}; draw it in the owning "
                           f"subsystem or add an allowlist entry")
            if not facts.suppressed(line, RULE_ID):
                violations.append(Violation(
                    path=facts.path, line=line, col=col, rule=RULE_ID,
                    message=message))
    return sorted(violations)
