"""Whole-program analysis driver: collect facts, then check globally.

This is the *check* half of the two-pass design.  Pass one runs per
file — the local RPR001–012 rules plus :func:`collect_facts` — and
memoizes under the content-hash cache.  Pass two aggregates every
module's facts into a :class:`~repro.analysis.callgraph.ProjectGraph`
and runs the RPR100-series whole-program rules over it.

Internal analyzer failures never escape as tracebacks: any exception
while processing a file becomes an :class:`AnalysisError` naming the
offending file, and the CLI turns a non-empty error list into exit
status 2 (distinct from 1 = findings).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from .base import Violation
from .cache import AnalysisCache, source_digest
from .callgraph import ProjectGraph, build_graph
from .configflow import (DEADCONF_RULE_ID, DEADCONF_RULE_SUMMARY,
                         PARITY_RULE_ID, PARITY_RULE_SUMMARY,
                         check_dead_config, check_engine_parity)
from .runner import iter_python_files, lint_source
from .streams import check_streams
from .streams import RULE_ID as STREAMS_RULE_ID
from .streams import RULE_SUMMARY as STREAMS_RULE_SUMMARY
from .symbols import ModuleFacts, collect_facts
from .unitflow import check_units
from .unitflow import RULE_ID as UNITFLOW_RULE_ID
from .unitflow import RULE_SUMMARY as UNITFLOW_RULE_SUMMARY


@dataclass(frozen=True)
class ProjectRuleInfo:
    """Descriptor for one whole-program rule (reporting only).

    The RPR100 series is intentionally *not* in :data:`~.base.RULES`:
    those are per-file ``ast.NodeVisitor`` rules; these run over the
    aggregated project facts and have no per-file ``check`` entry point.
    """

    id: str
    summary: str


PROJECT_RULES: tuple[ProjectRuleInfo, ...] = (
    ProjectRuleInfo(UNITFLOW_RULE_ID, UNITFLOW_RULE_SUMMARY),
    ProjectRuleInfo(STREAMS_RULE_ID, STREAMS_RULE_SUMMARY),
    ProjectRuleInfo(PARITY_RULE_ID, PARITY_RULE_SUMMARY),
    ProjectRuleInfo(DEADCONF_RULE_ID, DEADCONF_RULE_SUMMARY),
)


@dataclass(frozen=True)
class AnalysisError:
    """An internal analyzer failure attributed to one input file."""

    path: str
    message: str

    def format(self) -> str:
        return f"internal analyzer error in {self.path}: {self.message}"


@dataclass
class AnalysisResult:
    """Findings, internal errors, and stage statistics of one run."""

    violations: list[Violation] = field(default_factory=list)
    errors: list[AnalysisError] = field(default_factory=list)
    #: facts of every successfully collected module (project pass input).
    graph: ProjectGraph | None = None
    #: paths whose content changed since the cache was last written
    #: (every path, on a cold run).
    changed_paths: frozenset[str] = frozenset()
    stats: dict[str, Any] = field(default_factory=dict)


def package_root(path: Path) -> Path:
    """Directory above the outermost package containing ``path``.

    ``src/repro/analysis/base.py`` resolves to ``src`` (the first
    ancestor without an ``__init__.py``), so module names come out as
    importable dotted paths.
    """
    current = (path if path.is_dir() else path.parent).resolve()
    while (current / "__init__.py").exists() \
            and current.parent != current:
        current = current.parent
    return current


def _analyze_file(path: Path, roots: Sequence[Path],
                  collect: bool) -> tuple[list[Violation],
                                          ModuleFacts | None]:
    source = path.read_text(encoding="utf-8")
    local = lint_source(source, path)
    facts: ModuleFacts | None = None
    if collect and not any(v.rule == "RPR000" for v in local):
        facts = collect_facts(source, path, roots)
    return local, facts


def analyze_paths(paths: Sequence[str | Path], *,
                  roots: Sequence[str | Path] | None = None,
                  cache: AnalysisCache | None = None,
                  project_checks: bool = True) -> AnalysisResult:
    """Run the full analysis (local rules + whole-program rules).

    ``roots`` defaults to the package root of each input path; pass it
    explicitly when analyzing fixture trees.  With a ``cache``,
    unchanged files are served from it — findings are identical to a
    cold run because the whole-program pass only ever consumes the
    (cached or fresh) facts.  With ``project_checks=False`` only the
    per-file rules run, matching the historical linter behavior.
    """
    start = time.perf_counter()
    result = AnalysisResult()
    if roots is None:
        root_paths = sorted({package_root(Path(p)) for p in paths})
    else:
        root_paths = [Path(r) for r in roots]
    facts_list: list[ModuleFacts] = []
    changed: set[str] = set()
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        key = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append(AnalysisError(key, f"unreadable: {exc}"))
            continue
        digest = source_digest(source)
        entry = cache.lookup(key, digest) if cache is not None else None
        if entry is not None:
            local = [Violation(**v) for v in entry["violations"]]
            raw_facts = entry.get("facts")
            facts = (ModuleFacts.from_dict(raw_facts)
                     if raw_facts is not None else None)
        else:
            changed.add(key)
            try:
                local, facts = _analyze_file(path, root_paths,
                                             collect=project_checks)
            except Exception as exc:
                result.errors.append(AnalysisError(
                    key, f"{type(exc).__name__}: {exc}"))
                continue
            if cache is not None:
                cache.store(key, digest,
                            facts.to_dict() if facts is not None
                            else None,
                            [v.to_dict() for v in local])
        result.violations.extend(local)
        if facts is not None:
            facts_list.append(facts)
    collect_elapsed = time.perf_counter() - start
    check_start = time.perf_counter()
    if project_checks:
        graph = build_graph(facts_list)
        result.graph = graph
        try:
            result.violations.extend(check_units(graph))
            result.violations.extend(check_streams(graph))
            result.violations.extend(check_engine_parity(graph))
            result.violations.extend(check_dead_config(graph))
        except Exception as exc:
            result.errors.append(AnalysisError(
                "<project-checks>", f"{type(exc).__name__}: {exc}"))
    if cache is not None:
        cache.save()
    result.violations.sort()
    result.changed_paths = frozenset(changed)
    result.stats = {
        "files": n_files,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else n_files,
        "collect_s": collect_elapsed,
        "check_s": time.perf_counter() - check_start,
    }
    return result


def restrict_to_changed(result: AnalysisResult) -> list[Violation]:
    """Findings anchored in files changed since the last cached run.

    The whole-program pass still ran over *all* facts (a stream misuse
    in an unchanged file relating to a changed owner is global
    information), but reporting narrows to the changed files — the
    ``--changed-only`` pre-commit mode.
    """
    return [v for v in result.violations
            if v.path in result.changed_paths]
