"""Weight-discipline rule (RPR012): no ad-hoc likelihood-ratio math.

Importance-sampled runs (:mod:`repro.reliability.rare`) carry a
likelihood ratio on ``RecoveryStats.log_weight``.  Combining those
weights is deceptively easy to get wrong in driver code — a naive
``sum(w * x) / sum(w)`` silently switches estimators (self-normalized,
biased at small n, wrong CI), a plain ``sum`` accumulates float error
that breaks the serial-vs-parallel bit-identity gate, and a stray
``exp(log_weight)`` can overflow.  The sanctioned path is
:class:`repro.reliability.stats.WeightedAggregate` (exact sums, validated
weights), which the sweep runner folds for every run.

Experiment drivers therefore must never touch per-run weights: reading
``.log_weight``/``.weight`` or multiplying/dividing by anything
weight-named in ``experiments/`` is flagged.  Estimator internals
(``reliability/``) are exempt — that is where the one sanctioned
implementation lives.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, register

#: Attributes that expose a run's likelihood ratio.
WEIGHT_ATTRS = frozenset({"log_weight", "weight"})

#: Directories where per-run weights must not be combined by hand.
WEIGHT_GUARDED_DIRS = frozenset({"experiments"})


def _mentions_weight(node: ast.AST) -> bool:
    """Whether an expression references anything weight-named."""
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and "weight" in n.id.lower():
            return True
        if isinstance(n, ast.Attribute) and "weight" in n.attr.lower():
            return True
    return False


@register
class AdHocWeightArithmetic(Rule):
    """RPR012 — likelihood-ratio weights combined outside WeightedAggregate.

    In ``experiments/``, reading a run's ``.log_weight``/``.weight`` or
    multiplying, dividing or exponentiating anything weight-named
    re-implements the weighted estimator by hand; use the
    ``WeightedAggregate`` the sweep aggregate already carries
    (``aggregate.weighted``) or the weighted intervals in
    ``repro.reliability.stats`` instead.
    """

    id = "RPR012"
    summary = ("ad-hoc likelihood-ratio weight arithmetic; use "
               "WeightedAggregate")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return bool(ctx.parts & WEIGHT_GUARDED_DIRS)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in WEIGHT_ATTRS:
            self.report(node, f"per-run '.{node.attr}' access in "
                              f"experiment code; weights are folded by "
                              f"WeightedAggregate (aggregate.weighted)")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Mult, ast.Div, ast.Pow)) and (
                _mentions_weight(node.left)
                or _mentions_weight(node.right)):
            self.report(node, "weight arithmetic in experiment code; "
                              "combine likelihood-ratio weights through "
                              "WeightedAggregate, not by hand")
        self.generic_visit(node)
