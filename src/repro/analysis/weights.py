"""Weight-discipline rule (RPR012): no ad-hoc likelihood-ratio math.

Experiment drivers must not touch per-run importance weights; the one
sanctioned combiner is ``reliability.stats.WeightedAggregate``.
Rationale in ``docs/ANALYSIS.md`` and ``docs/RARE_EVENTS.md``.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, register

#: Attributes that expose a run's likelihood ratio.
WEIGHT_ATTRS = frozenset({"log_weight", "weight"})

#: Directories where per-run weights must not be combined by hand.
WEIGHT_GUARDED_DIRS = frozenset({"experiments"})


def _mentions_weight(node: ast.AST) -> bool:
    """Whether an expression references anything weight-named."""
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and "weight" in n.id.lower():
            return True
        if isinstance(n, ast.Attribute) and "weight" in n.attr.lower():
            return True
    return False


@register
class AdHocWeightArithmetic(Rule):
    """RPR012 — weights combined outside WeightedAggregate."""

    id = "RPR012"
    summary = ("ad-hoc likelihood-ratio weight arithmetic; use "
               "WeightedAggregate")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return bool(ctx.parts & WEIGHT_GUARDED_DIRS)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in WEIGHT_ATTRS:
            self.report(node, f"per-run '.{node.attr}' access in "
                              f"experiment code; weights are folded by "
                              f"WeightedAggregate (aggregate.weighted)")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Mult, ast.Div, ast.Pow)) and (
                _mentions_weight(node.left)
                or _mentions_weight(node.right)):
            self.report(node, "weight arithmetic in experiment code; "
                              "combine likelihood-ratio weights through "
                              "WeightedAggregate, not by hand")
        self.generic_visit(node)
