"""Content-hash incremental cache for the whole-program analyzer.

Per-file work — the local RPR001–012 lint and the :class:`ModuleFacts`
collection — depends only on one file's bytes, so it memoizes perfectly:
the cache key is a digest of the file's content, and the cached value is
the facts dict plus the local violations.  The whole-program *check*
pass is cheap (pure dict traversal) and always runs fresh over the
aggregated facts, which is what makes warm and cold runs emit identical
findings by construction.

The cache lives in one JSON document under ``.repro-analysis-cache/``
and is fingerprinted with a digest of the analyzer's own sources: edit
any rule and every entry invalidates at once.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

#: Default cache directory, relative to the invocation cwd.
CACHE_DIR_NAME = ".repro-analysis-cache"

_CACHE_FILE = "cache.json"
_DIGEST_SIZE = 16


def source_digest(source: str) -> str:
    """Content hash of one module's source text."""
    return hashlib.blake2b(source.encode("utf-8"),
                           digest_size=_DIGEST_SIZE).hexdigest()


def analyzer_fingerprint() -> str:
    """Digest of the analyzer package's own sources.

    Stored in the cache header; a mismatch discards every entry, so a
    rule edit can never serve stale facts or stale violations.
    """
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


class AnalysisCache:
    """One-file JSON cache: path -> {digest, facts, violations}."""

    def __init__(self, directory: str | Path = CACHE_DIR_NAME,
                 fingerprint: str | None = None) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint or analyzer_fingerprint()
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict[str, Any]] = {}
        self._load()

    @property
    def path(self) -> Path:
        return self.directory / _CACHE_FILE

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("fingerprint") != self.fingerprint:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    def lookup(self, key: str, digest: str) -> dict[str, Any] | None:
        """The cached entry for ``key`` at ``digest``, if still valid."""
        entry = self._files.get(key)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, key: str, digest: str,
              facts: dict[str, Any] | None,
              violations: list[dict[str, Any]]) -> None:
        self._files[key] = {"digest": digest, "facts": facts,
                            "violations": violations}

    def save(self) -> None:
        """Write the cache atomically (rename over the old file)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"fingerprint": self.fingerprint, "files": self._files}
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)
