"""Robustness rule (RPR009): no silent exception swallows in recovery.

An ``except`` handler in the recovery-critical packages must account for
the event or propagate it; rationale in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, dotted_name, register

#: Directories where a swallowed exception can hide a degraded group.
GUARDED_DIRS = frozenset({"core", "cluster"})

#: A call whose dotted name contains one of these accounts for the event.
ACCOUNTING_TOKENS = ("stats", "trace", "record", "defer", "log", "warn",
                     "report")


@register
class SilentExceptionSwallow(Rule):
    """RPR009 — no silent exception swallows in ``core/``/``cluster/``."""

    id = "RPR009"
    summary = ("silent exception swallow in recovery code; count, trace, "
               "or propagate it")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return bool(GUARDED_DIRS & ctx.parts)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _accounts(stmt: ast.stmt) -> bool:
        """Whether a statement records the event or propagates it."""
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and any(tok in name.lower()
                                for tok in ACCOUNTING_TOKENS):
                    return True
        return False

    @staticmethod
    def _is_silent_stmt(stmt: ast.stmt) -> bool:
        """pass / continue / bare return / return None / docstring."""
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        if isinstance(stmt, ast.Return):
            return stmt.value is None or (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None)
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            return True     # stray docstring/comment expression
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if not any(self._accounts(s) for s in node.body) \
                and all(self._is_silent_stmt(s) for s in node.body):
            self.report(node, "exception swallowed with no stats/trace "
                              "accounting; the failure becomes invisible "
                              "(count it, defer it, or return a signal "
                              "value)")
        self.generic_visit(node)
