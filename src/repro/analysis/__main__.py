"""CLI for the analyzer: ``python -m repro.analysis [paths]``.

Default mode runs the per-file rules (RPR001–RPR012), exactly as the
historical linter did.  ``--strict`` adds the whole-program pass
(RPR101–RPR104: unit flow, stream ownership, engine parity, dead
config) with an incremental content-hash cache.

Exit status: 0 clean, 1 findings, 2 internal analyzer error (the
offending file is named on stderr — never a bare traceback).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import apply_baseline, load_baseline, render_baseline
from .cache import CACHE_DIR_NAME, AnalysisCache
from .project import analyze_paths, restrict_to_changed
from .reporting import (render_json, render_rule_list, render_sarif,
                        render_text)

#: CLI exit statuses.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analyzer: per-file invariant rules "
                    "(RPR001-RPR012) plus, with --strict, whole-program "
                    "unit-flow / stream-ownership / engine-parity "
                    "checks (RPR101-RPR104).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--strict", action="store_true",
                        help="also run the whole-program RPR101-RPR104 "
                             "checks")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings fingerprinted in FILE")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings to FILE and exit 0")
    parser.add_argument("--changed-only", action="store_true",
                        help="report only findings in files changed "
                             "since the last cached run")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the incremental "
                             "cache")
    parser.add_argument("--cache-dir", default=CACHE_DIR_NAME,
                        help="incremental cache directory "
                             f"(default: {CACHE_DIR_NAME})")
    parser.add_argument("--timing", action="store_true",
                        help="print per-stage timings to stderr")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return EXIT_CLEAN

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error("no such file or directory: " + ", ".join(missing))

    cache = None
    if args.strict and not args.no_cache:
        cache = AnalysisCache(args.cache_dir)
    result = analyze_paths(args.paths, cache=cache,
                           project_checks=args.strict)

    violations = result.violations
    if args.changed_only:
        violations = (restrict_to_changed(result) if cache is not None
                      else violations)
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            render_baseline(violations), encoding="utf-8")
        print(f"wrote {len(violations)} finding(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return EXIT_CLEAN
    matched = 0
    if args.baseline:
        violations, matched = apply_baseline(
            violations, load_baseline(args.baseline))

    if args.format == "json":
        print(render_json(violations))
    elif args.format == "sarif":
        print(render_sarif(violations))
    elif violations:
        print(render_text(violations))

    if args.timing:
        stats = result.stats
        print(f"analyzed {stats.get('files', 0)} file(s): "
              f"collect {stats.get('collect_s', 0.0):.3f}s "
              f"({stats.get('cache_hits', 0)} cached), "
              f"check {stats.get('check_s', 0.0):.3f}s",
              file=sys.stderr)
    for error in result.errors:
        print(error.format(), file=sys.stderr)
    if result.errors:
        return EXIT_INTERNAL_ERROR
    if violations:
        suffix = (f" ({matched} suppressed by baseline)"
                  if matched else "")
        print(f"{len(violations)} violation(s) found{suffix}",
              file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
