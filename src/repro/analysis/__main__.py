"""CLI for the invariant linter: ``python -m repro.analysis [paths]``.

Exit status is 0 when the tree is clean and 1 when any violation (or
unparseable file) is found, so the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .reporting import render_json, render_rule_list, render_text
from .runner import lint_paths


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter: determinism, unit "
                    "safety, and simulation discipline (rules RPR001-"
                    "RPR008).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error("no such file or directory: " + ", ".join(missing))

    violations = lint_paths(args.paths)
    if args.format == "json":
        print(render_json(violations))
    elif violations:
        print(render_text(violations))
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
