"""Infrastructure for the repro static-analysis pass.

A :class:`Rule` is an ``ast.NodeVisitor`` with a stable ID (``RPR001``,
``RPR002``, ...), a one-line summary, and a docstring explaining the
invariant it protects.  Rules are registered with :func:`register` and run
by :mod:`repro.analysis.runner` over every file in the linted tree.

Suppression: a violation is discarded when its source line carries a
``# repro: noqa`` comment, either bare (suppresses every rule on that
line) or listing rule IDs (``# repro: noqa RPR005`` or
``# repro: noqa RPR001, RPR007``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RPRxxx message`` — the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    path: Path
    source: str

    @property
    def basename(self) -> str:
        return self.path.name

    @property
    def parts(self) -> frozenset[str]:
        """Path components — used for directory-scoped rules."""
        return frozenset(self.path.parts)


class Rule(ast.NodeVisitor):
    """Base class for one static-analysis rule.

    Subclasses set :attr:`id` and :attr:`summary`, override visitor
    methods, and call :meth:`report` for each violation.  A rule that only
    applies to part of the tree overrides :meth:`applies_to`.
    """

    id: str = "RPR000"
    summary: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: list[Violation] = []

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        """Whether this rule runs on the given file at all."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            path=str(self.ctx.path), line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), rule=self.id,
            message=message))

    @classmethod
    def check(cls, tree: ast.AST, ctx: FileContext) -> list[Violation]:
        """Run this rule over a parsed module; return its violations."""
        inst = cls(ctx)
        inst.visit(tree)
        return inst.violations


#: All registered rule classes, in registration order.
RULES: list[type[Rule]] = []


def register(rule: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if any(r.id == rule.id for r in RULES):
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES.append(rule)
    return rule


_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<ids>[^#\n]*)", re.IGNORECASE)
_RULE_ID_RE = re.compile(r"RPR\d{3}", re.IGNORECASE)


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Parse a source line's ``# repro: noqa`` directive.

    Returns ``None`` when the line has no directive, an empty set for a
    bare ``# repro: noqa`` (suppress everything), or the set of uppercase
    rule IDs listed after it.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    ids = frozenset(i.upper() for i in _RULE_ID_RE.findall(m.group("ids")))
    return ids


def apply_noqa(violations: list[Violation],
               source_lines: list[str]) -> list[Violation]:
    """Drop violations suppressed by a ``# repro: noqa`` on their line."""
    kept = []
    for v in violations:
        if 1 <= v.line <= len(source_lines):
            ids = suppressed_rules(source_lines[v.line - 1])
            if ids is not None and (not ids or v.rule in ids):
                continue
        kept.append(v)
    return kept


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``ast.Name``/``ast.Attribute`` chain as ``a.b.c``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
