"""RPR101 — whole-program unit-flow checking.

Dimensions are exponent vectors over (bytes, seconds): ``bytes`` is
``(1, 0)``, ``seconds`` ``(0, 1)``, bandwidth ``(1, -1)``.  The collector
(:mod:`.symbols`) infers a dimension wherever the repo's base-unit
conventions declare one — ``*_bytes``/``*_s``/``*_bps`` names and
``units.*`` constants — and records symbolic constraint records for
every addition, comparison, assignment, and call argument that touches a
dimensioned expression.  This module resolves those constraints against a
*global* environment (function return dimensions, dataclass field
dimensions, property bodies — fixpoint-iterated across modules) and
flags the contradictions: ``x_s = y_bytes``, ``a_bytes + b_s``,
``f(duration_s=capacity_bytes)``.

The checker is deliberately conservative: a constraint is only flagged
when *both* sides resolve to known, different, non-dimensionless
dimensions, so untyped code stays silent instead of noisy.
"""

from __future__ import annotations

from typing import Any, Mapping

from .base import Violation
from .callgraph import ProjectGraph
from .symbols import DIMENSIONLESS, ModuleFacts, name_dim

RULE_ID = "RPR101"
RULE_SUMMARY = ("unit-flow mismatch: expression mixes bytes/seconds/"
                "bytes-per-second dimensions")

Dim = tuple[int, int]

#: How many environment-refinement sweeps to run.  Return dimensions can
#: depend on other functions' return dimensions; chains longer than this
#: stay unresolved (and therefore unflagged), never wrong.
_FIXPOINT_ROUNDS = 4

#: Cap on how many same-named definitions the unique-name fallback will
#: reconcile; names more popular than this are treated as unresolvable.
_MAX_HOMONYMS = 6


def format_dim(dim: Dim) -> str:
    named = {(1, 0): "bytes", (0, 1): "seconds",
             (1, -1): "bytes/second", (-1, 1): "seconds/byte"}
    label = named.get(dim)
    if label is not None:
        return label
    return f"bytes^{dim[0]}*seconds^{dim[1]}"


class UnitEnv:
    """Global dimension environment resolved over all module facts."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        #: ``module:qualname`` -> return dimension (or None).
        self.returns: dict[str, Dim | None] = {}
        #: attribute / property name -> dimension, when every definition
        #: in the project agrees (ambiguous names resolve to None).
        self.attr_dims: dict[str, Dim | None] = {}
        self._build()

    # -- construction -------------------------------------------------- #
    def _build(self) -> None:
        # Attribute dims from annotated class fields (suffix convention).
        for facts in self.graph.modules.values():
            for cls in facts.classes.values():
                for fname in cls.fields:
                    dim = name_dim(fname)
                    if dim is None:
                        continue
                    self._merge_attr(fname, dim)
        for _round in range(_FIXPOINT_ROUNDS):
            changed = False
            for mod_name, facts in self.graph.modules.items():
                for qual, fn in facts.functions.items():
                    key = f"{mod_name}:{qual}"
                    if self.returns.get(key) is not None:
                        continue
                    dim = self._return_dim(facts, fn.return_terms)
                    if dim is not None:
                        self.returns[key] = dim
                        changed = True
            # Property dims become attribute dims for `obj.prop` reads.
            for mod_name, facts in self.graph.modules.items():
                for cname, cls in facts.classes.items():
                    for prop in cls.properties:
                        key = f"{mod_name}:{cname}.{prop}"
                        dim = self.returns.get(key)
                        if dim is not None:
                            if self._merge_attr(prop, dim):
                                changed = True
            if not changed:
                break

    def _merge_attr(self, name: str, dim: Dim) -> bool:
        if name not in self.attr_dims:
            self.attr_dims[name] = dim
            return True
        if self.attr_dims[name] != dim:
            self.attr_dims[name] = None     # ambiguous across project
        return False

    def _return_dim(self, facts: ModuleFacts,
                    terms: list[dict[str, Any]]) -> Dim | None:
        if not terms:
            return None
        dims = {self.resolve(facts, t) for t in terms}
        dims.discard(None)
        if len(dims) == 1:
            return dims.pop()
        return None

    # -- term resolution ----------------------------------------------- #
    def resolve(self, facts: ModuleFacts,
                term: Mapping[str, Any] | None) -> Dim | None:
        if term is None:
            return None
        kind = term.get("k")
        if kind == "dim":
            e = term["e"]
            return (int(e[0]), int(e[1]))
        if kind == "attr":
            return self.attr_dims.get(term["n"])
        if kind == "call":
            return self._call_dim(facts, term["n"])
        if kind == "op":
            if term.get("partial"):
                return None
            left = self.resolve(facts, term.get("l"))
            right = self.resolve(facts, term.get("r"))
            if left is None or right is None:
                return None
            if term["op"] == "mul":
                return (left[0] + right[0], left[1] + right[1])
            return (left[0] - right[0], left[1] - right[1])
        return None

    def _call_dim(self, facts: ModuleFacts, dotted: str) -> Dim | None:
        tail = dotted.rsplit(".", 1)[-1]
        # Convention first: a callable named `*_bytes`/`*_s`/`*_bps`
        # returns that dimension.
        dim = name_dim(tail)
        if dim is not None:
            return dim
        resolved = self.graph.resolve_dotted(facts.module, dotted)
        if resolved is not None and resolved.kind == "function":
            return self.returns.get(resolved.key)
        return self._homonym_return(tail)

    def _homonym_return(self, simple: str) -> Dim | None:
        defs = self.graph.functions_by_name.get(simple, ())
        if not defs or len(defs) > _MAX_HOMONYMS:
            return None
        dims = {self.returns.get(f"{mod}:{qual}") for mod, qual in defs}
        if len(dims) == 1:
            return dims.pop()
        return None

    # -- callee parameter lookup --------------------------------------- #
    def param_dim(self, facts: ModuleFacts, dotted: str,
                  param: str | None, pos: int | None) -> Dim | None:
        """Dimension of the parameter a call argument lands on."""
        if param is not None:
            # Keyword arguments name the parameter directly; if the name
            # itself carries a suffix, no resolution is needed.
            direct = name_dim(param)
            if direct is not None:
                return direct
        name = self._callee_param_name(facts, dotted, param, pos)
        if name is None:
            return None
        return name_dim(name)

    def _callee_param_name(self, facts: ModuleFacts, dotted: str,
                           param: str | None,
                           pos: int | None) -> str | None:
        resolved = self.graph.resolve_dotted(facts.module, dotted)
        if resolved is not None:
            target = self.graph.modules.get(resolved.module)
            if target is None:
                return None
            if resolved.kind == "function":
                fn = target.functions.get(resolved.qualname)
                if fn is None:
                    return None
                if param is not None:
                    return param if param in fn.params else None
                if pos is not None and pos < len(fn.params):
                    return fn.params[pos]
                return None
            if resolved.kind == "class":
                cls = target.classes.get(resolved.qualname)
                init = target.functions.get(f"{resolved.qualname}."
                                            "__init__")
                if init is not None:
                    if param is not None:
                        return param if param in init.params else None
                    if pos is not None and pos < len(init.params):
                        return init.params[pos]
                    return None
                if cls is not None:
                    # dataclass: fields are the constructor signature.
                    fields = list(cls.fields)
                    if param is not None:
                        return param if param in cls.fields else None
                    if pos is not None and pos < len(fields):
                        return fields[pos]
                return None
            return None
        # Unique-name fallback for unresolvable method calls: use the
        # parameter only when every same-named definition agrees.
        tail = dotted.rsplit(".", 1)[-1]
        defs = self.graph.functions_by_name.get(tail, ())
        if not defs or len(defs) > _MAX_HOMONYMS:
            return None
        names: set[str | None] = set()
        for mod, qual in defs:
            fn = self.graph.modules[mod].functions.get(qual)
            if fn is None:
                return None
            if param is not None:
                names.add(param if param in fn.params else None)
            elif pos is not None and pos < len(fn.params):
                names.add(fn.params[pos])
            else:
                names.add(None)
        if len(names) == 1:
            return names.pop()
        return None


def check_units(graph: ProjectGraph) -> list[Violation]:
    """Run RPR101 over every collected constraint; sorted output."""
    env = UnitEnv(graph)
    violations: list[Violation] = []
    for facts in graph.modules.values():
        for record in facts.unit_constraints:
            v = _check_record(env, facts, record)
            if v is not None and not facts.suppressed(v.line, RULE_ID):
                violations.append(v)
    return sorted(violations)


def _conflicting(a: Dim | None, b: Dim | None) -> bool:
    return (a is not None and b is not None and a != b
            and a != DIMENSIONLESS and b != DIMENSIONLESS)


def _check_record(env: UnitEnv, facts: ModuleFacts,
                  record: Mapping[str, Any]) -> Violation | None:
    kind = record["kind"]
    if kind == "binop":
        left = env.resolve(facts, record["l"])
        right = env.resolve(facts, record["r"])
        if _conflicting(left, right):
            what = ("comparison between" if record["op"] == "cmp"
                    else "addition of")
            return Violation(
                path=facts.path, line=record["line"], col=record["col"],
                rule=RULE_ID,
                message=f"{what} {format_dim(left)} and "
                        f"{format_dim(right)} quantities")
    elif kind == "assign":
        tdim = (int(record["tdim"][0]), int(record["tdim"][1]))
        vdim = env.resolve(facts, record["v"])
        if _conflicting(tdim, vdim):
            return Violation(
                path=facts.path, line=record["line"], col=record["col"],
                rule=RULE_ID,
                message=f"`{record['target']}` declares "
                        f"{format_dim(tdim)} but is assigned a "
                        f"{format_dim(vdim)} value")
    elif kind == "callarg":
        vdim = env.resolve(facts, record["v"])
        if vdim is None or vdim == DIMENSIONLESS:
            return None
        pdim = env.param_dim(facts, record["callee"],
                             record.get("param"), record.get("pos"))
        if _conflicting(pdim, vdim):
            label = record.get("param")
            where = (f"parameter `{label}`" if label
                     else f"argument {record.get('pos')}")
            return Violation(
                path=facts.path, line=record["line"], col=record["col"],
                rule=RULE_ID,
                message=f"{format_dim(vdim)} value passed to "
                        f"{format_dim(pdim)} {where} of "
                        f"`{record['callee']}`")
    return None
