"""Unit-safety rules (RPR005–RPR006).

Keep sizes, durations and bandwidths in SI base units (bytes, seconds,
bytes/second); rationale in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast

from .. import units
from .base import FileContext, Rule, register

#: Literal values that must be written as ``units.*`` expressions.
MAGIC_LITERALS: dict[float, str] = {
    float(units.MB): "units.MB",
    float(units.GB): "units.GB",
    float(units.TB): "units.TB",
    float(units.PB): "units.PB",
    float(units.HOUR): "units.HOUR",
    float(units.DAY): "units.DAY",
    float(7 * units.DAY): "7 * units.DAY",
    float(units.MONTH): "units.MONTH",
    float(units.YEAR): "units.YEAR",
}


@register
class MagicUnitLiteral(Rule):
    """RPR005 — unit-valued magic literals must use ``repro.units``."""

    id = "RPR005"
    summary = "magic unit literal; spell it with repro.units constants"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.basename != "units.py"

    def visit_Constant(self, node: ast.Constant) -> None:
        v = node.value
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            suggestion = MAGIC_LITERALS.get(float(v))
            if suggestion is not None:
                self.report(node, f"magic literal {v!r}; write "
                                  f"{suggestion} (repro.units)")


#: Parameter-name suffixes that scale or obscure the base unit.
DEPRECATED_SUFFIXES: dict[str, str] = {}
for _s in ("_kb", "_mb", "_gb", "_tb", "_pb", "_kib", "_mib", "_gib",
           "_tib"):
    DEPRECATED_SUFFIXES[_s] = "_bytes"
for _s in ("_ms", "_us", "_ns", "_min", "_mins", "_minutes", "_hr",
           "_hrs", "_hours", "_days", "_years"):
    DEPRECATED_SUFFIXES[_s] = "_s"
for _s in ("_kbps", "_mbps", "_gbps"):
    DEPRECATED_SUFFIXES[_s] = "_bps"


@register
class NonBaseUnitParameter(Rule):
    """RPR006 — public function parameters use base-unit suffixes."""

    id = "RPR006"
    summary = "scaled-unit parameter suffix; use _bytes/_s/_bps base units"

    def _check_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> None:
        if node.name.startswith("_"):
            return
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            lowered = arg.arg.lower()
            for suffix, base in DEPRECATED_SUFFIXES.items():
                if lowered.endswith(suffix):
                    self.report(arg, f"parameter `{arg.arg}` uses a "
                                     f"scaled unit suffix; take base units "
                                     f"as `{arg.arg[:-len(suffix)]}{base}` "
                                     f"and convert with repro.units")
                    break

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)
