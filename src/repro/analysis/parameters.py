"""Parameterization rule (RPR010): no shadow copies of config defaults.

Definition sites stay legal: a dataclass field default (``x: float =
0.4``) or a function-parameter default (``def f(p=0.4)``) *is* the
parameter, not a copy of it.  Rationale in ``docs/ANALYSIS.md``; the
whole-program generalization by *name* is RPR104.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, register

#: Float literal -> the configuration parameter it shadows.  Curated by
#: hand: only values that are (a) actual defaults of
#: ``SystemConfig``/``SmartMonitor`` knobs and (b) distinctive enough not
#: to collide with unrelated constants.
KNOWN_PARAMETER_DEFAULTS: dict[float, str] = {
    0.4: ("SystemConfig.smart_detection_probability (or "
          "target_utilization)"),
    0.01: "SystemConfig.smart_false_positive_rate",
    0.04: "SystemConfig.spare_reserve_fraction",
    30.0: "SystemConfig.detection_latency",
}

#: Directories where engine code consumes these parameters.
PARAM_GUARDED_DIRS = frozenset({"core", "cluster", "reliability", "disks"})


@register
class HardcodedParameterDefault(Rule):
    """RPR010 — bare numeric literal shadows a configurable parameter."""

    id = "RPR010"
    summary = "bare copy of a config parameter default; plumb it instead"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return bool(ctx.parts & PARAM_GUARDED_DIRS)

    def visit_Module(self, node: ast.Module) -> None:
        self._definition_sites: set[int] = set()
        for n in ast.walk(node):
            defaults: list[ast.expr | None] = []
            if isinstance(n, ast.AnnAssign) and n.value is not None:
                defaults.append(n.value)
            elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                defaults.extend(n.args.defaults)
                defaults.extend(n.args.kw_defaults)
            for default in defaults:
                if default is not None:
                    self._definition_sites.update(
                        id(c) for c in ast.walk(default))
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        v = node.value
        if not isinstance(v, float):
            return
        parameter = KNOWN_PARAMETER_DEFAULTS.get(v)
        if parameter is None or id(node) in self._definition_sites:
            return
        self.report(node, f"bare literal {v!r} shadows {parameter}; "
                          f"read the configured value instead")
