"""Simulation-discipline rules (RPR007–RPR008).

Library modules stay silent and never write the simulation clock;
rationale in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule, register

#: Basenames where ``print`` is an intentional sink.
PRINT_SINKS = frozenset({"__main__.py", "trace.py"})


@register
class PrintInLibraryCode(Rule):
    """RPR007 — no ``print()`` in library modules."""

    id = "RPR007"
    summary = "print() in library module; return text or use a trace sink"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.basename not in PRINT_SINKS

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(node, "print() in library code; return the text "
                              "or route it through a TraceRecorder sink")
        self.generic_visit(node)


@register
class AssignsSimulationClock(Rule):
    """RPR008 — nothing may assign to the simulation clock."""

    id = "RPR008"
    summary = "assignment to a simulation clock attribute (`.now`/`._now`)"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.basename != "engine.py"

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt)
        elif isinstance(target, ast.Attribute) \
                and target.attr in ("now", "_now"):
            self.report(target, f"assignment to `.{target.attr}`; the "
                                "clock only advances inside the engine's "
                                "event loop")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)
