"""Cluster substrate: system model, detection, replacement, workload."""

from .detection import (ConstantDetection, DetectionModel, HeartbeatDetection,
                        UniformDetection)
from .monitoring import DetectionEvent, HeartbeatMonitor
from .replacement import BatchReplacementPolicy, plan_migration
from .system import StorageSystem
from .topology import Topology, enforce_domain_constraint
from .workload import ConstantWorkload, DiurnalWorkload

__all__ = [
    "StorageSystem",
    "Topology", "enforce_domain_constraint",
    "DetectionModel", "ConstantDetection", "UniformDetection",
    "HeartbeatDetection",
    "BatchReplacementPolicy", "plan_migration",
    "DiurnalWorkload", "ConstantWorkload",
    "HeartbeatMonitor", "DetectionEvent",
]
