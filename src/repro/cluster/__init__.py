"""Cluster substrate: system model, detection, replacement, workload."""

from .detection import (ConstantDetection, DetectionModel, HeartbeatDetection,
                        UniformDetection)
from .monitoring import DetectionEvent, HeartbeatMonitor
from .replacement import BatchReplacementPolicy, plan_migration
from .system import StorageSystem
from .workload import ConstantWorkload, DiurnalWorkload

__all__ = [
    "StorageSystem",
    "DetectionModel", "ConstantDetection", "UniformDetection",
    "HeartbeatDetection",
    "BatchReplacementPolicy", "plan_migration",
    "DiurnalWorkload", "ConstantWorkload",
    "HeartbeatMonitor", "DetectionEvent",
]
