"""Batch disk replacement and the cohort effect (paper §3.6).

Large systems add drives in *batches*: "It is typically infeasible to add
disk drives one by one ... Instead, a cluster of disk drives, called a
batch, is added."  The replacement threshold (fraction of the original
population lost before a batch arrives) determines replacement frequency,
migration volume, and — because new drives suffer infant mortality — the
*cohort effect* on reliability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchReplacementPolicy:
    """Replace failed drives once a threshold fraction has been lost.

    Parameters
    ----------
    threshold:
        Trigger a batch when ``failed_unreplaced / initial_population``
        reaches this fraction (the paper examines 2%, 4%, 6%, 8%).
    restore_population:
        If True (paper behaviour), the batch size equals the number of
        unreplaced failures, keeping total capacity constant.
    weight:
        RUSH weight of the new batch's disks relative to the originals
        ("currently, the weight of each disk is set to that of the existing
        drives for simplicity").
    """

    threshold: float
    restore_population: bool = True
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def should_trigger(self, failed_unreplaced: int,
                       initial_population: int) -> bool:
        return failed_unreplaced >= self.threshold * initial_population

    def batch_size(self, failed_unreplaced: int) -> int:
        return failed_unreplaced if self.restore_population else 0


def plan_migration(rng: np.random.Generator, block_disks: np.ndarray,
                   live_mask: np.ndarray, new_disks: np.ndarray
                   ) -> np.ndarray:
    """Choose which block instances migrate onto a new batch.

    To keep the system balanced, each new disk should end up with the
    population-average number of blocks, i.e. a fraction
    ``len(new) / (len(live) + len(new))`` of all live blocks moves, chosen
    uniformly (this matches RUSH's behaviour, where the moved fraction
    equals the batch's share of total weight).

    Parameters
    ----------
    block_disks:
        1-D array: current disk of every block instance.
    live_mask:
        Boolean mask over *disks*: which disk ids are alive pre-batch.
    new_disks:
        Ids of the disks in the new batch.

    Returns
    -------
    An int64 array the same shape as ``block_disks``: the new disk of every
    block (unchanged for blocks that stay put).  The caller is responsible
    for rejecting moves that would violate the one-block-per-disk-per-group
    constraint.
    """
    block_disks = np.asarray(block_disks)
    n_new = len(new_disks)
    if n_new == 0:
        return block_disks.copy()
    live_blocks = live_mask[block_disks]
    n_live_disks = int(live_mask.sum())
    share = n_new / (n_live_disks + n_new)
    move = live_blocks & (rng.random(block_disks.shape) < share)
    out = block_disks.copy()
    out[move] = rng.choice(new_disks, size=int(move.sum()))
    return out
