"""Object-level storage-system model.

A :class:`StorageSystem` wires the substrates together: it sizes the disk
population from a :class:`~repro.config.SystemConfig`, builds the redundancy
groups, places their blocks with RUSH (or the random-equivalent placement),
samples every drive's failure time from the bathtub model, and maintains the
disk -> groups index the recovery engines need.

This is the *library* model: explicit :class:`~repro.disks.disk.Disk` and
:class:`~repro.redundancy.group.RedundancyGroup` objects, suitable for
examples, tests, the object-level FARM engine, and the utilization study
(Table 3).  The Monte-Carlo reliability sweeps use the flat-array engine in
:mod:`repro.reliability.simulation`, which is validated against this model.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..disks.disk import Disk, DiskState
from ..disks.smart import SmartMonitor
from ..placement.base import PlacementAlgorithm
from ..placement.copyset import CopysetPlacement
from ..placement.random_placement import RandomPlacement
from ..placement.rush import RushPlacement
from ..redundancy.group import RedundancyGroup
from ..sim.rng import RandomStreams
from .topology import Topology, enforce_domain_constraint


class StorageSystem:
    """Disks + redundancy groups + placement for one simulated system."""

    def __init__(self, config: SystemConfig, streams: RandomStreams,
                 placement: PlacementAlgorithm | None = None,
                 deterministic_failures: bool = False,
                 failure_draw=None) -> None:
        self.config = config
        self.streams = streams
        #: scenario mode: drives (including spares and batches added later)
        #: never fail on their own; only injected failures occur.
        self.deterministic_failures = deterministic_failures
        #: optional importance-sampling proposal implementing the
        #: :class:`~repro.reliability.simulation.FailureDraw` protocol; it
        #: consumes the same ``disk-failures`` stream draws as the plain
        #: model and accumulates the likelihood ratio on ``log_weight``.
        self.failure_draw = failure_draw
        #: nullable observability handle; set by the recovery manager when
        #: a run is telemetry-enabled (see repro.telemetry).
        self.telemetry = None
        self.disks: list[Disk] = []
        self.groups: list[RedundancyGroup] = []
        #: disk id -> group ids that ever placed a block there (entries may
        #: be stale after rebuilds/migration; always re-check group.disks).
        self._disk_groups: list[list[int]] = []
        #: simulator-known failure time of each disk (absolute seconds).
        self.failure_times: list[float] = []
        self.initial_population = 0
        #: failure-domain tree shared with the fault injectors and the
        #: recovery policy; 1 x 1 by default (the paper's flat pool).
        self.topology = Topology(config.racks, config.machines_per_rack,
                                 config.n_disks)

        if placement is None:
            if config.placement == "rush":
                placement = RushPlacement(config.n_disks,
                                          seed=streams.seed)
            elif config.placement == "copyset":
                placement = CopysetPlacement(config.n_disks,
                                             group_size=config.scheme.n,
                                             topology=self.topology,
                                             seed=streams.seed)
            else:
                placement = RandomPlacement(config.n_disks,
                                            seed=streams.seed)
        elif placement.n_disks != config.n_disks:
            raise ValueError(
                f"placement covers {placement.n_disks} disks but config "
                f"needs {config.n_disks}")
        self.placement = placement
        self.smart: SmartMonitor | None = None
        if config.use_smart:
            self.smart = SmartMonitor(
                streams.get("smart"),
                detection_probability=config.smart_detection_probability,
                warning_horizon=config.smart_warning_horizon,
                false_positive_rate=config.smart_false_positive_rate)
        self._build()

    # ------------------------------------------------------------------ #
    def _new_disk(self, disk_id: int, now: float,
                  slot: int | None = None) -> Disk:
        if disk_id >= self.topology.n_disks:
            # Replacement disks inherit the failed slot's machine; disks
            # added without a slot (capacity batches) tile round-robin.
            self.topology.add_disk(slot_of=slot)
        disk = Disk(disk_id=disk_id, vintage=self.config.vintage,
                    deployed_at=now,
                    spare_reserve_fraction=self.config.spare_reserve_fraction)
        if self.deterministic_failures:
            age = float("inf")
        elif self.failure_draw is not None:
            rng = self.streams.get("disk-failures")
            age = float(self.failure_draw.sample(
                rng, 1, horizon_age=self.config.duration - now)[0])
        else:
            rng = self.streams.get("disk-failures")
            age = float(self.config.vintage.failure_model.sample_failure_age(
                rng, 1)[0])
        self.disks.append(disk)
        self._disk_groups.append([])
        self.failure_times.append(now + age)
        if self.smart is not None:
            self.smart.register(disk_id)
        return disk

    def _build(self) -> None:
        cfg = self.config
        for disk_id in range(cfg.n_disks):
            self._new_disk(disk_id, now=0.0)
        self.initial_population = cfg.n_disks

        grp_ids = np.arange(cfg.n_groups, dtype=np.int64)
        matrix = self.placement.place_many(grp_ids, cfg.scheme.n)
        matrix = enforce_domain_constraint(matrix, self.topology,
                                           cfg.max_chunks_per_domain,
                                           self.placement)
        block_bytes = cfg.block_bytes
        for g in range(cfg.n_groups):
            disks = [int(d) for d in matrix[g]]
            group = RedundancyGroup(grp_id=g, scheme=cfg.scheme,
                                    user_bytes=cfg.group_user_bytes,
                                    disks=disks)
            self.groups.append(group)
            for d in disks:
                self._disk_groups[d].append(g)
        # Bulk utilization accounting (per-block allocation would be O(G n)
        # method calls; a bincount is equivalent and fast).
        loads = np.bincount(matrix.ravel(), minlength=len(self.disks))
        for disk, count in zip(self.disks, loads):
            disk.used_bytes = float(count) * block_bytes

    # ------------------------------------------------------------------ #
    @property
    def n_disks(self) -> int:
        return len(self.disks)

    def online_disks(self) -> list[Disk]:
        return [d for d in self.disks if d.online]

    def groups_on_disk(self, disk_id: int) -> list[RedundancyGroup]:
        """Groups with a *live* block currently on ``disk_id``."""
        out = []
        seen = set()
        for g in self._disk_groups[disk_id]:
            if g in seen:
                continue
            seen.add(g)
            group = self.groups[g]
            if any(d == disk_id and r not in group.failed
                   for r, d in enumerate(group.disks)):
                out.append(group)
        return out

    def note_block_moved(self, grp_id: int, disk_id: int) -> None:
        """Record that a group now keeps a block on ``disk_id``."""
        self._disk_groups[disk_id].append(grp_id)

    def utilization_bytes(self) -> np.ndarray:
        """Per-disk used bytes (0 for failed disks, matching Figure 6)."""
        return np.array([d.used_bytes if d.online else 0.0
                         for d in self.disks])

    def domain_violation(self, group: RedundancyGroup, target: int,
                         moving_rep: int | None = None) -> bool:
        """Would putting a block of ``group`` on ``target`` break the cap?

        ``max_chunks_per_domain`` bounds how many blocks of one group may
        share a rack.  ``moving_rep`` excludes a block that is being moved
        *from* its current disk (migration), since it vacates its rack.
        Always False when the constraint is disabled.
        """
        limit = self.config.max_chunks_per_domain
        if limit is None:
            return False
        topo = self.topology
        rack = topo.rack_of(target)
        count = 0
        for rep, disk_id in enumerate(group.disks):
            if rep == moving_rep or rep in group.failed or disk_id < 0:
                continue
            if topo.rack_of(disk_id) == rack:
                count += 1
        return count >= limit

    def is_suspect(self, disk_id: int, now: float) -> bool:
        """SMART advice for target selection (False without a monitor)."""
        if self.smart is None:
            return False
        return self.smart.is_suspect(disk_id, now,
                                     self.failure_times[disk_id])

    # ------------------------------------------------------------------ #
    def fail_disk(self, disk_id: int, now: float
                  ) -> list[tuple[RedundancyGroup, list[int]]]:
        """Mark a disk failed.

        Returns ``(group, newly_failed_rep_ids)`` for every group that just
        lost a block — exactly the rebuild work this failure creates.
        """
        disk = self.disks[disk_id]
        disk.fail(now)
        # Whole-disk failure supersedes any latent errors on it: the blocks
        # are failed wholesale below.
        disk.latent_blocks.clear()
        affected = []
        for group in self.groups_on_disk(disk_id):
            reps = group.fail_disk(disk_id, now)
            affected.append((group, reps))
        if self.smart is not None:
            self.smart.forget(disk_id)
        return affected

    # -- transient outages ------------------------------------------------- #
    def take_offline(self, disk_id: int, now: float) -> None:
        """Begin a transient outage (data intact, disk unreachable)."""
        self.disks[disk_id].set_offline(now)

    def bring_online(self, disk_id: int, now: float) -> bool:
        """End a transient outage.

        Returns False (and does nothing) if the disk permanently failed
        while it was offline — the restore event is then stale.
        """
        disk = self.disks[disk_id]
        if disk.state is not DiskState.OFFLINE:
            return False
        disk.restore(now)
        return True

    # -- latent sector errors ---------------------------------------------- #
    def inject_latent_error(self, disk_id: int, rng: np.random.Generator,
                            now: float) -> tuple[int, int] | None:
        """Silently corrupt one uniformly-chosen live block on ``disk_id``.

        Returns the corrupted ``(grp_id, rep_id)``, or None when the disk
        holds no live, not-already-corrupt block.  Nothing else observes
        the corruption until a scrub or a rebuild read discovers it.
        """
        disk = self.disks[disk_id]
        candidates = [
            (group.grp_id, rep)
            for group in self.groups_on_disk(disk_id)
            for rep, d in enumerate(group.disks)
            if d == disk_id and rep not in group.failed
            and not disk.has_latent_error(group.grp_id, rep)]
        if not candidates:
            return None
        grp_id, rep_id = candidates[int(rng.integers(len(candidates)))]
        disk.add_latent_error(grp_id, rep_id, now)
        if self.telemetry is not None:
            self.telemetry.latent_injected.inc()
        return grp_id, rep_id

    def has_latent_error(self, disk_id: int, grp_id: int,
                         rep_id: int) -> bool:
        return self.disks[disk_id].has_latent_error(grp_id, rep_id)

    def clear_latent_error(self, disk_id: int, grp_id: int,
                           rep_id: int) -> float | None:
        """Forget a latent error; returns its corruption time if present."""
        return self.disks[disk_id].clear_latent_error(grp_id, rep_id)

    def latent_error_count(self) -> int:
        """Undiscovered latent errors currently present in the system."""
        return sum(len(d.latent_blocks) for d in self.disks if not d.dead)

    # -- index maintenance -------------------------------------------------- #
    def compact_index(self) -> int:
        """Rebuild ``_disk_groups`` from live group state.

        Rebuilds and migration append to the index without ever removing
        the superseded entries, so after a replacement batch the lists can
        hold many stale (group moved away / block failed) references that
        :meth:`groups_on_disk` must filter on every failure.  This sweep
        drops them; returns the number of stale entries removed.
        """
        fresh: list[list[int]] = [[] for _ in self.disks]
        for group in self.groups:
            for rep, disk_id in enumerate(group.disks):
                if rep in group.failed or disk_id < 0:
                    continue
                fresh[disk_id].append(group.grp_id)
        dropped = sum(len(e) for e in self._disk_groups) \
            - sum(len(e) for e in fresh)
        self._disk_groups = fresh
        if self.telemetry is not None and dropped > 0:
            self.telemetry.index_entries_compacted.inc(dropped)
        return dropped

    def add_spare(self, now: float, slot: int | None = None) -> int:
        """Deploy one dedicated spare disk (traditional RAID recovery).

        The spare is *not* added to the placement algorithm: it exists only
        to receive a failed disk's reconstructed data, which is exactly the
        non-declustered behaviour FARM improves upon.  ``slot`` names the
        failed disk whose bay the spare occupies, so it inherits that
        slot's failure domain.
        """
        disk_id = self.n_disks
        self._new_disk(disk_id, now, slot=slot)
        if self.telemetry is not None:
            self.telemetry.spares_provisioned.inc()
        return disk_id

    def add_batch(self, count: int, now: float,
                  weight: float = 1.0) -> list[int]:
        """Deploy a replacement batch; returns the new disk ids.

        The placement algorithm is grown so future candidate lists can use
        the new disks (a RUSH sub-cluster, or a plain population increase
        for the random placement).
        """
        if count <= 0:
            raise ValueError("batch must contain at least one disk")
        first = self.n_disks
        if isinstance(self.placement, RushPlacement):
            self.placement.add_cluster(count, weight=weight)
        elif isinstance(self.placement, (RandomPlacement,
                                         CopysetPlacement)):
            self.placement.add_disks(count)
        for disk_id in range(first, first + count):
            self._new_disk(disk_id, now)
        return list(range(first, first + count))

    def migrate_to_batch(self, new_ids: list[int], now: float,
                         rng: np.random.Generator) -> int:
        """Rebalance: move a fair share of live blocks onto the new batch.

        Returns the number of blocks moved.  Moves that would co-locate two
        blocks of the same group are skipped (the constraint the recovery
        policy also enforces).
        """
        live = [d.disk_id for d in self.disks if d.online]
        share = len(new_ids) / len(live) if live else 0.0
        moved = 0
        block_bytes = self.config.block_bytes
        for group in self.groups:
            if group.lost:
                continue
            for rep, disk_id in enumerate(group.disks):
                if rep in group.failed or disk_id in new_ids:
                    continue
                if not self.disks[disk_id].online:
                    continue    # transiently unreachable: cannot be read
                if rng.random() >= share:
                    continue
                target = int(rng.choice(new_ids))
                if group.holds_buddy(target):
                    continue
                if self.domain_violation(group, target, moving_rep=rep):
                    continue    # rebalance must not breach the rack cap
                if not self.disks[target].can_accept(block_bytes):
                    continue    # never overfill a replacement drive
                self.disks[disk_id].release(block_bytes)
                # A migrated block is rewritten from a clean replica, so a
                # latent error in the abandoned copy dies with it.
                self.disks[disk_id].clear_latent_error(group.grp_id, rep)
                self.disks[target].allocate(block_bytes)
                group.disks[rep] = target
                self.note_block_moved(group.grp_id, target)
                moved += 1
        if self.telemetry is not None and moved > 0:
            self.telemetry.blocks_migrated.inc(moved)
        return moved
