"""User-workload model modulating recovery bandwidth (paper §2.4).

"This recovery bandwidth is not fixed in a large storage system.  It
fluctuates with the intensity of user requests, especially if we exploit
system idle time and adapt recovery to the workload."  The paper's
experiments use a fixed recovery bandwidth; this module implements the
fluctuation as an extension (benchmarked by ``bench_ablation_workload``).

The model is a diurnal load profile: user load ``L(t)`` in [0, 1) follows a
raised cosine with a 24-hour period, and the bandwidth available to recovery
at time t is ``base * (1 - L(t))``.  Transfer times are computed by exact
integration of the piecewise-smooth rate, so a rebuild that spans the busy
peak automatically stretches.
"""

from __future__ import annotations

import math

from ..units import DAY, HOUR


class DiurnalWorkload:
    """Raised-cosine daily load profile.

    Parameters
    ----------
    peak_load:
        Fraction of recovery bandwidth consumed by user traffic at the daily
        peak (0 disables modulation).
    trough_load:
        Load at the quietest hour.
    peak_time:
        Seconds after midnight of the load maximum.
    """

    def __init__(self, peak_load: float = 0.7, trough_load: float = 0.1,
                 peak_time: float = 14 * HOUR) -> None:
        if not 0 <= trough_load <= peak_load < 1:
            raise ValueError("need 0 <= trough <= peak < 1")
        self.peak_load = float(peak_load)
        self.trough_load = float(trough_load)
        self.peak_time = float(peak_time)

    # -- load profile --------------------------------------------------- #
    def load(self, t: float) -> float:
        """User load in [0, 1) at absolute time ``t``."""
        mid = 0.5 * (self.peak_load + self.trough_load)
        amp = 0.5 * (self.peak_load - self.trough_load)
        phase = 2.0 * math.pi * (t - self.peak_time) / DAY
        return mid + amp * math.cos(phase)

    def available_fraction(self, t: float) -> float:
        """Fraction of recovery bandwidth usable at time ``t``."""
        return 1.0 - self.load(t)

    # -- transfer-time integration ---------------------------------------- #
    def _integral(self, t: float) -> float:
        """Integral of available_fraction from 0 to t (closed form)."""
        mid = 0.5 * (self.peak_load + self.trough_load)
        amp = 0.5 * (self.peak_load - self.trough_load)
        w = 2.0 * math.pi / DAY
        return ((1.0 - mid) * t
                - (amp / w) * (math.sin(w * (t - self.peak_time))
                               - math.sin(w * (-self.peak_time))))

    def time_to_transfer(self, nbytes: float, base_bandwidth: float,
                         start: float) -> float:
        """Wall time to move ``nbytes`` starting at ``start``.

        Solves ``integral(available_fraction) * base_bandwidth == nbytes``
        by bisection on the closed-form integral (monotone because load < 1).
        """
        if nbytes <= 0:
            return 0.0
        if base_bandwidth <= 0:
            raise ValueError("base bandwidth must be positive")
        need = nbytes / base_bandwidth          # seconds of full-rate work
        base = self._integral(start)
        # Bracket: full rate is an underestimate of elapsed time; the
        # trough-rate bound overestimates.
        lo = need
        hi = need / max(1e-9, 1.0 - self.peak_load)
        f = lambda dt: self._integral(start + dt) - base - need
        while f(hi) < 0:     # numerical safety; cannot loop forever
            hi *= 2.0
        for _ in range(80):
            midpt = 0.5 * (lo + hi)
            if f(midpt) < 0:
                lo = midpt
            else:
                hi = midpt
        return 0.5 * (lo + hi)


class ConstantWorkload:
    """Degenerate workload: a fixed fraction of bandwidth is always free."""

    def __init__(self, load: float = 0.0) -> None:
        if not 0 <= load < 1:
            raise ValueError("load must be in [0, 1)")
        self._load = float(load)

    def load(self, t: float) -> float:
        return self._load

    def available_fraction(self, t: float) -> float:
        return 1.0 - self._load

    def time_to_transfer(self, nbytes: float, base_bandwidth: float,
                         start: float) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / (base_bandwidth * (1.0 - self._load))
