"""A concrete failure detector: heartbeat polling on the process layer.

The paper treats detection as a latency parameter ("strategies for
efficient failure detection are beyond the scope of this paper").  This
module implements the simplest real detector so the latency distribution
is *produced* rather than assumed: a monitor process sweeps the disk
population every ``period`` seconds; a disk that misses ``misses_allowed``
consecutive probes is declared failed after a final ``probe_timeout``.

The resulting detection latency is ``U(0, period) + (misses_allowed - 1) *
period + probe_timeout`` — whose mean matches the closed-form
:class:`~repro.cluster.detection.HeartbeatDetection` model, a
correspondence asserted in ``tests/test_monitoring.py``.  Built on
:class:`~repro.sim.process.Process`, it doubles as the library's largest
in-tree user of the generator-process layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..sim.engine import Simulator
from ..sim.process import Process, Timeout


@dataclass
class DetectionEvent:
    """One detection: which disk, when it failed, when we noticed."""

    disk_id: int
    failed_at: float
    detected_at: float

    @property
    def latency(self) -> float:
        return self.detected_at - self.failed_at


class HeartbeatMonitor:
    """Sweep-based failure detector.

    Parameters
    ----------
    sim:
        The simulator to run on.
    is_alive:
        ``is_alive(disk_id) -> bool`` — ground truth probe (a real monitor
        would send an RPC; the simulation asks the disk model).
    disk_ids:
        Population to watch (may grow via :meth:`watch`).
    period:
        Sweep interval (seconds).
    probe_timeout:
        Time to conclude a probe failed.
    misses_allowed:
        Consecutive missed probes before declaring failure (>=1); higher
        values trade latency for robustness against transient noise.
    on_detect:
        Callback ``(disk_id, detected_at)`` fired at detection time.
    telemetry:
        Optional :class:`~repro.telemetry.handle.Telemetry` handle: each
        detection's latency is observed into the fixed-bound
        ``repro_detection_latency_seconds`` histogram, which parallel
        sweeps merge in run-index order like the span histograms.
    """

    def __init__(self, sim: Simulator, is_alive: Callable[[int], bool],
                 disk_ids: list[int], period: float,
                 probe_timeout: float = 0.0, misses_allowed: int = 1,
                 on_detect: Callable[[int, float], None] | None = None,
                 telemetry=None) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if probe_timeout < 0:
            raise ValueError("probe_timeout cannot be negative")
        if misses_allowed < 1:
            raise ValueError("misses_allowed must be >= 1")
        self.sim = sim
        self.is_alive = is_alive
        self.period = float(period)
        self.probe_timeout = float(probe_timeout)
        self.misses_allowed = misses_allowed
        self.on_detect = on_detect
        self.telemetry = telemetry
        self.detections: list[DetectionEvent] = []
        self._watched: dict[int, int] = {d: 0 for d in disk_ids}
        self._failed_at: dict[int, float] = {}
        self._detected: set[int] = set()
        self._process = Process(sim, self._sweeper(), name="heartbeat")

    # -- population ------------------------------------------------------ #
    def watch(self, disk_id: int) -> None:
        """Add a disk (replacement batches) to the sweep."""
        self._watched.setdefault(disk_id, 0)

    def note_failure(self, disk_id: int, failed_at: float) -> None:
        """Record ground-truth failure time (for latency bookkeeping).

        Optional: when not called, latency is measured from the first
        missed probe instead.
        """
        self._failed_at[disk_id] = failed_at

    def forget(self, disk_id: int) -> None:
        self._watched.pop(disk_id, None)
        self._detected.discard(disk_id)

    # -- the sweep process -------------------------------------------------- #
    def _sweeper(self) -> Iterator[Timeout]:
        while True:
            yield Timeout(self.period)
            now = self.sim.now
            for disk_id in list(self._watched):
                if disk_id in self._detected:
                    continue
                if self.is_alive(disk_id):
                    self._watched[disk_id] = 0
                    continue
                self._watched[disk_id] += 1
                if self._watched[disk_id] >= self.misses_allowed:
                    yield Timeout(self.probe_timeout)
                    self._declare(disk_id, self.sim.now)

    def _declare(self, disk_id: int, now: float) -> None:
        self._detected.add(disk_id)
        failed_at = self._failed_at.get(disk_id, now)
        event = DetectionEvent(disk_id=disk_id, failed_at=failed_at,
                               detected_at=now)
        self.detections.append(event)
        if self.telemetry is not None:
            self.telemetry.detection_latency(event.latency)
        if self.on_detect is not None:
            self.on_detect(disk_id, now)

    # -- statistics --------------------------------------------------------- #
    def latencies(self) -> list[float]:
        return [e.latency for e in self.detections]

    def mean_latency(self) -> float:
        lats = self.latencies()
        return sum(lats) / len(lats) if lats else 0.0

    def expected_mean_latency(self) -> float:
        """Closed-form mean of the produced latency distribution."""
        return (0.5 * self.period
                + (self.misses_allowed - 1) * self.period
                + self.probe_timeout)

    def stop(self) -> None:
        self._process.interrupt("monitor stopped")
