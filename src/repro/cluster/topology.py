"""Hierarchical failure domains: rack -> machine -> disk.

The paper evaluates recovery over a flat pool of disks, but real fleets
fail by shelf, machine, and rack (Rashmi et al., arXiv:1309.0186), and
that correlation is exactly what kills declustered redundancy.  This
module models the hierarchy as a :class:`Topology` — a stable mapping
from disk id to machine id (racks are contiguous runs of machines) —
shared by both recovery engines and by the domain fault injectors.

Design invariants:

* **Flat by default.**  ``Topology(1, 1, n)`` puts every disk in one
  machine in one rack, so the default :class:`~repro.config.SystemConfig`
  reproduces the paper's flat pool bit-for-bit.
* **Stable ids.**  Domain membership is keyed by disk id and never
  reassigned, so it survives ``compact_index()`` and migration (both
  leave disk ids untouched).
* **Slot inheritance.**  A replacement disk installed for a failed slot
  joins the slot's machine — a new drive goes into the old drive's bay.
  Disks added without a slot (capacity batches) tile round-robin, which
  keeps machine populations balanced within one disk.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..placement.base import PlacementAlgorithm, PlacementError


class Topology:
    """Rack/machine/disk tree with stable, append-only membership.

    Machines are numbered ``0 .. racks * machines_per_rack - 1``; rack
    ``r`` owns the contiguous machine range
    ``[r * machines_per_rack, (r + 1) * machines_per_rack)``.  Disks are
    assigned round-robin across machines at construction (balanced to
    within one disk) and appended via :meth:`add_disk`.
    """

    def __init__(self, racks: int, machines_per_rack: int,
                 n_disks: int = 0) -> None:
        if racks < 1 or machines_per_rack < 1:
            raise ValueError("topology needs >= 1 rack and >= 1 "
                             "machine per rack")
        if n_disks < 0:
            raise ValueError("n_disks cannot be negative")
        self.racks = racks
        self.machines_per_rack = machines_per_rack
        self.n_machines = racks * machines_per_rack
        self._machine_of: list[int] = [d % self.n_machines
                                       for d in range(n_disks)]

    @classmethod
    def from_assignments(cls, racks: int, machines_per_rack: int,
                         machine_of: Sequence[int]) -> "Topology":
        """Rebuild a topology from captured machine assignments."""
        topo = cls(racks, machines_per_rack, 0)
        for m in machine_of:
            if not 0 <= m < topo.n_machines:
                raise ValueError(f"machine id {m} out of range")
            topo._machine_of.append(int(m))
        return topo

    # -- queries ---------------------------------------------------------- #
    @property
    def n_disks(self) -> int:
        return len(self._machine_of)

    @property
    def is_flat(self) -> bool:
        """True when the tree degenerates to the paper's flat pool."""
        return self.n_machines == 1

    def machine_of(self, disk_id: int) -> int:
        return self._machine_of[disk_id]

    def rack_of(self, disk_id: int) -> int:
        return self._machine_of[disk_id] // self.machines_per_rack

    def rack_of_machine(self, machine_id: int) -> int:
        return machine_id // self.machines_per_rack

    def machines_in_rack(self, rack_id: int) -> range:
        if not 0 <= rack_id < self.racks:
            raise ValueError(f"rack {rack_id} out of range")
        first = rack_id * self.machines_per_rack
        return range(first, first + self.machines_per_rack)

    def disks_in_machine(self, machine_id: int) -> list[int]:
        return [d for d, m in enumerate(self._machine_of)
                if m == machine_id]

    def disks_in_rack(self, rack_id: int) -> list[int]:
        machines = self.machines_in_rack(rack_id)
        return [d for d, m in enumerate(self._machine_of)
                if machines.start <= m < machines.stop]

    def domain_disks(self, level: str, domain_id: int) -> list[int]:
        """Disks in one domain, ``level`` being ``"rack"`` or ``"machine"``."""
        if level == "rack":
            return self.disks_in_rack(domain_id)
        if level == "machine":
            return self.disks_in_machine(domain_id)
        raise ValueError(f"unknown domain level {level!r}")

    def n_domains(self, level: str) -> int:
        if level == "rack":
            return self.racks
        if level == "machine":
            return self.n_machines
        raise ValueError(f"unknown domain level {level!r}")

    def assignments(self) -> list[int]:
        """Machine id per disk id (for split-state capture/restore)."""
        return list(self._machine_of)

    def rack_array(self) -> np.ndarray:
        """Rack id per disk id as an int64 array (vectorized callers)."""
        if not self._machine_of:
            return np.zeros(0, dtype=np.int64)
        return (np.asarray(self._machine_of, dtype=np.int64)
                // self.machines_per_rack)

    def rack_counts(self, disk_ids: Iterable[int]) -> dict[int, int]:
        """How many of ``disk_ids`` live in each rack."""
        counts: dict[int, int] = {}
        for d in disk_ids:
            r = self.rack_of(d)
            counts[r] = counts.get(r, 0) + 1
        return counts

    # -- growth ----------------------------------------------------------- #
    def add_disk(self, slot_of: int | None = None) -> int:
        """Register the next disk id; returns its machine id.

        ``slot_of`` names the disk whose physical slot the newcomer
        occupies (a replacement inherits that slot's machine); without a
        slot the disk tiles round-robin like the initial population.
        """
        if slot_of is not None:
            machine = self._machine_of[slot_of]
        else:
            machine = len(self._machine_of) % self.n_machines
        self._machine_of.append(machine)
        return machine


def enforce_domain_constraint(matrix: np.ndarray, topology: Topology,
                              limit: int | None,
                              placement: PlacementAlgorithm) -> np.ndarray:
    """Repair an initial placement matrix to honour the rack constraint.

    ``matrix`` is the (G, n) group->disks table both engines build from
    ``placement.place_many``.  Rows where some rack holds more than
    ``limit`` blocks are re-placed by walking the group's own candidate
    sequence (prefix-stable, no RNG consumed) and keeping the first n
    distinct disks that stay within the per-rack budget.  With
    ``limit is None`` the matrix is returned untouched, so flat configs
    and all golden pins are unaffected.
    """
    if limit is None or matrix.size == 0:
        return matrix
    n = matrix.shape[1]
    rack_arr = topology.rack_array()
    racks_mat = rack_arr[matrix]
    if limit >= n:
        return matrix
    # A rack exceeds the limit iff a sorted row has limit+1 equal
    # consecutive entries.
    srt = np.sort(racks_mat, axis=1)
    bad = (srt[:, limit:] == srt[:, :-limit]).any(axis=1)
    for g in np.flatnonzero(bad):
        matrix[g] = _constrained_row(int(g), n, topology, limit, placement)
    return matrix


def _constrained_row(grp_id: int, n: int, topology: Topology, limit: int,
                     placement: PlacementAlgorithm) -> list[int]:
    """First n distinct disks of the group's candidate walk within budget."""
    chosen: list[int] = []
    counts: dict[int, int] = {}

    def admit(d: int) -> bool:
        if d in chosen:
            return False
        r = topology.rack_of(d)
        if counts.get(r, 0) >= limit:
            return False
        chosen.append(d)
        counts[r] = counts.get(r, 0) + 1
        return True

    want = n
    while len(chosen) < n and want <= placement.n_disks:
        try:
            cands = placement.candidates(grp_id, want)
        except PlacementError:
            break
        for d in cands:
            if admit(d) and len(chosen) == n:
                return chosen
        if want == placement.n_disks:
            break
        want = min(want * 2, placement.n_disks)
    # Deterministic fallback: linear scan (feasibility is validated by
    # SystemConfig.__post_init__, so this always completes the row).
    for d in range(placement.n_disks):
        if admit(d) and len(chosen) == n:
            return chosen
    raise PlacementError(
        f"group {grp_id}: cannot satisfy max {limit} blocks/rack with "
        f"{placement.n_disks} disks in {topology.racks} racks")
