"""Failure-detection latency models (paper §3.3).

"The window of vulnerability consists of the time to detect a failure and
the time to rebuild the data."  The paper treats detection strategy as out
of scope and measures the *impact of the latency*; we provide the constant
model it uses plus two richer models (uniform jitter, heartbeat polling) for
sensitivity studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class DetectionModel(ABC):
    """Maps a disk failure to the moment the system notices it."""

    @abstractmethod
    def latency(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw detection latencies (seconds) for ``size`` failures."""

    @abstractmethod
    def mean_latency(self) -> float:
        """Expected latency (used by the ratio analysis of Figure 4(b))."""


class ConstantDetection(DetectionModel):
    """Fixed latency — the model used throughout the paper's evaluation."""

    def __init__(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self._latency = float(latency)

    def latency(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return np.full(size, self._latency)

    def mean_latency(self) -> float:
        return self._latency

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantDetection({self._latency:g}s)"


class UniformDetection(DetectionModel):
    """Latency uniform on [lo, hi] — models variable monitoring delay."""

    def __init__(self, lo: float, hi: float) -> None:
        if not 0 <= lo <= hi:
            raise ValueError("need 0 <= lo <= hi")
        self.lo, self.hi = float(lo), float(hi)

    def latency(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.uniform(self.lo, self.hi, size)

    def mean_latency(self) -> float:
        return 0.5 * (self.lo + self.hi)


class HeartbeatDetection(DetectionModel):
    """Polling with period T: failure detected at the next probe.

    A failure at a uniform phase of the polling cycle is noticed after
    U(0, T) plus a fixed processing delay.
    """

    def __init__(self, period: float, processing: float = 0.0) -> None:
        if period <= 0 or processing < 0:
            raise ValueError("need period > 0 and processing >= 0")
        self.period = float(period)
        self.processing = float(processing)

    def latency(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.uniform(0.0, self.period, size) + self.processing

    def mean_latency(self) -> float:
        return 0.5 * self.period + self.processing
