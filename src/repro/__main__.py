"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run figure3 --scale smoke --jobs 4
    python -m repro run all --scale small --out results/
    python -m repro run figure3 --telemetry results/telemetry.jsonl
    python -m repro run figure5 --estimator is
    python -m repro run rare
    python -m repro run bulk
    python -m repro estimate --data-pb 2 --scheme 1/2 --runs 20 [--no-farm]
    python -m repro sensitivity --scheme 1/2 [--no-farm]
    python -m repro sweep-check --jobs 2
    python -m repro telemetry-summary results/telemetry.jsonl
    python -m repro serve --port 9130 --cache results/forecast-cache.jsonl
    python -m repro forecast '{"racks": 2}' --url http://127.0.0.1:9130

``run`` executes the named experiment(s) at the chosen scale and prints the
regenerated table; ``estimate`` answers the library's core question — the
probability of data loss for one configuration — ``sensitivity`` ranks
which design knob moves it the most, and ``sweep-check`` asserts the sweep
runner's determinism guarantee (parallel aggregates — and merged telemetry
snapshots — bit-identical to a serial run) on a small multi-point sweep.
``run --telemetry PATH`` enables the in-sim metrics subsystem
(:mod:`repro.telemetry`) for every Monte-Carlo sweep in the invocation and
appends one merged JSONL record per sweep point; ``telemetry-summary``
renders such a file for humans.  ``run --estimator
{naive,is,splitting,bulk}`` switches the p_loss figures to a rare-event
estimator or the vectorized bulk engine, ``run rare`` compares the
rare-event estimators at equal budget (:doc:`docs/RARE_EVENTS.md`), and
``run bulk`` benchmarks the bulk engine against the process-pool naive-MC
baseline and asserts its >= 100x throughput claim
(:doc:`docs/BULK_ENGINE.md`).  ``serve`` runs the interactive
reliability-forecast HTTP service (:mod:`repro.service`, layered
estimator cascade with content-addressed caching; docs/SERVICE.md) and
``forecast`` is its one-shot client.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .config import SystemConfig
from .experiments import SCALES, ablations, base
from .experiments import (availability_sweep, bulk_sweep, faults_sweep,
                          figure3, figure4, figure5, figure7, figure8,
                          mttdl_table, perf_table, rare_sweep, redirection,
                          table1, table3, topology_sweep)
from .redundancy.schemes import MIRROR_3, RedundancyScheme
from .reliability import estimate_p_loss, p_loss_window_model
from .service.protocol import DEFAULT_PORT
from .units import GB, PB

#: Experiment registry: name -> callable(scale, base_seed, estimator)
#: -> result(s).  Only the p_loss figures honour ``estimator`` (see
#: ``--estimator``); the rest ignore it.
EXPERIMENTS = {
    "table1": lambda s, seed, est: [table1.run(s, seed)],
    "figure3": lambda s, seed, est: list(figure3.run_both_panels(s, seed)),
    "figure4": lambda s, seed, est: [figure4.run(s, seed)],
    "figure5": lambda s, seed, est: [figure5.run(s, seed, estimator=est)],
    "table3": lambda s, seed, est: [table3.run(s, seed)],
    "figure7": lambda s, seed, est: [figure7.run(s, seed, estimator=est)],
    "figure8": lambda s, seed, est: [
        figure8.run(s, seed, estimator=est),
        figure8.run(s, seed, rate_multiplier=2.0, estimator=est)],
    "redirection": lambda s, seed, est: [redirection.run(s, seed)],
    "mttdl": lambda s, seed, est: [mttdl_table.run(s, seed)],
    "faults": lambda s, seed, est: [faults_sweep.run(s, seed)],
    "perf": lambda s, seed, est: [perf_table.run(s, seed)],
    "rare": lambda s, seed, est: [rare_sweep.run(s, seed)],
    "bulk": lambda s, seed, est: [bulk_sweep.run(s, seed)],
    "topology": lambda s, seed, est: [topology_sweep.run(s, seed)],
    "availability": lambda s, seed, est: [availability_sweep.run(s, seed)],
    "ablations": lambda s, seed, est: [ablations.run_placement(s, seed),
                                       ablations.run_policy(s, seed),
                                       ablations.run_workload(s, seed),
                                       ablations.run_bathtub(s, seed),
                                       ablations.run_mixed_scheme(s, seed)],
}


def cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print(f"scales: {', '.join(SCALES)} (REPRO_SCALE also honoured)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import dataclasses
    import os
    scale = SCALES[args.scale] if args.scale else base.current_scale()
    if args.jobs is not None:
        scale = dataclasses.replace(scale, n_jobs=args.jobs)
    if args.telemetry:
        # One file per invocation: truncate, then let every sweep this
        # process runs append its per-point records (the runner reads
        # REPRO_TELEMETRY_PATH as its default sink).
        tele_path = pathlib.Path(args.telemetry)
        tele_path.parent.mkdir(parents=True, exist_ok=True)
        tele_path.write_text("")
        os.environ["REPRO_TELEMETRY_PATH"] = str(tele_path)
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        start = time.time()
        for result in EXPERIMENTS[name](scale, args.seed, args.estimator):
            text = result.render()
            print(text)
            print()
            if out_dir:
                (out_dir / f"{result.experiment}.txt").write_text(
                    text + "\n")
        print(f"[{name}: {time.time() - start:.1f}s]", file=sys.stderr)
    if args.telemetry:
        print(f"[telemetry: {args.telemetry}]", file=sys.stderr)
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    cfg = SystemConfig(
        total_user_bytes=args.data_pb * PB,
        group_user_bytes=args.group_gb * GB,
        scheme=RedundancyScheme.parse(args.scheme),
        detection_latency=args.detection,
        use_farm=not args.no_farm,
    )
    print(cfg.describe())
    model = p_loss_window_model(cfg)
    print(f"analytic window model: P(loss over 6 yr) = "
          f"{100 * model.p_loss:.3f}%  (mean window "
          f"{model.mean_window:,.0f} s, "
          f"~{model.expected_disk_failures:,.0f} drive failures)")
    if args.runs > 0:
        mc = estimate_p_loss(cfg, n_runs=args.runs, n_jobs=args.jobs)
        print(f"monte carlo ({args.runs} runs): P(loss) = {mc.p_loss}")
    return 0


def cmd_sweep_check(args: argparse.Namespace) -> int:
    """Assert the sweep runner's determinism guarantee end to end.

    Runs a small multi-point sweep twice — serially and with worker
    processes — and requires every aggregate (losses, CI input, window
    sums/max, Welford moments) to be *bit-identical*, and the merged
    per-point telemetry snapshots to be *byte-identical* under canonical
    JSON.  Also validates the BENCH_sweep.json perf record the parallel
    run writes.  A second, tilted pass repeats the check for *weighted*
    runs: importance-sampled sweeps must fold their likelihood-ratio
    weights through the same reorder buffers, so the weighted sums, ESS,
    and CLT interval must also match bit-for-bit.  A third pass repeats
    the unweighted check on the bulk engine (``engine="bulk"``, no
    telemetry — the engine has no event loop to observe), whose parallel
    path ships *chunks* of runs per task: the reorder buffers must fold
    them back to the serial result bit-for-bit too.
    """
    import tempfile

    from .reliability import shutdown_pool, sweep
    from .reliability.rare import DEFAULT_TILT
    from .reliability.runner import BENCH_SCHEMA, read_bench_records
    from .telemetry import canonical_json
    from .units import TB

    tiny = SystemConfig(total_user_bytes=args.data_tb * TB,
                        group_user_bytes=10 * GB)
    points = {
        "farm": tiny,
        "traditional": tiny.with_(use_farm=False),
        "slow-detect": tiny.with_(detection_latency=600.0),
        # Non-flat topology with the domain cap active: the fast engine's
        # constraint/deferral paths must also be serial/parallel
        # bit-identical.
        "topology": tiny.with_(racks=4, machines_per_rack=2,
                               max_chunks_per_domain=1),
        # Lazy recovery with a rate-limited repair lane: the held-rebuild
        # queue and unavailability-span accounting must fold through the
        # reorder buffers bit-identically too.  (Excluded from the bulk
        # pass below — recovery_threshold > 1 is bulk-unsupported.)
        "availability": tiny.with_(scheme=MIRROR_3, recovery_threshold=2,
                                   repair_bandwidth_fraction=0.2),
    }
    serial = sweep(points, n_runs=args.runs, base_seed=args.seed,
                   n_jobs=None, bench_path=None, sweep_name="sweep-check",
                   telemetry=True, telemetry_path="")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        bench_path = tmp.name
    parallel = sweep(points, n_runs=args.runs, base_seed=args.seed,
                     n_jobs=args.jobs, bench_path=bench_path,
                     sweep_name="sweep-check",
                     telemetry=True, telemetry_path="")
    shutdown_pool()

    failures = []
    for label in points:
        s, p = serial[label], parallel[label]
        if canonical_json(s.telemetry) != canonical_json(p.telemetry):
            failures.append(f"{label}.telemetry: serial and parallel "
                            f"merged snapshots are not byte-identical")
        checks = {
            "losses": (s.losses, p.losses),
            "p_loss": (s.p_loss, p.p_loss),
            "groups_lost_total": (s.groups_lost_total,
                                  p.groups_lost_total),
            "mean_window": (s.mean_window, p.mean_window),
            "max_window": (s.max_window, p.max_window),
            "disk_failures_total": (s.disk_failures_total,
                                    p.disk_failures_total),
            "redirections_total": (s.redirections_total,
                                   p.redirections_total),
            "window_moments.m2": (s.aggregate.window_moments.m2,
                                  p.aggregate.window_moments.m2),
            "failure_moments.m2": (s.aggregate.failure_moments.m2,
                                   p.aggregate.failure_moments.m2),
            "unavail_group_seconds": (s.aggregate.unavail_group_seconds,
                                      p.aggregate.unavail_group_seconds),
            "unavail_spans": (s.aggregate.unavail_spans,
                              p.aggregate.unavail_spans),
            "rebuilds_held": (s.aggregate.rebuilds_held,
                              p.aggregate.rebuilds_held),
        }
        for field_name, (a, b) in checks.items():
            if a != b:
                failures.append(f"{label}.{field_name}: {a!r} != {b!r}")
    record = read_bench_records(pathlib.Path(bench_path))[-1]
    for key in ("schema", "wall_time_s", "events_fired", "runs_per_s",
                "points"):
        if key not in record:
            failures.append(f"BENCH record missing {key!r}")
    if record.get("schema") != BENCH_SCHEMA:
        failures.append(f"BENCH schema {record.get('schema')!r}")
    if len(record.get("points", [])) != len(points):
        failures.append("BENCH per-point timings incomplete")
    pathlib.Path(bench_path).unlink(missing_ok=True)

    # Weighted pass: same points under exponential tilting.  The LR
    # weights ride on each RecoveryStats and fold through the identical
    # reorder-buffer path, so every weighted sum is exact-sum mergeable
    # and the parallel result must equal the serial one bit-for-bit.
    serial_w = sweep(points, n_runs=args.runs, base_seed=args.seed,
                     n_jobs=None, bench_path=None,
                     sweep_name="sweep-check-tilted", tilt=DEFAULT_TILT)
    parallel_w = sweep(points, n_runs=args.runs, base_seed=args.seed,
                       n_jobs=args.jobs, bench_path=None,
                       sweep_name="sweep-check-tilted", tilt=DEFAULT_TILT)
    shutdown_pool()
    for label in points:
        s, p = serial_w[label], parallel_w[label]
        sw, pw = s.aggregate.weighted, p.aggregate.weighted
        checks = {
            "tilted.p_loss": (s.p_loss, p.p_loss),
            "tilted.losses": (s.losses, p.losses),
            "tilted.w_sum": (sw.w_sum.value, pw.w_sum.value),
            "tilted.w_sq_sum": (sw.w_sq_sum.value, pw.w_sq_sum.value),
            "tilted.wx_sum": (sw.wx_sum.value, pw.wx_sum.value),
            "tilted.wx_sq_sum": (sw.wx_sq_sum.value, pw.wx_sq_sum.value),
            "tilted.ess": (sw.ess, pw.ess),
        }
        for field_name, (a, b) in checks.items():
            if a != b:
                failures.append(f"{label}.{field_name}: {a!r} != {b!r}")

    # Bulk pass: the supported points on the vectorized engine.  Its
    # parallel path submits chunked tasks, so this exercises the
    # chunk-expansion side of the reorder buffers (and the capped
    # topology sampler).  Points outside the bulk engine's envelope
    # (lazy recovery) run on the DES passes only.
    from .reliability.bulk import bulk_unsupported_reasons
    bulk_points = {label: cfg for label, cfg in points.items()
                   if not bulk_unsupported_reasons(cfg)}
    serial_b = sweep(bulk_points, n_runs=args.runs, base_seed=args.seed,
                     n_jobs=None, bench_path=None,
                     sweep_name="sweep-check-bulk", engine="bulk")
    parallel_b = sweep(bulk_points, n_runs=args.runs, base_seed=args.seed,
                       n_jobs=args.jobs, bench_path=None,
                       sweep_name="sweep-check-bulk", engine="bulk")
    shutdown_pool()
    for label in bulk_points:
        s, p = serial_b[label], parallel_b[label]
        checks = {
            "bulk.losses": (s.losses, p.losses),
            "bulk.p_loss": (s.p_loss, p.p_loss),
            "bulk.groups_lost_total": (s.groups_lost_total,
                                       p.groups_lost_total),
            "bulk.mean_window": (s.mean_window, p.mean_window),
            "bulk.max_window": (s.max_window, p.max_window),
            "bulk.disk_failures_total": (s.disk_failures_total,
                                         p.disk_failures_total),
            "bulk.window_moments.m2": (s.aggregate.window_moments.m2,
                                       p.aggregate.window_moments.m2),
        }
        for field_name, (a, b) in checks.items():
            if a != b:
                failures.append(f"{label}.{field_name}: {a!r} != {b!r}")

    if failures:
        print("sweep-check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"sweep-check OK: {len(points)} points x {args.runs} runs, "
          f"serial == parallel (jobs={args.jobs}) incl. telemetry "
          f"snapshots, weighted (tilted) aggregates, and bulk-engine "
          f"chunked folds, BENCH record valid "
          f"({record['runs_per_s']:.1f} runs/s)")
    return 0


def cmd_telemetry_summary(args: argparse.Namespace) -> int:
    """Render a ``repro.telemetry.v1`` JSONL file for humans."""
    from .telemetry import read_jsonl, render_summary
    path = pathlib.Path(args.path)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    records = read_jsonl(path)
    if not records:
        print(f"{path}: no telemetry records", file=sys.stderr)
        return 1
    print(render_summary(records))
    return 0


def _build_service(args: argparse.Namespace):
    """A ForecastService wired from serve's CLI flags."""
    from .service import (ForecastCache, ForecastCascade, ForecastService,
                          GridStore)
    from .reliability.runner import SweepRunner
    cache = ForecastCache(path=args.cache or None)
    grids = GridStore.load_dir(args.grids) if args.grids else GridStore()
    cascade = ForecastCascade(
        cache=cache, grids=grids,
        runner=SweepRunner(n_jobs=args.jobs, bench_path=None,
                           telemetry_path=""),
        live_runs=args.runs, target_ci_width=args.target_width)
    return ForecastService(cascade)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the forecast service (or its --smoke self-check)."""
    import asyncio
    if args.smoke:
        return _serve_smoke(args)
    service = _build_service(args)
    port = args.port if args.port is not None else DEFAULT_PORT
    print(f"repro forecast service on http://{args.host}:{port} "
          f"(POST /forecast, GET /forecast/<key>, /healthz, /metrics)")
    try:
        asyncio.run(service.serve_forever(args.host, port))
    except KeyboardInterrupt:
        pass
    return 0


def _serve_smoke(args: argparse.Namespace) -> int:
    """One in-process query per cascade tier on an ephemeral port.

    The check.sh gate: boots the real server (own thread + event loop),
    exercises the analytic, markov, and live tiers plus the cache-hit
    path and /metrics, and fails loudly on any wrong tier or status.
    """
    from .service import run_in_thread, request_forecast
    from .service.protocol import get_forecast
    from urllib.request import urlopen
    handle = run_in_thread(_build_service(args))
    failures: list[str] = []
    try:
        flat_hazard = {"vintage": {"failure_model": {"periods": [
            {"start_months": 0.0, "end_months": None,
             "pct_per_1000h": 0.2}]}}}
        probes = [
            ("analytic", {}),
            ("markov", flat_hazard),
            ("live-bulk", {"racks": 2, "machines_per_rack": 5}),
        ]
        for want_tier, cfg in probes:
            reply = request_forecast(handle.url, {"config": cfg})
            ok = reply["tier"] == want_tier
            print(f"  {want_tier:<9} p_loss={reply['p_loss']:.4g} "
                  f"ci=[{reply['ci_lo']:.4g}, {reply['ci_hi']:.4g}] "
                  f"{'ok' if ok else 'WRONG TIER ' + reply['tier']}")
            if not ok:
                failures.append(f"expected tier {want_tier}, got "
                                f"{reply['tier']}")
            key = reply["key"]
        repeat = get_forecast(handle.url, key)
        if repeat["trials"] < args.runs:
            failures.append("cache miss on repeated live query")
        with urlopen(handle.url + "/metrics") as resp:
            metrics = resp.read().decode("utf-8")
        for needed in ("service_requests_total",
                       "service_request_seconds"):
            if needed not in metrics:
                failures.append(f"/metrics missing {needed}")
    finally:
        handle.stop()
    if failures:
        for f in failures:
            print(f"serve-smoke FAILED: {f}", file=sys.stderr)
        return 1
    print(f"serve-smoke OK: 3 tiers answered, cache hit on repeat, "
          f"/metrics exported")
    return 0


def cmd_forecast(args: argparse.Namespace) -> int:
    """One-shot client: POST a config, print the forecast."""
    import json
    from .service import ForecastError, request_forecast
    raw = args.config
    if raw == "-":
        raw = sys.stdin.read()
    elif not raw.lstrip().startswith("{"):
        raw = pathlib.Path(raw).read_text(encoding="utf-8")
    try:
        config = json.loads(raw)
    except ValueError as exc:
        print(f"config is not JSON: {exc}", file=sys.stderr)
        return 2
    try:
        reply = request_forecast(
            args.url, {"config": config, "confidence": args.confidence})
    except ForecastError as exc:
        print(f"refused ({exc.status}): {exc.message}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc} (is 'python -m repro "
              f"serve' running?)", file=sys.stderr)
        return 2
    print(json.dumps(reply, indent=2))
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from .reliability.sensitivity import render_tornado, tornado
    cfg = SystemConfig(
        total_user_bytes=args.data_pb * PB,
        group_user_bytes=args.group_gb * GB,
        scheme=RedundancyScheme.parse(args.scheme),
        detection_latency=args.detection,
        use_farm=not args.no_farm,
    )
    print(cfg.describe())
    rows = tornado(cfg)
    print("elasticity of the 6-year loss rate (analytic window model):")
    print(render_tornado(rows))
    worst = rows[0]
    print(f"most influential: {worst.parameter} "
          f"(x1.25 => P(loss) {100 * worst.p_plus:.3f}%, "
          f"x0.75 => {100 * worst.p_minus:.3f}%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FARM reproduction (HPDC 2004) experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    run = sub.add_parser("run", help="regenerate a paper table/figure")
    run.add_argument("experiment",
                     help="experiment name or 'all' (see 'list')")
    run.add_argument("--scale", choices=list(SCALES), default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", help="directory to save rendered tables")
    run.add_argument("--jobs", type=int, default=None,
                     help="Monte-Carlo worker processes (0 = all cores; "
                          "overrides REPRO_JOBS; results are bit-identical "
                          "to a serial run)")
    run.add_argument("--telemetry", metavar="PATH", default=None,
                     help="enable in-sim telemetry and append one merged "
                          "JSONL record per sweep point to PATH "
                          "(sets REPRO_TELEMETRY_PATH; render with "
                          "'telemetry-summary')")
    run.add_argument("--estimator", choices=list(base.ESTIMATORS),
                     default="naive",
                     help="p_loss estimator for figure5/7/8: naive MC, "
                          "importance sampling (is), multilevel "
                          "splitting (see docs/RARE_EVENTS.md), or the "
                          "vectorized bulk engine (docs/BULK_ENGINE.md)")

    est = sub.add_parser("estimate",
                         help="P(data loss) for one configuration")
    est.add_argument("--data-pb", type=float, default=2.0)
    est.add_argument("--group-gb", type=float, default=10.0)
    est.add_argument("--scheme", default="1/2")
    est.add_argument("--detection", type=float, default=30.0,
                     help="failure-detection latency (seconds)")
    est.add_argument("--no-farm", action="store_true",
                     help="use the traditional spare-disk baseline")
    est.add_argument("--runs", type=int, default=0,
                     help="Monte-Carlo runs (0 = analytic only)")
    est.add_argument("--jobs", type=int, default=None,
                     help="processes for Monte-Carlo (0 = all cores)")

    sens = sub.add_parser("sensitivity",
                          help="rank design knobs by influence on P(loss)")
    sens.add_argument("--data-pb", type=float, default=2.0)
    sens.add_argument("--group-gb", type=float, default=10.0)
    sens.add_argument("--scheme", default="1/2")
    sens.add_argument("--detection", type=float, default=30.0)
    sens.add_argument("--no-farm", action="store_true")

    chk = sub.add_parser("sweep-check",
                         help="assert parallel sweep aggregates are "
                              "bit-identical to a serial run")
    chk.add_argument("--jobs", type=int, default=2,
                     help="worker processes for the parallel run")
    chk.add_argument("--runs", type=int, default=6,
                     help="lifetimes per sweep point")
    chk.add_argument("--seed", type=int, default=0)
    chk.add_argument("--data-tb", type=float, default=10.0,
                     help="system size for the check sweep (TB)")

    tsum = sub.add_parser("telemetry-summary",
                          help="render a telemetry JSONL file "
                               "(written by 'run --telemetry')")
    tsum.add_argument("path", help="repro.telemetry.v1 JSONL file")

    srv = sub.add_parser("serve",
                         help="run the reliability-forecast HTTP service "
                              "(layered estimator cascade; "
                              "docs/SERVICE.md)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=None,
                     help=f"TCP port (default {DEFAULT_PORT}; --smoke "
                          f"always uses an ephemeral port)")
    srv.add_argument("--cache", default=None, metavar="PATH",
                     help="JSONL journal persisting live Monte-Carlo "
                          "evidence across restarts")
    srv.add_argument("--grids", default=None, metavar="DIR",
                     help="directory of repro.surrogate-grid.v1 JSON "
                          "files for the interpolation tier")
    srv.add_argument("--runs", type=int, default=64,
                     help="lifetimes per live round (first answer and "
                          "each background refinement step)")
    srv.add_argument("--target-width", type=float, default=0.05,
                     help="stop refining a cached CI once narrower "
                          "than this")
    srv.add_argument("--jobs", type=int, default=None,
                     help="worker processes for live estimation "
                          "(0 = all cores)")
    srv.add_argument("--smoke", action="store_true",
                     help="boot on an ephemeral port, answer one query "
                          "per tier, verify provenance and /metrics, "
                          "exit (the check.sh gate)")

    fc = sub.add_parser("forecast",
                        help="one-shot client for a running serve "
                             "instance")
    fc.add_argument("config",
                    help="config as inline JSON, a file path, or '-' "
                         "for stdin (partial dicts take SystemConfig "
                         "defaults; '{}' is the paper base)")
    fc.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}")
    fc.add_argument("--confidence", type=float, default=0.95)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {"list": cmd_list, "run": cmd_run, "estimate": cmd_estimate,
            "sensitivity": cmd_sensitivity,
            "sweep-check": cmd_sweep_check,
            "telemetry-summary": cmd_telemetry_summary,
            "serve": cmd_serve,
            "forecast": cmd_forecast}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
