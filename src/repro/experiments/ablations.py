"""Ablation studies for design choices called out in DESIGN.md.

These go beyond the paper's figures to quantify decisions the paper makes
implicitly:

* **placement** — RUSH versus the statistically-equivalent random
  placement: reliability must be indistinguishable (this justifies using
  the fast placement in the Monte-Carlo sweeps).
* **policy** — dropping the no-buddy constraint when picking recovery
  targets: co-locating two blocks of one group makes a single later disk
  failure count double, hurting reliability.
* **workload** — a diurnal user load that throttles recovery bandwidth
  (paper §2.4 notes the fluctuation but holds bandwidth fixed).
* **bathtub** — the paper criticizes prior studies for flat failure rates;
  this ablation re-runs the base point with a constant-hazard model of the
  same 6-year cumulative failure probability.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..disks.failure import BathtubFailureModel, RatePeriod
from ..reliability.montecarlo import estimate_p_loss
from ..units import GB, HOUR
from .base import ExperimentResult, Scale, current_scale
from .report import render_proportion


def _flat_model_matching(model: BathtubFailureModel,
                         horizon: float) -> BathtubFailureModel:
    """Constant-hazard model with the same cumulative failure probability."""
    h = float(model.cumulative_hazard(horizon)) / horizon
    pct_per_1000h = h * 1000 * HOUR * 100
    return BathtubFailureModel(
        (RatePeriod(0.0, float("inf"), pct_per_1000h),))


def run_placement(scale: Scale | None = None,
                  base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="ablation-placement",
        description="RUSH vs random placement: P(loss) must match",
        scale=scale,
        columns=["placement", "p_loss_pct", "ci95"],
    )
    base = scale.size_config(SystemConfig(group_user_bytes=10 * GB,
                                          use_farm=False))
    for placement in ("random", "rush"):
        mc = estimate_p_loss(base.with_(placement=placement),
                             n_runs=scale.n_runs, base_seed=base_seed,
                             n_jobs=scale.n_jobs)
        result.add(placement=placement,
                   p_loss_pct=100.0 * mc.p_loss.estimate,
                   ci95=render_proportion(mc.p_loss))
    result.notes.append("Overlapping CIs expected: the reliability results "
                        "depend only on placement statistics.")
    return result


def run_policy(scale: Scale | None = None,
               base_seed: int = 0) -> ExperimentResult:
    """Target-selection constraints on a small, nearly-full system.

    The hard constraints only bind when space is scarce and candidate lists
    are short, so this ablation uses a dense 60-disk system at 80%
    utilization and reports mechanism-level outcomes: do any groups end up
    with co-located blocks (buddy violations), and how do windows stretch?
    """
    from ..core.policy import PolicyConfig
    from ..core.runner import simulate_run
    from ..units import TB

    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="ablation-policy",
        description=("FARM target-selection constraints on a dense system "
                     "(60 disks @ 80%)"),
        scale=scale,
        columns=["policy", "buddy_violations", "mean_window_s",
                 "rebuilds", "losses"],
    )
    cfg = SystemConfig(total_user_bytes=24 * TB, group_user_bytes=10 * GB,
                       target_utilization=0.80)
    variants = {
        "full": PolicyConfig(),
        "no-buddy-check": PolicyConfig(forbid_buddy=False),
        "no-idle-pref": PolicyConfig(prefer_idle=False),
    }
    n_runs = max(4, scale.n_runs // 3)
    for label, policy in variants.items():
        violations = rebuilds = losses = 0
        window_total = completed = 0
        for i in range(n_runs):
            run_out = simulate_run(cfg, seed=base_seed + i, policy=policy,
                                   keep_system=True)
            s = run_out.stats
            rebuilds += s.rebuilds_completed
            losses += s.groups_lost
            window_total += s.window_total
            completed += s.rebuilds_completed
            for group in run_out.system.groups:
                live = [d for r, d in enumerate(group.disks)
                        if r not in group.failed]
                violations += len(live) - len(set(live))
        result.add(policy=label, buddy_violations=violations,
                   mean_window_s=window_total / completed if completed else 0,
                   rebuilds=rebuilds, losses=losses)
    result.notes.append(
        "Dropping the no-buddy constraint lets rebuilds co-locate blocks "
        "of one group, so a later single failure counts double.")
    return result


def run_workload(scale: Scale | None = None,
                 base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="ablation-workload",
        description=("diurnal user load throttling recovery bandwidth "
                     "(peak load fraction swept)"),
        scale=scale,
        columns=["peak_load", "p_loss_pct", "ci95"],
    )
    base = scale.size_config(SystemConfig(group_user_bytes=10 * GB))
    for peak in (0.0, 0.5, 0.8):
        mc = estimate_p_loss(base.with_(workload_peak_load=peak),
                             n_runs=scale.n_runs, base_seed=base_seed,
                             n_jobs=scale.n_jobs)
        result.add(peak_load=peak,
                   p_loss_pct=100.0 * mc.p_loss.estimate,
                   ci95=render_proportion(mc.p_loss))
    result.notes.append("Busy-hour throttling stretches rebuild windows; "
                        "FARM degrades gracefully because windows stay "
                        "minutes-scale.")
    return result


def run_mixed_scheme(scale: Scale | None = None,
                     base_seed: int = 0) -> ExperimentResult:
    """Mixed scheme (paper §2.2): mirrored RAID-5 stripe vs plain schemes.

    Loss for a composite scheme depends on *which* blocks die, so the
    informative comparison is exact: exhaustively enumerate k-failure
    patterns per scheme and report the survivable fraction, alongside the
    storage efficiency and a single object-engine lifetime (the flat-array
    engine is threshold-only) confirming the scheme runs end to end.
    """
    from ..core.runner import simulate_run
    from ..redundancy import ECC_4_6, MIRROR_2, MIRROR_3
    from ..redundancy.composite import (MirroredParity,
                                        exhaustive_tolerance,
                                        survival_fraction)
    from ..units import TB

    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="ablation-mixed-scheme",
        description=("mixed mirrored-parity scheme vs plain schemes: "
                     "exact failure-pattern survival + one lifetime"),
        scale=scale,
        columns=["scheme", "efficiency", "tolerance", "survive_3of_pct",
                 "survive_4of_pct", "rebuilds", "groups_lost"],
    )
    base = SystemConfig(total_user_bytes=20 * TB, group_user_bytes=10 * GB)
    vintage = base.vintage.with_rate_multiplier(5.0)
    for scheme in (MIRROR_2, MIRROR_3, ECC_4_6, MirroredParity(4)):
        assert exhaustive_tolerance(scheme) == scheme.tolerance
        stats = simulate_run(base.with_(scheme=scheme, vintage=vintage),
                             seed=base_seed).stats
        result.add(scheme=str(scheme),
                   efficiency=scheme.storage_efficiency,
                   tolerance=scheme.tolerance,
                   survive_3of_pct=100.0 * survival_fraction(scheme, 3),
                   survive_4of_pct=100.0 * survival_fraction(scheme, 4),
                   rebuilds=stats.rebuilds_completed,
                   groups_lost=stats.groups_lost)
    result.notes.append(
        "The mixed scheme survives all 3-failure patterns and most "
        "4-failure patterns at 40% efficiency; plain schemes of similar "
        "efficiency (1/3) stop at tolerance 2.")
    return result


def run_bathtub(scale: Scale | None = None,
                base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    # Traditional-recovery losses at reduced scale are rare events; triple
    # the run count (runs are cheap) so the comparison has power.
    n_runs = scale.n_runs * 3
    base = scale.size_config(SystemConfig(group_user_bytes=10 * GB,
                                          use_farm=False))
    flat = _flat_model_matching(base.vintage.failure_model, base.duration)
    result = ExperimentResult(
        experiment="ablation-bathtub",
        description=("bathtub vs flat hazard with equal 6-year cumulative "
                     "failure probability (traditional recovery)"),
        scale=scale,
        columns=["hazard", "p_loss_pct", "ci95"],
    )
    import dataclasses
    for label, vintage in (
            ("bathtub", base.vintage),
            ("flat", dataclasses.replace(base.vintage, failure_model=flat))):
        mc = estimate_p_loss(base.with_(vintage=vintage),
                             n_runs=n_runs, base_seed=base_seed,
                             n_jobs=scale.n_jobs)
        result.add(hazard=label, p_loss_pct=100.0 * mc.p_loss.estimate,
                   ci95=render_proportion(mc.p_loss))
    result.notes.append(
        "The paper criticizes flat-rate studies: infant mortality clusters "
        "failures early, raising the chance of overlapping windows.")
    return result
