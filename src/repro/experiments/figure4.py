"""Figure 4 — impact of failure-detection latency on reliability.

Panel (a): P(loss) versus detection latency (0–10 minutes) for redundancy
group sizes 1–100 GB under two-way mirroring with FARM.  Smaller groups are
more sensitive: their rebuilds are short, so a fixed detection latency is a
much larger share of the window of vulnerability (64 s to rebuild a 1 GB
group at 16 MB/s versus 6400 s for 100 GB).

Panel (b): the same data plotted against the *ratio* of detection latency
to recovery time — the paper's hypothesis, which the data confirm, is that
this ratio (equivalently the total window) determines P(loss), collapsing
all group sizes onto one curve.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..reliability.montecarlo import sweep
from ..units import GB, MINUTE
from .base import ExperimentResult, Scale, current_scale
from .report import render_proportion

#: Group sizes of the paper's six curves (bytes; the paper labels GB).
GROUP_SIZES_BYTES = (1 * GB, 5 * GB, 10 * GB, 25 * GB, 50 * GB, 100 * GB)
#: Detection latencies swept (seconds; the paper labels minutes).
LATENCIES_S = (0.0, 1 * MINUTE, 2 * MINUTE, 5 * MINUTE, 10 * MINUTE)


def run(scale: Scale | None = None, base_seed: int = 0,
        group_sizes_bytes: tuple[float, ...] | None = None,
        latencies_s: tuple[float, ...] | None = None) -> ExperimentResult:
    scale = scale or current_scale()
    sizes = group_sizes_bytes or GROUP_SIZES_BYTES
    lats = latencies_s or LATENCIES_S
    result = ExperimentResult(
        experiment="figure4",
        description=("P(data loss) vs detection latency, by group size "
                     "(two-way mirroring + FARM); ratio column drives "
                     "panel (b)"),
        scale=scale,
        columns=["group_gb", "latency_min", "latency_over_rebuild",
                 "mean_window_s", "p_loss_pct", "ci95"],
    )
    points = {}
    for size in sizes:
        base = scale.size_config(SystemConfig(group_user_bytes=size))
        for lat in lats:
            points[f"{size / GB:g}|{lat:g}"] = \
                base.with_(detection_latency=lat)
    results = sweep(points, n_runs=scale.n_runs, base_seed=base_seed,
                    n_jobs=scale.n_jobs, sweep_name="figure4")
    for size in sizes:
        for lat in lats:
            mc = results[f"{size / GB:g}|{lat:g}"]
            cfg = mc.config
            ratio = cfg.detection_latency / cfg.rebuild_seconds_per_block
            result.add(group_gb=size / GB, latency_min=lat / MINUTE,
                       latency_over_rebuild=ratio,
                       mean_window_s=mc.mean_window,
                       p_loss_pct=100.0 * mc.p_loss.estimate,
                       ci95=render_proportion(mc.p_loss))
    result.notes.append(
        "Paper: smaller groups are more latency-sensitive (a); P(loss) is "
        "determined by the latency-to-recovery-time ratio (b).")
    return result


def collapse_by_ratio(result: ExperimentResult) -> list[dict]:
    """Panel (b): rows keyed by the latency/rebuild ratio.

    If the paper's hypothesis holds, rows with similar ratios have similar
    P(loss) regardless of group size.
    """
    rows = sorted(result.rows, key=lambda r: r["latency_over_rebuild"])
    return [{"ratio": r["latency_over_rebuild"],
             "group_gb": r["group_gb"],
             "p_loss_pct": r["p_loss_pct"]} for r in rows]
