"""Table 1 — the disk failure-rate schedule (model verification).

Table 1 is an *input* (the Elerath-style bathtub rates), so the experiment
here verifies that the implemented hazard reproduces it: large cohorts of
simulated drives are aged and the empirical failure rate per 1000 hours in
each age period is compared against the specified rate.
"""

from __future__ import annotations

import numpy as np

from ..disks.failure import ELERATH_TABLE1, BathtubFailureModel
from ..units import HOUR, MONTH, YEAR
from .base import ExperimentResult, Scale, current_scale


def run(scale: Scale | None = None, base_seed: int = 0,
        cohort: int = 200_000) -> ExperimentResult:
    scale = scale or current_scale()
    model = BathtubFailureModel()
    rng = np.random.default_rng(base_seed)
    ages = model.sample_failure_age(rng, cohort)

    result = ExperimentResult(
        experiment="table1",
        description=("empirical vs specified failure rate (% per 1000 h) "
                     f"for a cohort of {cohort} drives"),
        scale=scale,
        columns=["period_months", "specified_pct", "empirical_pct",
                 "rel_err_pct"],
    )
    for period in ELERATH_TABLE1:
        lo = period.start_months * MONTH
        hi = min(period.end_months * MONTH, 6 * YEAR)
        at_risk_time = np.clip(ages, lo, hi) - lo     # exposure in period
        failures = ((ages >= lo) & (ages < hi)).sum()
        exposure_kh = at_risk_time.sum() / (1000 * HOUR)
        empirical = 100.0 * failures / exposure_kh if exposure_kh else 0.0
        spec = period.pct_per_1000h
        end = ("EODL" if period.end_months == float("inf")
               else f"{period.end_months:g}")
        label = f"{period.start_months:g}-{end}"
        result.add(period_months=label, specified_pct=spec,
                   empirical_pct=empirical,
                   rel_err_pct=100.0 * abs(empirical - spec) / spec)
    result.add(period_months="6yr cumulative",
               specified_pct=None,
               empirical_pct=100.0 * float((ages < 6 * YEAR).mean()),
               rel_err_pct=None)
    result.notes.append(
        "Paper: ~10% of drives fail within six years under these rates.")
    return result
