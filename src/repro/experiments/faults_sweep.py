"""Scrub-interval sweep under latent sector errors (fault-model study).

The paper's loss model only knows loud, whole-disk failures.  Latent
sector errors add a silent channel: a corrupt block contributes nothing to
redundancy, yet nothing notices until a scrub (or a rebuild read) reaches
it.  The undiscovered lifetime — about half the scrub interval — therefore
extends the window in which a second fault can combine with the hidden
corruption.

This experiment sweeps the scrub interval and reports, per interval:

* *measured*, from a seeded scenario on the object engine armed with
  :class:`~repro.faults.latent.LatentSectorErrors` and a
  :class:`~repro.faults.scrub.Scrubber`: latent errors discovered, their
  mean undiscovered lifetime, and rebuild health (deferred/retried);
* *analytic*: group MTTDL from the Markov chain with the latent channel
  folded into the per-block failure rate and the repair rate taken from
  the channel-weighted mean window.  Shrinking the interval shrinks the
  latent window, so MTTDL improves monotonically as scrubbing speeds up.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..faults import LatentSectorErrors, Scrubber
from ..reliability.analytic import mean_hazard, mean_window
from ..reliability.markov import mttdl
from ..reliability.runner import SweepRunner
from ..reliability.scenarios import Scenario
from ..units import DAY, GB, HOUR, TB, YEAR
from .base import ExperimentResult, Scale, current_scale

#: Swept whole-population scrub cycles, slowest first.
SCRUB_INTERVALS: tuple[float, ...] = (
    16 * DAY, 8 * DAY, 4 * DAY, 2 * DAY, 1 * DAY, 12 * HOUR)

#: Latent-error arrival rate per disk: high enough that a smoke-scale
#: scenario sees dozens of arrivals inside the measurement horizon.
LATENT_RATE_PER_DISK = 1.0 / (2 * DAY)

#: Scenario measurement horizon.
HORIZON = 64 * DAY


def _measured_config() -> SystemConfig:
    """A small object-engine system (20 disks, 400 groups); the analytic
    column uses the paper geometry, so system size only affects the
    *measured* columns and stays deliberately scenario-sized."""
    return SystemConfig(total_user_bytes=4 * TB, group_user_bytes=10 * GB)


def analytic_mttdl_years(cfg: SystemConfig, interval_s: float,
                         latent_rate_per_disk: float) -> float:
    """Group MTTDL with the latent channel folded into the Markov chain.

    A block fails loudly with the drive (rate ``lam_disk``) or silently
    corrupts (per-block rate ``lam_latent``).  Loud losses repair after
    ``detection + rebuild``; silent ones additionally sit undiscovered for
    half a scrub cycle.  The chain takes the combined rate and the
    rate-weighted mean window.
    """
    lam_disk = mean_hazard(cfg)
    lam_latent = latent_rate_per_disk / cfg.blocks_per_disk
    lam = lam_disk + lam_latent
    w_disk = mean_window(cfg)
    w_latent = 0.5 * interval_s + w_disk
    w = (lam_disk * w_disk + lam_latent * w_latent) / lam
    return mttdl(cfg.scheme, lam, 1.0 / w,
                 parallel_repair=cfg.use_farm) / YEAR


def _interval_row(task: tuple[SystemConfig, int, float]) -> dict:
    """One scrub-interval scenario (module-level so it pickles for the
    sweep runner's worker pool)."""
    cfg, seed, interval = task
    out = (Scenario(cfg, seed=seed)
           .inject_faults(
               LatentSectorErrors(LATENT_RATE_PER_DISK),
               Scrubber(interval))
           .run(horizon=HORIZON))
    s = out.stats
    return dict(scrub_interval_h=interval / HOUR,
                latent_found=s.latent_errors_discovered,
                mean_latency_h=s.mean_latent_window / HOUR,
                deferred=s.rebuilds_deferred,
                retries=s.retries,
                groups_lost=len(out.lost_groups))


def run(scale: Scale | None = None, base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    cfg = _measured_config()
    result = ExperimentResult(
        experiment="faults-sweep",
        description=("scrub interval vs latent-error exposure "
                     f"({cfg.describe()})"),
        scale=scale,
        columns=["scrub_interval_h", "latent_found", "mean_latency_h",
                 "deferred", "retries", "groups_lost", "group_mttdl_yr"],
    )
    paper_cfg = SystemConfig()
    runner = SweepRunner(n_jobs=scale.n_jobs)
    rows = runner.map_tasks(
        _interval_row,
        [(cfg, base_seed, interval) for interval in SCRUB_INTERVALS])
    for interval, row in zip(SCRUB_INTERVALS, rows):
        result.add(**row,
                   group_mttdl_yr=analytic_mttdl_years(
                       paper_cfg, interval, LATENT_RATE_PER_DISK))
    result.notes.append(
        "group_mttdl_yr is analytic (Markov chain, paper base geometry) "
        "with the latent channel folded in; it improves monotonically as "
        "the scrub interval shrinks because the undiscovered lifetime "
        "(~interval/2) dominates the latent repair window.")
    result.notes.append(
        f"measured columns: one seeded object-engine run per interval, "
        f"latent rate 1/{2 * DAY / HOUR:g} h per disk, horizon "
        f"{HORIZON / DAY:g} d.")
    return result
