"""Availability / durability / repair-bandwidth trade-off (new study).

The paper measures durability only; this experiment adds the other half
of the fleet's story.  It sweeps the two availability-policy knobs of
:class:`~repro.config.SystemConfig` on a constant-hazard 4-of-6 erasure
system and reports, per (``recovery_threshold``, lazy vs eager ×
``repair_bandwidth_fraction``) grid point:

* *measured*, from Monte-Carlo lifetimes on the fast engine: P(loss),
  the unavailability fraction and its "nines", and the excess physical
  reads served while groups sat degraded
  (:func:`repro.performance.degraded.degraded_read_cost`);
* *analytic rails*: Luby's steady-state repair utilization of the lane
  (:func:`repro.availability.luby.repair_utilization`) and the lazy
  Markov chain's loss bound
  (:func:`repro.reliability.markov.p_group_loss_lazy`).

Two monotonicity contracts are asserted on the measured grid (common
random numbers make them sharp): p_loss never decreases in the recovery
threshold, and unavailability never increases in repair bandwidth.
"""

from __future__ import annotations

from ..availability import (availability_nines, degraded_read_cost,
                            repair_utilization, unavailability_fraction)
from ..config import SystemConfig
from ..disks.failure import BathtubFailureModel, RatePeriod
from ..disks.vintage import DiskVintage
from ..redundancy.schemes import ECC_4_6
from ..reliability.markov import p_group_loss_lazy
from ..reliability.montecarlo import sweep
from ..units import GB, HOUR, TB, YEAR
from .base import ExperimentResult, Scale, current_scale

#: Constant hazard (% per 1000 h) — the paper's steady-state ballpark.
#: Kept modest on purpose: there is no replacement here, so a hot rate
#: collapses the fleet's spare capacity and rebuild storms (not repair
#: policy) dominate loss, inverting the lazy/eager bracket the table
#: asserts.  At 1.5 %/1000 h ~23 % of drives fail over the horizon and
#: the fleet stays comfortably inside its 60 % capacity headroom.
FAILURE_RATE_PCT_PER_1000H = 1.5

#: Swept repair-lane caps (fraction of full per-disk bandwidth),
#: narrowest first.  All are Luby-feasible at the hazard above; the
#: infeasible regime is exercised by the conformance tests instead.
REPAIR_FRACTIONS: tuple[float, ...] = (0.05, 0.2, 0.8)

#: Swept lazy-recovery thresholds (1 = eager, the engines' default).
THRESHOLDS: tuple[int, ...] = (1, 2)

#: Logical reads per group-second for the degraded-read cost column.
READ_RATE_PER_GROUP = 1.0

#: Paper-scale data volume of this study (the harness scale multiplies).
BASE_USER_BYTES = 200 * TB

#: Measurement horizon — long enough for lazy groups to sit degraded
#: for macroscopic fractions of the run.
DURATION = 2 * YEAR


def _flat_vintage() -> DiskVintage:
    model = BathtubFailureModel(
        (RatePeriod(0.0, float("inf"), FAILURE_RATE_PCT_PER_1000H),))
    return DiskVintage(failure_model=model)


def grid_config(scale: Scale, threshold: int,
                fraction: float) -> SystemConfig:
    """One grid point's config (4-of-6 code; tolerance 2 admits r=2)."""
    return SystemConfig(
        total_user_bytes=BASE_USER_BYTES * scale.data_factor,
        group_user_bytes=10 * GB,
        scheme=ECC_4_6,
        vintage=_flat_vintage(),
        duration=DURATION,
        recovery_threshold=threshold,
        repair_bandwidth_fraction=fraction)


def lazy_markov_p_loss(cfg: SystemConfig) -> float:
    """System-level lazy-chain loss bound for one grid config."""
    lam = FAILURE_RATE_PCT_PER_1000H / 100.0 / (1000 * HOUR)
    mu = 1.0 / (cfg.detection_latency + cfg.rebuild_seconds_per_block)
    p1 = p_group_loss_lazy(cfg.scheme, lam, mu, cfg.duration,
                           threshold=cfg.recovery_threshold,
                           parallel_repair=cfg.use_farm)
    return float(1.0 - (1.0 - p1) ** cfg.n_groups)


def _label(threshold: int, fraction: float) -> str:
    return f"r={threshold} bw={fraction:g}"


def run(scale: Scale | None = None, base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    points = {
        _label(r, f): grid_config(scale, r, f)
        for r in THRESHOLDS for f in REPAIR_FRACTIONS
    }
    results = sweep(points, n_runs=scale.n_runs, base_seed=base_seed,
                    n_jobs=scale.n_jobs, sweep_name="availability")

    any_cfg = next(iter(points.values()))
    result = ExperimentResult(
        experiment="availability",
        description=("availability vs p_loss vs repair bandwidth "
                     f"({any_cfg.describe()})"),
        scale=scale,
        columns=["threshold", "repair_bw", "luby_util", "p_loss",
                 "markov_p_loss", "unavail_frac", "nines",
                 "degraded_reads"],
    )

    measured: dict[tuple[int, float], dict] = {}
    for r in THRESHOLDS:
        for f in REPAIR_FRACTIONS:
            cfg = points[_label(r, f)]
            mc = results[_label(r, f)]
            agg = mc.aggregate
            exposure_runs = agg.n_runs if agg is not None else mc.n_runs
            unavail_s = (agg.unavail_group_seconds
                         if agg is not None else 0.0)
            frac = unavailability_fraction(
                unavail_s, cfg.n_groups * exposure_runs, cfg.duration)
            nines = availability_nines(1.0 - frac)
            reads = degraded_read_cost(cfg.scheme, unavail_s,
                                       READ_RATE_PER_GROUP) / exposure_runs
            row = dict(threshold=r, repair_bw=f,
                       luby_util=repair_utilization(cfg),
                       p_loss=mc.p_loss.estimate,
                       markov_p_loss=lazy_markov_p_loss(cfg),
                       unavail_frac=frac,
                       nines=nines,
                       degraded_reads=reads)
            measured[(r, f)] = row
            result.add(**row)

    # Monotonicity contracts (the conformance harness re-asserts these
    # property-style; here they gate the published table).
    for f in REPAIR_FRACTIONS:
        for lo, hi in zip(THRESHOLDS, THRESHOLDS[1:]):
            assert (measured[(hi, f)]["p_loss"]
                    >= measured[(lo, f)]["p_loss"]), (
                f"p_loss must be monotone non-decreasing in "
                f"recovery_threshold at bw={f:g}")
    for r in THRESHOLDS:
        for lo, hi in zip(REPAIR_FRACTIONS, REPAIR_FRACTIONS[1:]):
            assert (measured[(r, hi)]["unavail_frac"]
                    <= measured[(r, lo)]["unavail_frac"]), (
                f"unavailability must be monotone non-increasing in "
                f"repair bandwidth at r={r}")

    result.notes.append(
        "monotonicity asserted: p_loss non-decreasing in "
        "recovery_threshold; unavailability non-increasing in repair "
        "bandwidth (common random numbers across the grid).")
    result.notes.append(
        f"constant hazard {FAILURE_RATE_PCT_PER_1000H:g}%/1000 h, "
        f"horizon {DURATION / YEAR:g} y; markov_p_loss is the lazy-chain "
        f"bound (repairs gated below r), luby_util the steady-state "
        f"repair demand of the capped lane (>= 1 is rejected outright).")
    result.notes.append(
        "degraded_reads = excess physical reads per simulated lifetime "
        f"at {READ_RATE_PER_GROUP:g} logical read/group/s while degraded "
        "(x4 amplification on the 4-of-6 code).")
    return result
