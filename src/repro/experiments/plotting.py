"""Terminal (ASCII) charts for experiment series.

The paper presents its results as bar charts and line plots; this module
renders the same series in a terminal so the benchmark harness output can
be *seen*, not just diffed.  No plotting dependency is required (the
reproduction environment is offline).

Two chart types cover every figure in the paper:

* :func:`bar_chart` — grouped horizontal bars (Figures 3, 7);
* :func:`line_chart` — multi-series scatter/line over a numeric x axis
  (Figures 4, 5, 8), rendered on a character grid.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import ExperimentResult

_MARKS = "ox+*#@%&"


def _fmt_num(x: float) -> str:
    if x == 0:
        return "0"
    if abs(x) >= 1000 or abs(x) < 0.01:
        return f"{x:.2g}"
    return f"{x:.3g}"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 50,
              unit: str = "") -> str:
    """Horizontal bar chart: one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty chart)"
    peak = max(values) if max(values, default=0) > 0 else 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * round(value / peak * width)
        lines.append(f"{str(label):>{label_w}} | "
                     f"{bar}{' ' if bar else ''}{_fmt_num(value)}{unit}")
    return "\n".join(lines)


def line_chart(series: dict[str, list[tuple[float, float]]],
               title: str = "", width: int = 60, height: int = 16,
               x_label: str = "x", y_label: str = "y",
               logx: bool = False) -> str:
    """Multi-series point chart on a character grid.

    ``series`` maps a series name to its (x, y) points.  Each series gets
    a marker character; a legend is appended.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]

    def tx(x: float) -> float:
        if logx:
            if x <= 0:
                raise ValueError("logx requires positive x values")
            return math.log10(x)
        return x

    x_lo, x_hi = min(map(tx, xs)), max(map(tx, xs))
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), mark in zip(series.items(), _MARKS * 4):
        for x, y in pts:
            col = round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = [title] if title else []
    lines.append(f"{_fmt_num(y_hi):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{_fmt_num(y_lo):>10} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{_fmt_num(min(xs))} .. {_fmt_num(max(xs))}"
                 f"  ({x_label}{', log' if logx else ''})")
    legend = "   ".join(f"{mark}={name}" for (name, _), mark
                        in zip(series.items(), _MARKS * 4))
    lines.append(" " * 12 + legend)
    lines.append(" " * 12 + f"y: {y_label}")
    return "\n".join(lines)


def result_bar_chart(result: ExperimentResult,
                     label_columns: Sequence[str],
                     value_column: str, **kw: Any) -> str:
    """Bar chart straight from an ExperimentResult."""
    labels = [" ".join(str(r[c]) for c in label_columns)
              for r in result.rows]
    values = [float(r[value_column]) for r in result.rows]
    return bar_chart(labels, values,
                     title=kw.pop("title", result.description), **kw)


def result_line_chart(result: ExperimentResult, series_column: str,
                      x_column: str, y_column: str, **kw: Any) -> str:
    """Line chart straight from an ExperimentResult."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in result.rows:
        key = str(row[series_column])
        series.setdefault(key, []).append(
            (float(row[x_column]), float(row[y_column])))
    return line_chart(series, title=kw.pop("title", result.description),
                      x_label=x_column, y_label=y_column, **kw)
