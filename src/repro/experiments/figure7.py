"""Figure 7 — disk drive replacement timing and the cohort effect.

New disks are added in a batch once the system has lost 2%, 4%, 6%, or 8%
of its drives; batches restore the population and trigger data migration
onto the (young, infant-mortality-prone) newcomers.  The paper reports
P(loss) with 95% confidence intervals for each threshold and finds the
cohort effect *not visible* at this failure level: only ~10% of drives fail
in six years, so batches are small (2–8% of the population) and replacement
frequency does not significantly affect reliability.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..units import GB
from .base import ExperimentResult, Scale, current_scale, run_p_loss_sweep
from .report import render_proportion

THRESHOLDS = (0.02, 0.04, 0.06, 0.08)


def run(scale: Scale | None = None, base_seed: int = 0,
        thresholds: tuple[float, ...] | None = None,
        estimator: str = "naive") -> ExperimentResult:
    scale = scale or current_scale()
    ths = thresholds or THRESHOLDS
    base = scale.size_config(SystemConfig(group_user_bytes=10 * GB))
    result = ExperimentResult(
        experiment="figure7",
        description=("P(data loss) vs replacement threshold (fraction of "
                     "disks lost before a batch is added), 95% CIs"),
        scale=scale,
        columns=["threshold_pct", "p_loss_pct", "ci95", "batches_mean",
                 "migrated_mean"],
    )
    points = {f"{th:g}": base.with_(replacement_threshold=th)
              for th in ths}
    results = run_p_loss_sweep(points, estimator, n_runs=scale.n_runs,
                               base_seed=base_seed, n_jobs=scale.n_jobs,
                               sweep_name="figure7")
    for th in ths:
        mc = results[f"{th:g}"]
        result.add(
            threshold_pct=100.0 * th,
            p_loss_pct=100.0 * mc.p_loss.estimate,
            ci95=render_proportion(mc.p_loss),
            batches_mean=mc.replacement_batches_total / mc.n_runs,
            migrated_mean=mc.blocks_migrated_total / mc.n_runs,
        )
    result.notes.append(
        "Paper: overlapping CIs across thresholds — the cohort effect is "
        "not visible at ~10% lifetime failures; little benefit beyond "
        "delaying replacement cost.")
    return result
