"""MTTDL designer table (extension beyond the paper's figures).

The paper reports six-year loss probabilities; storage designers usually
quote the complementary number — mean time to data loss.  This experiment
derives MTTDL for every paper scheme under FARM and traditional recovery
from the Markov chain (`repro.reliability.markov`) at the base geometry:
per-block failure rate = the drive hazard, repair rate = 1/window.

The headline: FARM's shorter window multiplies MTTDL by the same ~20x
factor that divides the window, and each extra tolerated fault multiplies
it by roughly (repair rate / failure rate) ~ 10^5.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..redundancy.composite import is_threshold_scheme
from ..redundancy.schemes import PAPER_SCHEMES
from ..reliability.analytic import mean_hazard, mean_window
from ..reliability.markov import mttdl, p_system_loss
from ..units import GB, YEAR
from .base import ExperimentResult, Scale, current_scale


def run(scale: Scale | None = None, base_seed: int = 0,
        group_bytes: float = 10 * GB) -> ExperimentResult:
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="mttdl",
        description=("analytic MTTDL per scheme and recovery mode "
                     f"({group_bytes / GB:g} GB groups, "
                     "paper base geometry)"),
        scale=scale,
        columns=["scheme", "mode", "window_s", "group_mttdl_yr",
                 "system_mttdl_yr", "p_loss_6yr_pct"],
    )
    for scheme in PAPER_SCHEMES:
        assert is_threshold_scheme(scheme)
        for farm in (True, False):
            cfg = SystemConfig(group_user_bytes=group_bytes,
                               scheme=scheme, use_farm=farm)
            lam = mean_hazard(cfg)
            w = mean_window(cfg)
            mu = 1.0 / w
            group_mttdl = mttdl(scheme, lam, mu, parallel_repair=farm)
            # Independent groups: the system loses data n_groups times
            # faster (exact for exponential tails, first-order otherwise).
            system_mttdl = group_mttdl / cfg.n_groups
            p6 = p_system_loss(scheme, cfg.n_groups, lam, mu,
                               cfg.duration, parallel_repair=farm)
            result.add(scheme=scheme.name,
                       mode="FARM" if farm else "w/o",
                       window_s=w,
                       group_mttdl_yr=group_mttdl / YEAR,
                       system_mttdl_yr=system_mttdl / YEAR,
                       p_loss_6yr_pct=100.0 * p6)
    result.notes.append(
        "Markov-chain MTTDL at constant (time-averaged) hazard; the "
        "simulators add bathtub clustering on top, which shortens real "
        "MTTDL slightly (see ablation-bathtub).")
    return result
