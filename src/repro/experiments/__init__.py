"""Experiment harness: one module per paper table/figure, plus ablations.

Each module exposes ``run(scale=None, base_seed=0) -> ExperimentResult``;
``REPRO_SCALE`` ∈ {smoke, small, paper} picks the fidelity (see
:mod:`repro.experiments.base`).
"""

from . import (ablations, availability_sweep, faults_sweep, figure3, figure4,
               figure5, figure7, figure8, mttdl_table, perf_table, redirection,
               table1, table3)
from .base import SCALES, ExperimentResult, Scale, current_scale
from .report import pct, render_proportion, render_table

__all__ = [
    "Scale", "SCALES", "current_scale", "ExperimentResult",
    "render_table", "render_proportion", "pct",
    "table1", "figure3", "figure4", "figure5", "table3",
    "figure7", "figure8", "redirection", "ablations", "mttdl_table",
    "perf_table", "faults_sweep", "availability_sweep",
]
