"""Experiment-harness plumbing: scales, results, comparisons.

Every paper table/figure has a module here exposing
``run(scale=None, base_seed=0) -> ExperimentResult``.  The ``REPRO_SCALE``
environment variable picks the fidelity:

========  ======  ==================  =========================
scale     runs    system size         purpose
========  ======  ==================  =========================
smoke     4       0.05x paper (100 TB)  CI / unit tests
small     25      0.25x paper (500 TB)  default benchmark runs
paper     100     1x paper (2 PB)       full reproduction
========  ======  ==================  =========================

P(loss) scales linearly with system size (paper §3.7 and Figure 8), so the
*shape* of every result — who wins, by what factor, where curves cross — is
preserved at reduced scale; EXPERIMENTS.md records the scale used for each
published number.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..config import SystemConfig


@dataclass(frozen=True)
class Scale:
    """Fidelity knob for the benchmark harness."""

    name: str
    n_runs: int
    data_factor: float        # multiplier on the paper's 2 PB
    n_jobs: int | None        # Monte-Carlo process parallelism

    def size_config(self, cfg: SystemConfig) -> SystemConfig:
        """Shrink a paper-scale config to this scale."""
        return cfg.with_(total_user_bytes=cfg.total_user_bytes
                         * self.data_factor)


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", n_runs=4, data_factor=0.05, n_jobs=None),
    "small": Scale("small", n_runs=25, data_factor=0.25, n_jobs=None),
    "paper": Scale("paper", n_runs=100, data_factor=1.0, n_jobs=None),
}

#: Estimators the p_loss figure drivers accept (``--estimator`` on the
#: CLI).  ``naive`` counts losing lifetimes; ``is`` importance-samples
#: with the default hazard tilt; ``splitting`` runs fixed-effort
#: multilevel splitting (see :mod:`repro.reliability.rare` and
#: ``docs/RARE_EVENTS.md``); ``bulk`` counts losing lifetimes on the
#: vectorized window-overlap engine (:mod:`repro.reliability.bulk` and
#: ``docs/BULK_ENGINE.md``) — statistically conformant with ``naive``
#: and orders of magnitude faster.
ESTIMATORS: tuple[str, ...] = ("naive", "is", "splitting", "bulk")


def run_p_loss_sweep(points: dict[str, SystemConfig], estimator: str,
                     n_runs: int, base_seed: int, n_jobs: int | None,
                     sweep_name: str) -> dict[str, Any]:
    """Dispatch a labelled p_loss sweep to the selected estimator.

    Always returns ``{label: MonteCarloResult}`` so figure drivers render
    identically whichever estimator produced the numbers.
    """
    from ..reliability.montecarlo import sweep
    if estimator == "naive":
        return sweep(points, n_runs=n_runs, base_seed=base_seed,
                     n_jobs=n_jobs, sweep_name=sweep_name)
    if estimator == "is":
        from ..reliability.rare import DEFAULT_TILT
        return sweep(points, n_runs=n_runs, base_seed=base_seed,
                     n_jobs=n_jobs, sweep_name=sweep_name,
                     tilt=DEFAULT_TILT)
    if estimator == "splitting":
        from ..reliability.rare import sweep_splitting
        return sweep_splitting(points, n_runs=n_runs, base_seed=base_seed,
                               n_jobs=n_jobs)
    if estimator == "bulk":
        return sweep(points, n_runs=n_runs, base_seed=base_seed,
                     n_jobs=n_jobs, sweep_name=sweep_name, engine="bulk")
    raise ValueError(
        f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}")


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: small).

    ``REPRO_JOBS`` overrides Monte-Carlo process parallelism (0 = all
    cores); the default is serial, which is optimal on single-core runners
    and fully deterministic everywhere.
    """
    import dataclasses
    name = os.environ.get("REPRO_SCALE", "small").lower()
    try:
        scale = SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected one of {sorted(SCALES)}")
    jobs = os.environ.get("REPRO_JOBS")
    if jobs is not None:
        scale = dataclasses.replace(scale, n_jobs=int(jobs))
    return scale


@dataclass
class ExperimentResult:
    """Rows of a regenerated table/figure plus context."""

    experiment: str            # e.g. "figure3a"
    description: str
    scale: Scale
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, name: str) -> list[Any]:
        return [r.get(name) for r in self.rows]

    def render(self) -> str:
        """Aligned text table, the way the bench harness prints results."""
        from .report import render_table
        header = (f"== {self.experiment}: {self.description} "
                  f"[scale={self.scale.name}, runs={self.scale.n_runs}] ==")
        body = render_table(self.columns, self.rows)
        notes = "".join(f"\n  note: {n}" for n in self.notes)
        return f"{header}\n{body}{notes}"
