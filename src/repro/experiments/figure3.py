"""Figure 3 — reliability with and without FARM across redundancy schemes.

Paper setup: 2 PB system, six group configurations (1/2, 1/3, 2/3, 4/5,
4/6, 8/10), redundancy group sizes 10 GB (a) and 50 GB (b), **zero**
failure-detection latency, 100 runs each, six simulated years.

Paper findings the reproduction must show:

* FARM always increases reliability;
* with two-way mirroring, FARM cuts P(loss) to 1–3% versus 6–25% without;
* RAID-5-like parity (2/3, 4/5) without FARM fails to provide sufficient
  reliability;
* 3-way mirroring, 4/6 and 8/10 with FARM keep P(loss) below ~0.1%;
* group size has little impact *with* FARM but matters *without* it.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..redundancy.schemes import PAPER_SCHEMES
from ..reliability.montecarlo import sweep
from ..units import GB
from .base import ExperimentResult, Scale, current_scale
from .report import render_proportion

#: Approximate values read off the paper's Figure 3 bars (percent), used by
#: EXPERIMENTS.md for side-by-side comparison.  Entries are
#: (scheme, group GB, farm?) -> expected percent (None = "too small to read").
PAPER_FIGURE3 = {
    ("1/2", 10, True): 2.0, ("1/2", 10, False): 25.0,
    ("1/3", 10, True): 0.05, ("1/3", 10, False): 1.0,
    ("1/2", 50, True): 2.0, ("1/2", 50, False): 6.0,
}


def run(scale: Scale | None = None, base_seed: int = 0,
        group_bytes: float = 10 * GB) -> ExperimentResult:
    """One panel of Figure 3 (the group size selects panel a or b)."""
    scale = scale or current_scale()
    base = scale.size_config(SystemConfig(
        group_user_bytes=group_bytes,
        detection_latency=0.0,      # Figure 3 assumes zero latency
    ))
    panel = "a" if group_bytes <= 25 * GB else "b"
    result = ExperimentResult(
        experiment=f"figure3{panel}",
        description=(f"P(data loss) by scheme, with/without FARM, "
                     f"{group_bytes / GB:g} GB groups, "
                     f"zero detection latency"),
        scale=scale,
        columns=["scheme", "farm", "p_loss_pct", "ci95",
                 "groups_lost", "paper_pct"],
    )
    points = {f"{scheme.name}|{farm}": base.with_(scheme=scheme,
                                                  use_farm=farm)
              for scheme in PAPER_SCHEMES for farm in (True, False)}
    results = sweep(points, n_runs=scale.n_runs, base_seed=base_seed,
                    n_jobs=scale.n_jobs, sweep_name=f"figure3{panel}")
    for scheme in PAPER_SCHEMES:
        for farm in (True, False):
            mc = results[f"{scheme.name}|{farm}"]
            result.add(
                scheme=scheme.name,
                farm="FARM" if farm else "w/o",
                p_loss_pct=100.0 * mc.p_loss.estimate,
                ci95=render_proportion(mc.p_loss),
                groups_lost=mc.groups_lost_total,
                paper_pct=PAPER_FIGURE3.get(
                    (scheme.name, round(group_bytes / GB), farm)),
            )
    result.notes.append(
        "Paper: FARM 1-3% vs 6-25% w/o for two-way mirroring; RAID-5-like "
        "parity w/o FARM insufficient; <=0.1% for 1/3, 4/6, 8/10 with FARM.")
    return result


def run_both_panels(scale: Scale | None = None, base_seed: int = 0
                    ) -> tuple[ExperimentResult, ExperimentResult]:
    """Figure 3(a) and 3(b)."""
    return (run(scale, base_seed, group_bytes=10 * GB),
            run(scale, base_seed, group_bytes=50 * GB))
