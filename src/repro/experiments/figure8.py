"""Figure 8 — probability of data loss versus system scale.

P(loss) for systems of 0.1–5 PB under FARM for all six schemes, with the
Table 1 failure rates (a) and doubled rates (b).  Paper findings:

* P(loss) grows approximately linearly with total capacity;
* a 5 PB system with FARM + two-way mirroring stays at ~6.6%;
* RAID-5-like parity (2/3, 4/5) is insufficient even with FARM;
* 1/3, 4/6, 8/10 with FARM stay below ~0.1%;
* doubling drive failure rates *more than doubles* P(loss) (the window
  argument is quadratic in the hazard for the second failure).
"""

from __future__ import annotations

from ..config import SystemConfig
from ..redundancy.schemes import PAPER_SCHEMES, RedundancyScheme
from ..units import GB, PB
from .base import ExperimentResult, Scale, current_scale, run_p_loss_sweep
from .report import render_proportion

#: Total user capacities swept (bytes; the paper's axis is PB).
CAPACITIES_BYTES = (0.1 * PB, 0.5 * PB, 1 * PB, 2 * PB, 5 * PB)


def run(scale: Scale | None = None, base_seed: int = 0,
        rate_multiplier: float = 1.0,
        capacities_bytes: tuple[float, ...] | None = None,
        schemes: tuple[RedundancyScheme, ...] | None = None,
        estimator: str = "naive") -> ExperimentResult:
    scale = scale or current_scale()
    caps = capacities_bytes or CAPACITIES_BYTES
    schs = schemes or PAPER_SCHEMES
    panel = "a" if rate_multiplier == 1.0 else "b"
    vintage = SystemConfig().vintage
    if rate_multiplier != 1.0:
        vintage = vintage.with_rate_multiplier(rate_multiplier)
    result = ExperimentResult(
        experiment=f"figure8{panel}",
        description=(f"P(data loss) vs total capacity under FARM "
                     f"(failure rates x{rate_multiplier:g})"),
        scale=scale,
        columns=["scheme", "capacity_pb", "p_loss_pct", "ci95"],
    )
    # Figure 8 sweeps *absolute* capacity; the scale knob shrinks the
    # whole axis proportionally instead of the point count.
    points = {f"{scheme.name}|{cap / PB:g}": SystemConfig(
                  total_user_bytes=cap * scale.data_factor,
                  group_user_bytes=10 * GB, scheme=scheme, vintage=vintage)
              for scheme in schs for cap in caps}
    results = run_p_loss_sweep(points, estimator, n_runs=scale.n_runs,
                               base_seed=base_seed, n_jobs=scale.n_jobs,
                               sweep_name=f"figure8{panel}")
    for scheme in schs:
        for cap in caps:
            mc = results[f"{scheme.name}|{cap / PB:g}"]
            result.add(scheme=scheme.name, capacity_pb=cap / PB,
                       p_loss_pct=100.0 * mc.p_loss.estimate,
                       ci95=render_proportion(mc.p_loss))
    result.notes.append(
        "Paper: approximately linear growth with capacity; 5 PB + FARM + "
        "two-way mirroring => ~6.6%; doubling drive failure rates more "
        "than doubles P(loss).")
    return result
