"""Figure 5 — disk bandwidth devoted to recovery.

P(loss) versus recovery bandwidth (8–40 MB/s) for group sizes 10 GB and
50 GB, with and without FARM, detection latency 30 s, two-way mirroring.

Paper findings: loss probability falls as recovery bandwidth rises; higher
bandwidth helps the traditional scheme dramatically (its window is the
whole-disk rebuild, which shrinks proportionally) but has a much weaker
effect with FARM, whose windows are already short.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..units import GB, MB
from .base import ExperimentResult, Scale, current_scale, run_p_loss_sweep
from .report import render_proportion

#: Recovery bandwidths swept (bytes/s; the paper's axis is MB/s).
BANDWIDTHS_BPS = (8 * MB, 16 * MB, 24 * MB, 32 * MB, 40 * MB)
GROUP_SIZES_BYTES = (10 * GB, 50 * GB)


def grid(scale: Scale,
         bandwidths_bps: tuple[float, ...] | None = None,
         group_sizes_bytes: tuple[float, ...] | None = None
         ) -> dict[str, SystemConfig]:
    """The labelled figure-5 point grid at ``scale``.

    Factored out of :func:`run` so other drivers (notably the
    bulk-engine benchmark, :mod:`.bulk_sweep`) sweep the *same* grid the
    figure uses — its FARM/traditional x bandwidth x group-size spread
    is the paper's canonical workload mix.
    """
    bws = bandwidths_bps or BANDWIDTHS_BPS
    sizes = group_sizes_bytes or GROUP_SIZES_BYTES
    points = {}
    for farm in (True, False):
        for size in sizes:
            base = scale.size_config(SystemConfig(
                group_user_bytes=size, use_farm=farm,
                detection_latency=30.0))
            for bw in bws:
                points[f"{farm}|{size / GB:g}|{bw / MB:g}"] = \
                    base.with_(recovery_bandwidth_bps=bw)
    return points


def run(scale: Scale | None = None, base_seed: int = 0,
        bandwidths_bps: tuple[float, ...] | None = None,
        group_sizes_bytes: tuple[float, ...] | None = None,
        estimator: str = "naive") -> ExperimentResult:
    scale = scale or current_scale()
    bws = bandwidths_bps or BANDWIDTHS_BPS
    sizes = group_sizes_bytes or GROUP_SIZES_BYTES
    result = ExperimentResult(
        experiment="figure5",
        description=("P(data loss) vs recovery bandwidth, FARM vs "
                     "traditional, detection latency 30 s"),
        scale=scale,
        columns=["mode", "group_gb", "bw_mbps", "mean_window_s",
                 "p_loss_pct", "ci95"],
    )
    points = grid(scale, bws, sizes)
    results = run_p_loss_sweep(points, estimator, n_runs=scale.n_runs,
                               base_seed=base_seed, n_jobs=scale.n_jobs,
                               sweep_name="figure5")
    for farm in (True, False):
        for size in sizes:
            for bw in bws:
                mc = results[f"{farm}|{size / GB:g}|{bw / MB:g}"]
                result.add(mode="FARM" if farm else "w/o",
                           group_gb=size / GB, bw_mbps=bw / MB,
                           mean_window_s=mc.mean_window,
                           p_loss_pct=100.0 * mc.p_loss.estimate,
                           ci95=render_proportion(mc.p_loss))
    result.notes.append(
        "Paper: higher recovery bandwidth improves the traditional scheme "
        "dramatically but has no pronounced effect under FARM.")
    return result
