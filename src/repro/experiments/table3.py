"""Table 3 / Figure 6 — disk space utilization under FARM.

The paper distributes data on 1,000 1-TB disks at 40% average utilization,
simulates six years of failures with FARM recovery, and reports (i) the
capacity used by ten randomly-selected disks before and after, and (ii) the
mean and standard deviation of per-disk utilization.  Findings: the mean
utilization grows (surviving disks absorb the redistributed redundancy of
failed ones), smaller redundancy groups keep the standard deviation lower,
and failed disks carry no load.

This experiment runs the object-level engine with the RUSH placement (the
balance property under test is the placement's).
"""

from __future__ import annotations

import numpy as np

from ..cluster.system import StorageSystem
from ..config import SystemConfig
from ..core.runner import build_manager
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..units import GB, TB
from .base import ExperimentResult, Scale, current_scale

GROUP_SIZES_BYTES = (1 * GB, 10 * GB, 50 * GB)
N_DISKS = 1000
SAMPLED_DISKS = 10


def _config_for(group_bytes: float, n_disks: int) -> SystemConfig:
    """A system whose geometry forces exactly ``n_disks`` drives."""
    cfg = SystemConfig(group_user_bytes=group_bytes, placement="rush")
    user = n_disks * cfg.vintage.capacity_bytes * cfg.target_utilization \
        / cfg.scheme.stretch
    return cfg.with_(total_user_bytes=user)


def run(scale: Scale | None = None, base_seed: int = 0,
        group_sizes_bytes: tuple[float, ...] | None = None,
        n_disks: int = N_DISKS) -> ExperimentResult:
    scale = scale or current_scale()
    sizes = group_sizes_bytes or GROUP_SIZES_BYTES
    result = ExperimentResult(
        experiment="table3",
        description=("per-disk utilization (GB): mean/std at t=0 and after "
                     "6 years of FARM recovery, by group size"),
        scale=scale,
        columns=["group_gb", "when", "mean_gb", "std_gb",
                 "failed_disks", "sample_gb"],
    )
    for size in sizes:
        cfg = _config_for(size, n_disks)
        streams = RandomStreams(base_seed)
        system = StorageSystem(cfg, streams)
        sample = streams.get("table3-sample").choice(
            n_disks, size=SAMPLED_DISKS, replace=False)
        sample.sort()

        initial = system.utilization_bytes()[:n_disks]
        result.add(group_gb=size / GB, when="initial",
                   mean_gb=float(initial.mean()) / GB,
                   std_gb=float(initial.std()) / GB,
                   failed_disks=0,
                   sample_gb=_fmt_sample(initial[sample]))

        sim = Simulator()
        manager = build_manager(system, sim)
        for disk_id, t in enumerate(system.failure_times):
            if t <= cfg.duration:
                sim.schedule_at(t, manager.on_disk_failure, disk_id)
        sim.run(until=cfg.duration)

        final = system.utilization_bytes()[:n_disks]
        online = np.array([d.online for d in system.disks[:n_disks]])
        result.add(group_gb=size / GB, when="after 6y",
                   mean_gb=float(final[online].mean()) / GB,
                   std_gb=float(final[online].std()) / GB,
                   failed_disks=int((~online).sum()),
                   sample_gb=_fmt_sample(final[sample]))
    result.notes.append(
        "Paper: means rise from 400 GB as survivors absorb redistributed "
        "data; smaller groups give a lower standard deviation; failed "
        "sampled disks show zero load (Figure 6).")
    return result


def _fmt_sample(values: np.ndarray) -> str:
    return "[" + " ".join(f"{v / GB:.0f}" for v in values) + "]"
