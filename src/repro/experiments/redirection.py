"""§2.3 claim — recovery redirection is rare.

"Even with S.M.A.R.T., the possibility that a recovery target fails during
the data rebuild process remains.  In this case, we merely choose an
alternative target. ... The occurrence of this problem, which we call
recovery redirection, is rare.  We found that, at worst, it happened to
fewer than 8.0% of our systems even once during simulated six years."

This experiment measures the fraction of simulated systems that experience
at least one target redirection under the base FARM configuration.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..reliability.montecarlo import estimate_p_loss
from ..reliability.stats import wilson_interval
from ..units import GB
from .base import ExperimentResult, Scale, current_scale
from .report import render_proportion

GROUP_SIZES_BYTES = (10 * GB, 50 * GB, 100 * GB)


def run(scale: Scale | None = None, base_seed: int = 0,
        group_sizes_bytes: tuple[float, ...] | None = None
        ) -> ExperimentResult:
    scale = scale or current_scale()
    sizes = group_sizes_bytes or GROUP_SIZES_BYTES
    result = ExperimentResult(
        experiment="redirection",
        description=("fraction of systems seeing >=1 recovery redirection "
                     "in six years (paper: < 8% at worst)"),
        scale=scale,
        columns=["group_gb", "systems_with_redirection_pct", "ci95",
                 "redirections_total"],
    )
    for size in sizes:
        cfg = scale.size_config(SystemConfig(group_user_bytes=size))
        mc = estimate_p_loss(cfg, n_runs=scale.n_runs, base_seed=base_seed,
                             n_jobs=scale.n_jobs)
        p = wilson_interval(mc.runs_with_redirection, mc.n_runs)
        result.add(group_gb=size / GB,
                   systems_with_redirection_pct=100.0 * p.estimate,
                   ci95=render_proportion(p),
                   redirections_total=mc.redirections_total)
    result.notes.append(
        "Paper §2.3: at worst, fewer than 8% of systems saw a redirection "
        "even once in six simulated years.")
    return result
