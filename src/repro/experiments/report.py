"""Plain-text rendering of experiment results.

The paper presents bar charts and line plots; a terminal harness renders
the same series as aligned tables (one row per bar/point) so the numbers
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..reliability.stats import Proportion


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """Aligned text table with a header rule."""
    cells = [[_fmt(r.get(c)) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) if cells
              else len(c) for i, c in enumerate(columns)]
    def line(vals: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(vals, widths)).rstrip()
    out = [line(columns), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def pct(x: float) -> str:
    """Format a probability as a percentage."""
    return f"{100.0 * x:.2f}%"


def render_proportion(p: Proportion) -> str:
    """Short 'est [lo, hi]' rendering of a Proportion.

    A zero-hit estimate (positive budget, no observed losses) carries the
    'rule of three' upper bound so the table says how little the zero
    actually proves.
    """
    base = f"{100 * p.estimate:.2f} [{100 * p.lo:.2f},{100 * p.hi:.2f}]"
    if p.zero_hit:
        base += f" 0-hit p<={100 * p.rule_of_three_upper:.3g}"
    return base
