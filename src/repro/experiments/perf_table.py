"""Degraded-mode performance table (extension; paper §1–2 argument).

The paper motivates declustering partly by degraded-mode performance; this
experiment tabulates the closed-form model of
:mod:`repro.performance.degraded`: per-survivor load factor and rebuild
bandwidth share for a dedicated array versus the declustered cluster, for
every paper scheme.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..performance import compare_layouts
from ..redundancy.schemes import PAPER_SCHEMES
from .base import ExperimentResult, Scale, current_scale


def run(scale: Scale | None = None, base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="perf-degraded",
        description=("per-survivor load during recovery: dedicated array "
                     "vs declustered cluster (closed form)"),
        scale=scale,
        columns=["scheme", "layout", "disks_sharing", "user_load_factor",
                 "rebuild_share", "total_load_factor"],
    )
    for scheme in PAPER_SCHEMES:
        cfg = scale.size_config(SystemConfig(scheme=scheme))
        for load in compare_layouts(cfg):
            result.add(scheme=scheme.name, layout=load.layout,
                       disks_sharing=load.n_disks - load.failed,
                       user_load_factor=load.user_load_factor,
                       rebuild_share=load.rebuild_read_share,
                       total_load_factor=load.total_load_factor)
    result.notes.append(
        "Dedicated arrays roughly double survivor load during recovery; "
        "declustering keeps the increase within a fraction of a percent "
        "(Muntz & Lui; the paper\'s performance argument).")
    return result
