"""Bulk-engine benchmark: throughput + parity on the figure-5 grid.

The bulk window-overlap engine (:mod:`repro.reliability.bulk`) exists to
buy naive-MC throughput — the fleet-scale design sweeps the ROADMAP
calls for need orders of magnitude more lifetimes than the DES engines
can afford.  This driver makes that claim a measured, recorded, and
*asserted* number instead of a docstring promise.  It runs the exact
figure-5 point grid (FARM and traditional, both group sizes, all five
recovery bandwidths) twice on the same process pool:

* **baseline leg** — the naive-MC DES estimator, a few runs per point
  (enough to time it honestly; its per-run cost is milliseconds to
  tenths of a second);
* **bulk leg** — ``engine="bulk"``, :data:`BULK_RUNS_FACTOR` times the
  scale's run budget per point (the whole reason the engine exists).

It asserts the bulk leg's aggregate ``runs_per_s`` is at least
:data:`MIN_SPEEDUP` times the baseline's, writes the per-point table to
``results/bulk-sweep.txt``, and appends a combined record (with a
``bulk_comparison`` block carrying both legs' throughputs and the
measured speedup) to the ``BENCH_sweep.json`` history, where
``scripts/bench_guard.py`` watches it for regressions.
"""

from __future__ import annotations

from pathlib import Path

from ..reliability.runner import (BENCH_SCHEMA, PointSpec, SweepRunner,
                                  append_bench_record, bench_run_id,
                                  bench_timestamp, default_bench_path)
from ..reliability.stats import wilson_interval
from .base import ExperimentResult, Scale, current_scale
from .report import render_proportion
from . import figure5

#: The asserted headline: bulk-engine runs/s at least this many times
#: the process-pool naive-MC DES baseline on the same grid and pool
#: (measured ~150x at smoke scale on 2 workers).
MIN_SPEEDUP = 100.0

#: Bulk runs per point = scale.n_runs x this.  The engine's point is
#: throughput, so the benchmark exercises (and times) a budget the DES
#: baseline could never afford.
BULK_RUNS_FACTOR = 25

#: Baseline DES runs per point — enough to time the per-run cost
#: honestly without the baseline leg dominating the benchmark's wall
#: clock.
BASELINE_RUNS_CAP = 4

#: Where the rendered per-point table goes.
DEFAULT_TEXT_PATH = Path("results") / "bulk-sweep.txt"


def run(scale: Scale | None = None, base_seed: int = 0,
        text_path: Path | None = DEFAULT_TEXT_PATH) -> ExperimentResult:
    scale = scale or current_scale()
    # Both legs share one pool size so the speedup is an apples-to-apples
    # throughput ratio; a serial scale still benchmarks on 2 workers
    # because the claim is against the *process-pool* baseline.
    jobs = scale.n_jobs if scale.n_jobs else 2
    baseline_runs = min(scale.n_runs, BASELINE_RUNS_CAP)
    bulk_runs = scale.n_runs * BULK_RUNS_FACTOR
    points = figure5.grid(scale)
    labels = list(points)

    # Each leg gets its own runner (bench/telemetry disabled — this
    # driver appends its own combined record below).
    baseline_runner = SweepRunner(n_jobs=jobs, bench_path=None,
                                  telemetry_path="")
    baseline_runner.run_points(
        [PointSpec(label, points[label]) for label in labels],
        baseline_runs, base_seed=base_seed, sweep_name="bulk-baseline")
    base_record = baseline_runner.last_record

    bulk_runner = SweepRunner(n_jobs=jobs, bench_path=None,
                              telemetry_path="")
    outcomes = bulk_runner.run_points(
        [PointSpec(label, points[label], engine="bulk")
         for label in labels],
        bulk_runs, base_seed=base_seed, sweep_name="bulk-sweep")
    bulk_record = bulk_runner.last_record

    base_rps = base_record["runs_per_s"]
    bulk_rps = bulk_record["runs_per_s"]
    speedup = bulk_rps / base_rps if base_rps > 0 else float("inf")

    result = ExperimentResult(
        experiment="bulk-sweep",
        description=(f"bulk engine vs process-pool naive-MC DES on the "
                     f"figure-5 grid ({len(labels)} points, "
                     f"{jobs} workers)"),
        scale=scale,
        columns=["mode", "group_gb", "bw_mbps", "n_runs", "p_loss_pct",
                 "ci95", "mean_window_s"],
    )
    for o in outcomes:
        farm, size_gb, bw_mbps = o.label.split("|")
        p = wilson_interval(o.aggregate.losses, o.aggregate.n_runs, 0.95)
        result.add(mode="FARM" if farm == "True" else "w/o",
                   group_gb=float(size_gb), bw_mbps=float(bw_mbps),
                   n_runs=o.aggregate.n_runs,
                   p_loss_pct=100.0 * p.estimate,
                   ci95=render_proportion(p),
                   mean_window_s=o.aggregate.mean_window)
    result.notes.append(
        f"bulk engine: {bulk_rps:,.0f} runs/s over {bulk_record['total_runs']}"
        f" runs; DES baseline: {base_rps:,.1f} runs/s over "
        f"{base_record['total_runs']} runs; speedup {speedup:,.0f}x "
        f"(required >= {MIN_SPEEDUP:g}x).")

    # The subsystem's headline claim is part of the harness contract:
    # fail loudly if the vectorized path regresses below it.
    assert speedup >= MIN_SPEEDUP, (
        f"bulk-engine speedup {speedup:.1f}x < required "
        f"{MIN_SPEEDUP:g}x (bulk {bulk_rps:.0f} runs/s vs baseline "
        f"{base_rps:.1f} runs/s on {jobs} workers)")

    text = result.render() + "\n"
    if text_path is not None:
        text_path.parent.mkdir(parents=True, exist_ok=True)
        text_path.write_text(text)
    _write_bench(scale, jobs, base_seed, base_record, bulk_record, speedup)
    return result


def _write_bench(scale: Scale, jobs: int, base_seed: int,
                 base_record: dict, bulk_record: dict,
                 speedup: float) -> None:
    """Append the throughput comparison to the perf-record history."""
    path = default_bench_path()
    if path is None:
        return
    record = {
        "schema": BENCH_SCHEMA,
        "sweep": "bulk-sweep",
        "timestamp": bench_timestamp(),
        "run_id": bench_run_id(),
        "engines": ["bulk", "des"],
        "scale": scale.name,
        "n_jobs": jobs,
        "workers": jobs,
        "base_seed": base_seed,
        "n_points": bulk_record["n_points"],
        "n_runs_per_point": bulk_record["n_runs_per_point"],
        "total_runs": bulk_record["total_runs"],
        "wall_time_s": bulk_record["wall_time_s"],
        "events_fired": bulk_record["events_fired"],
        # Top-level runs/s is the *bulk* leg's so the bench-regression
        # guard tracks the number the >=MIN_SPEEDUP claim is made of.
        "runs_per_s": bulk_record["runs_per_s"],
        "events_per_s": 0.0,
        "points": bulk_record["points"],
        "bulk_comparison": {
            "baseline_runs_per_s": base_record["runs_per_s"],
            "baseline_total_runs": base_record["total_runs"],
            "baseline_wall_time_s": base_record["wall_time_s"],
            "bulk_runs_per_s": bulk_record["runs_per_s"],
            "speedup": speedup,
            "min_required": MIN_SPEEDUP,
        },
    }
    append_bench_record(path, record)
