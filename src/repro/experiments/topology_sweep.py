"""Topology sweep: placement survival under correlated rack bursts.

The paper's loss model assumes independent disk failures over a flat
pool.  Under that assumption constraint-free declustered placement is
optimal; under *correlated* domain failures it is the worst case — a
mirror group whose two blocks share a rack dies the instant that rack
does.  This experiment makes the trade-off measurable: a grid of rack
counts x placement policies x rack-burst rates, each cell a set of
seeded object-engine scenarios armed with
:class:`~repro.faults.domains.DomainBurst` at rack level.

Policies compared at equal redundancy (mirroring):

* ``random`` — the paper's unconstrained declustered placement;
* ``random+cap`` — the same placement under
  ``max_chunks_per_domain=1`` (at most one block of a group per rack);
* ``copyset`` — copyset placement built rack-aware, same cap.

Replacement batches are enabled so deferred rebuilds have somewhere to
drain: after a burst kills a rack, the constrained policies re-replicate
into the surviving domains and the next burst finds every group still
rack-disjoint.  The unconstrained policy loses every group that was
co-located in the burst rack — ``p_loss`` strictly higher than either
constrained policy at the same rate.
"""

from __future__ import annotations

import pathlib

from ..config import SystemConfig
from ..faults.domains import DomainBurst
from ..reliability.runner import SweepRunner
from ..reliability.scenarios import Scenario
from ..units import DAY, GB, TB, YEAR
from .base import ExperimentResult, Scale, current_scale

#: Rack counts swept (machines_per_rack stays 1: burst granularity is
#: the rack, so the machine level adds nothing here).
RACK_COUNTS: tuple[int, ...] = (2, 4)

#: Rack-burst arrival rates (whole-cluster, 1/seconds).
BURST_RATES: tuple[float, ...] = (4.0 / YEAR, 16.0 / YEAR)

#: Scenario measurement horizon.
HORIZON = 180 * DAY

#: label -> SystemConfig overrides for the compared placement policies.
POLICIES: tuple[tuple[str, dict], ...] = (
    ("random", {}),
    ("random+cap", {"max_chunks_per_domain": 1}),
    ("copyset", {"placement": "copyset", "max_chunks_per_domain": 1}),
)


def _cell_config(racks: int, overrides: dict) -> SystemConfig:
    """A small object-engine system (32 disks, 400 mirror groups).

    Utilization is kept low (25%) and the replacement threshold
    aggressive (10%) so that after a burst kills a whole rack, the
    replacement batch plus surviving headroom can always host a
    rack-disjoint re-replication of every degraded group.  At the
    default 40% utilization the batch disks in the killed rack fill up
    and hundreds of rebuilds park constraint-deferred until the *next*
    batch — a capacity-planning failure mode, not the placement effect
    this sweep isolates."""
    return SystemConfig(total_user_bytes=4 * TB, group_user_bytes=10 * GB,
                        racks=racks, machines_per_rack=1,
                        target_utilization=0.25,
                        replacement_threshold=0.1, **overrides)


def _burst_run(task: tuple[SystemConfig, int, float]) -> dict:
    """One seeded burst scenario (module-level so it pickles for the
    sweep runner's worker pool)."""
    cfg, seed, rate = task
    out = (Scenario(cfg, seed=seed)
           .inject_faults(DomainBurst(rate, level="rack"))
           .run(horizon=HORIZON))
    s = out.stats
    return dict(lost=bool(out.lost_groups),
                groups_lost=len(out.lost_groups),
                rebuilt_gb=s.rebuilds_completed * cfg.block_bytes / GB,
                deferred_cap=s.rebuilds_deferred_constraint,
                colocated=s.domain_colocated_losses,
                bursts=out.fault_stats.domain_bursts)


def run(scale: Scale | None = None, base_seed: int = 0) -> ExperimentResult:
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="topology-sweep",
        description=("p_loss and recovery traffic under rack bursts, by "
                     "rack count x placement policy "
                     f"({_cell_config(2, {}).describe()})"),
        scale=scale,
        columns=["racks", "policy", "bursts_yr", "p_loss", "groups_lost",
                 "rebuilt_gb", "deferred_cap", "colocated"],
    )
    cells = [(racks, label, overrides, rate)
             for racks in RACK_COUNTS
             for label, overrides in POLICIES
             for rate in BURST_RATES]
    tasks = [(_cell_config(racks, overrides), base_seed + i, rate)
             for racks, label, overrides, rate in cells
             for i in range(scale.n_runs)]
    runner = SweepRunner(n_jobs=scale.n_jobs)
    rows = runner.map_tasks(_burst_run, tasks)
    for c, (racks, label, overrides, rate) in enumerate(cells):
        cell_rows = rows[c * scale.n_runs:(c + 1) * scale.n_runs]
        n = len(cell_rows)
        result.add(racks=racks, policy=label,
                   bursts_yr=rate * YEAR,
                   p_loss=sum(r["lost"] for r in cell_rows) / n,
                   groups_lost=sum(r["groups_lost"] for r in cell_rows),
                   rebuilt_gb=sum(r["rebuilt_gb"] for r in cell_rows) / n,
                   deferred_cap=sum(r["deferred_cap"] for r in cell_rows),
                   colocated=sum(r["colocated"] for r in cell_rows))
    result.notes.append(
        "identical seeds per cell: every policy in a row faces the same "
        "burst arrival times (same faults-domain-bursts stream), so "
        "p_loss differences are placement-caused, not sampling noise.")
    result.notes.append(
        "the cap policies defer rather than violate when a burst leaves "
        "no compliant target (deferred_cap); a replacement batch rearms "
        "them, so groups return to rack-disjoint layout before the next "
        "burst.")
    out_dir = pathlib.Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "topology-sweep.txt").write_text(result.render() + "\n")
    return result
