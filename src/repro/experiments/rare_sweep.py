"""Rare-event estimator comparison: naive MC vs IS vs splitting.

The paper's probabilities fall below what 100-run naive Monte Carlo can
resolve — a zero-hit sweep point proves only ``p <= 3/n``.  This driver
takes the base FARM scenario (two-way mirroring, bathtub rates, FARM
recovery) reduced to the *rare regime* — the small-cluster, short-horizon
corner where losses are genuinely rare events — and runs all three
estimators at the **same run budget**:

* ``naive``   — count losing lifetimes (Wilson interval);
* ``is``      — exponential tilting at :data:`RARE_TILT` (weighted CLT
  interval; see :mod:`repro.reliability.rare`);
* ``splitting`` — fixed-effort multilevel splitting on concurrent
  degraded groups, budget split evenly across stages.

It asserts the headline claim of the acceleration subsystem — the IS 95%
interval is at least :data:`MIN_CI_NARROWING` times narrower than the
naive one at equal budget — writes the comparison table to
``results/rare-sweep.txt``, and records the widths in the
``BENCH_sweep.json`` perf record.  The global tilt only *helps* while the
expected failure count is small; ``docs/RARE_EVENTS.md`` derives why (and
why splitting is the tool once systems grow).
"""

from __future__ import annotations

import math
import time
from pathlib import Path

from ..config import SystemConfig
from ..reliability.montecarlo import MonteCarloResult, estimate_p_loss
from ..reliability.rare import estimate_p_loss_is, splitting_p_loss
from ..reliability.runner import (BENCH_SCHEMA, append_bench_record,
                                  bench_run_id, bench_timestamp,
                                  default_bench_path)
from ..units import DAY, GB, TB, YEAR
from .base import ExperimentResult, Scale, current_scale
from .report import render_proportion

#: Hazard log-multiplier for the IS leg (rates scaled by ``exp`` of it).
#: Calibrated for the rare-regime scenario below: large enough that tilted
#: runs hit losses routinely, small enough that the likelihood-ratio
#: weights keep a healthy effective sample size (~n/4 at this budget).
RARE_TILT = math.log(14.0)

#: Splitting levels (concurrent degraded-group thresholds).
RARE_LEVELS: tuple[int, ...] = (1, 2)

#: Run budget per estimator.  Deliberately independent of the scale knob:
#: the rare-regime lifetimes are tiny (10 disks, 3 months), and the
#: comparison needs a budget where the naive estimator demonstrably
#: fails while IS resolves the probability.
N_RUNS = 400

#: The asserted headline: IS 95% CI at least this many times narrower
#: than naive MC at equal budget (measured ~12x at seed 0).
MIN_CI_NARROWING = 5.0

#: Where the rendered comparison table goes.
DEFAULT_TEXT_PATH = Path("results") / "rare-sweep.txt"


def scenario_config() -> SystemConfig:
    """The base FARM scenario reduced to the rare regime.

    Same design point as the paper's base system — two-way mirroring,
    10 GB groups, bathtub vintage, FARM recovery — shrunk to a 10-disk
    pilot over a quarter, with a week-long detection latency so loss
    needs two overlapping failures inside a rare window.  True p_loss is
    ~1e-3: a 400-run naive estimate is usually a zero-hit.
    """
    return SystemConfig(total_user_bytes=2 * TB,
                        group_user_bytes=10 * GB,
                        duration=0.25 * YEAR,
                        detection_latency=7 * DAY)


def _width(result: MonteCarloResult) -> float:
    return result.p_loss.hi - result.p_loss.lo


def run(scale: Scale | None = None, base_seed: int = 0,
        n_runs: int = N_RUNS,
        text_path: Path | None = DEFAULT_TEXT_PATH) -> ExperimentResult:
    scale = scale or current_scale()
    cfg = scenario_config()
    t0 = time.time()
    naive = estimate_p_loss(cfg, n_runs=n_runs, base_seed=base_seed)
    t_naive = time.time() - t0
    t0 = time.time()
    is_res = estimate_p_loss_is(cfg, n_runs=n_runs, tilt=RARE_TILT,
                                base_seed=base_seed)
    t_is = time.time() - t0
    t0 = time.time()
    split = splitting_p_loss(cfg, n_runs=n_runs // (len(RARE_LEVELS) + 1),
                             levels=RARE_LEVELS, base_seed=base_seed)
    t_split = time.time() - t0
    split_mc = split.as_montecarlo()

    result = ExperimentResult(
        experiment="rare-sweep",
        description=(f"p_loss estimators at equal budget ({n_runs} runs), "
                     f"rare-regime FARM scenario ({cfg.n_disks} disks, "
                     f"3 months)"),
        scale=scale,
        columns=["estimator", "p_loss_pct", "ci95", "ci_width_pct",
                 "hit_runs", "ess", "seconds"],
    )
    rows = [
        ("naive", naive, naive.losses, naive.ess, t_naive),
        ("is(tilt=ln14)", is_res, is_res.losses, is_res.ess, t_is),
        (f"splitting{RARE_LEVELS}", split_mc, split.stages[-1].hits,
         split_mc.ess, t_split),
    ]
    for name, mc, hits, ess, secs in rows:
        result.add(estimator=name,
                   p_loss_pct=100.0 * mc.p_loss.estimate,
                   ci95=render_proportion(mc.p_loss),
                   ci_width_pct=100.0 * _width(mc),
                   hit_runs=hits, ess=round(ess, 1),
                   seconds=round(secs, 2))

    narrowing = _width(naive) / _width(is_res) if _width(is_res) else \
        math.inf
    result.notes.append(
        f"IS 95% CI is {narrowing:.1f}x narrower than naive MC at equal "
        f"budget (required >= {MIN_CI_NARROWING:g}x).")
    if naive.zero_hit:
        result.notes.append(
            f"naive is a zero-hit: its budget only proves p <= "
            f"{naive.p_loss.rule_of_three_upper:.3g} (rule of three).")
    # The subsystem's headline claim is part of the harness contract:
    # fail loudly if a regression widens the weighted interval.
    assert narrowing >= MIN_CI_NARROWING, (
        f"IS CI narrowing {narrowing:.2f}x < required "
        f"{MIN_CI_NARROWING:g}x (naive width {_width(naive):.5f}, "
        f"IS width {_width(is_res):.5f})")

    text = result.render() + "\n"
    if text_path is not None:
        text_path.parent.mkdir(parents=True, exist_ok=True)
        text_path.write_text(text)
    _write_bench(cfg, n_runs, base_seed, naive, is_res, split_mc,
                 narrowing)
    return result


def _write_bench(cfg: SystemConfig, n_runs: int, base_seed: int,
                 naive: MonteCarloResult, is_res: MonteCarloResult,
                 split_mc: MonteCarloResult, narrowing: float) -> None:
    """Record the equal-budget CI comparison in the perf record."""
    path = default_bench_path()
    if path is None:
        return
    record = {
        "schema": BENCH_SCHEMA,
        "sweep": "rare-sweep",
        "timestamp": bench_timestamp(),
        "run_id": bench_run_id(),
        "n_points": 3,
        "n_runs_per_point": n_runs,
        "total_runs": 3 * n_runs,
        "rare_comparison": {
            "scenario": {"n_disks": cfg.n_disks,
                         "duration_s": cfg.duration,
                         "detection_latency_s": cfg.detection_latency},
            "base_seed": base_seed,
            "tilt": RARE_TILT,
            "levels": list(RARE_LEVELS),
            "naive": {"estimate": naive.p_loss.estimate,
                      "ci_width": naive.p_loss.hi - naive.p_loss.lo,
                      "hit_runs": naive.losses,
                      "zero_hit": naive.zero_hit},
            "is": {"estimate": is_res.p_loss.estimate,
                   "ci_width": is_res.p_loss.hi - is_res.p_loss.lo,
                   "hit_runs": is_res.losses,
                   "ess": is_res.ess},
            "splitting": {"estimate": split_mc.p_loss.estimate,
                          "ci_width": split_mc.p_loss.hi
                          - split_mc.p_loss.lo},
            "ci_narrowing": narrowing,
            "min_required": MIN_CI_NARROWING,
        },
    }
    # Append, never overwrite: the bench file is a bounded history
    # shared by every sweep driver (regression guards diff against it).
    append_bench_record(path, record)
