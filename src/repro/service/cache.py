"""Content-addressed store of live Monte-Carlo evidence.

Keys are :func:`repro.config.config_digest` values, so *what* was asked
— not when, or in what field order — addresses the evidence.  An entry
stores raw counts (losses, trials) rather than a finished interval: the
Wilson CI is recomputed per request at whatever confidence the caller
asks, and background refinement just adds counts.

Persistence is an append-only JSONL journal: every update appends one
record, the newest record per digest wins at load (counts are cumulative
across refinement rounds, so replaying only the last record is exact),
and the file is compacted back to one line per digest when the journal
grows past a multiple of the live entry count.  The in-memory side is a
bounded LRU — eviction forgets the *fast path*, never the evidence,
which reloads from the journal on the next miss.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from ..reliability.stats import (Proportion, empty_proportion,
                                 wilson_interval)

#: Schema tag on every journal record.
CACHE_SCHEMA = "repro.forecast-cache.v1"

#: In-memory LRU capacity (entries, not bytes — an entry is ~200 B).
DEFAULT_CAPACITY = 4096

#: Compact the journal when it holds this many times the live entries.
_COMPACT_FACTOR = 4


@dataclass(frozen=True)
class CacheEntry:
    """Accumulated live evidence for one config digest."""

    digest: str
    losses: int
    trials: int
    #: refinement rounds folded in so far (round ``i`` derives its seed
    #: schedule from ``(digest, i)``, so counts never double-count).
    rounds: int
    #: live engine the evidence came from ("bulk" or "des").
    engine: str

    def proportion(self, confidence: float = 0.95) -> Proportion:
        """The entry's Wilson interval at the requested confidence."""
        if self.trials <= 0:
            return empty_proportion(confidence)
        return wilson_interval(self.losses, self.trials, confidence)

    def merged(self, losses: int, trials: int) -> "CacheEntry":
        """This entry plus one more refinement round's counts."""
        return replace(self, losses=self.losses + losses,
                       trials=self.trials + trials,
                       rounds=self.rounds + 1)

    def to_record(self) -> dict:
        return {"schema": CACHE_SCHEMA, "digest": self.digest,
                "losses": self.losses, "trials": self.trials,
                "rounds": self.rounds, "engine": self.engine}

    @classmethod
    def from_record(cls, record: dict) -> "CacheEntry | None":
        if record.get("schema") != CACHE_SCHEMA:
            return None
        try:
            return cls(digest=str(record["digest"]),
                       losses=int(record["losses"]),
                       trials=int(record["trials"]),
                       rounds=int(record["rounds"]),
                       engine=str(record["engine"]))
        except (KeyError, TypeError, ValueError):
            return None


class ForecastCache:
    """Bounded-LRU view over the append-only evidence journal."""

    def __init__(self, path: str | Path | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = Path(path) if path else None
        self.capacity = capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._journal_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> CacheEntry | None:
        """The entry for ``digest`` (LRU-touched), or ``None``.

        An in-memory miss falls back to the journal: eviction bounds the
        hot set, not the evidence.
        """
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            return entry
        entry = self._scan_journal(digest)
        if entry is not None:
            self._remember(entry)
        return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert or replace the evidence for ``entry.digest``."""
        self._remember(entry)
        self._append(entry)

    def entries(self) -> list[CacheEntry]:
        """The resident entries, least recently used first."""
        return list(self._entries.values())

    # ------------------------------------------------------------------ #
    def _remember(self, entry: CacheEntry) -> None:
        self._entries[entry.digest] = entry
        self._entries.move_to_end(entry.digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _load(self) -> None:
        lines = 0
        latest: dict[str, CacheEntry] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                record = json.loads(line)
            except ValueError:
                continue
            entry = CacheEntry.from_record(record)
            if entry is not None:
                latest[entry.digest] = entry
        self._journal_lines = lines
        for entry in latest.values():
            self._remember(entry)

    def _scan_journal(self, digest: str) -> CacheEntry | None:
        """Newest journal record for ``digest`` (evicted-entry path)."""
        if self.path is None or not self.path.exists():
            return None
        found: CacheEntry | None = None
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        for line in text.splitlines():
            if digest not in line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            entry = CacheEntry.from_record(record)
            if entry is not None and entry.digest == digest:
                found = entry
        return found

    def _append(self, entry: CacheEntry) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry.to_record(), sort_keys=True) + "\n")
        self._journal_lines += 1
        if self._journal_lines > _COMPACT_FACTOR * max(len(self._entries),
                                                       1):
            self.compact()

    def compact(self) -> None:
        """Rewrite the journal to one (newest) record per digest."""
        if self.path is None:
            return
        latest: dict[str, CacheEntry] = {}
        if self.path.exists():
            for line in self.path.read_text(
                    encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                entry = CacheEntry.from_record(record)
                if entry is not None:
                    latest[entry.digest] = entry
        for entry in self._entries.values():
            latest[entry.digest] = entry
        body = "".join(json.dumps(e.to_record(), sort_keys=True) + "\n"
                       for e in latest.values())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(body, encoding="utf-8")
        self._journal_lines = len(latest)
