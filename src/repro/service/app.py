"""The asyncio HTTP server wrapping the forecast cascade.

Pure stdlib: ``asyncio.start_server`` plus a hand-rolled HTTP/1.1
request parser (close-delimited responses, one request per connection —
the clients this serves are curl, urllib, and the bundled one-shot
client, none of which need keep-alive).  Routes:

* ``POST /forecast``        — answer a config query through the cascade;
* ``GET  /forecast/<key>``  — re-read a cached live answer by digest;
* ``GET  /healthz``         — liveness;
* ``GET  /metrics``         — Prometheus text (request counters and
  per-tier latency histograms via the repro telemetry exporter).

Between requests a background task drains the refinement queue: the
widest cached confidence interval gets one more Monte-Carlo round, so
answers tighten over time without any request ever blocking on more
than its own first round.  Estimation runs on a worker thread
(:func:`repro.reliability.montecarlo.estimate_p_loss_async`), so the
event loop keeps serving while lifetimes execute.

Wall-clock reads here are deliberate and allowlisted (RPR011,
``repro.analysis.determinism.WALL_CLOCK_ALLOWLIST``): request latency
and queue pacing are *host* quantities — no simulation clock exists at
this layer, and simulated time never reaches these calls.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..telemetry.export import to_prometheus
from ..telemetry.metrics import MetricRegistry, log_bounds
from .cascade import ForecastCascade, InfeasibleConfig
from .protocol import (FORECAST_SCHEMA, ForecastError, MAX_BODY_BYTES,
                       forecast_to_dict, parse_forecast_request)

#: Latency histogram buckets: 100 µs .. 100 s, four per decade.
_LATENCY_BOUNDS = log_bounds(1e-4, 100.0)

#: Idle sleep between refinement-queue polls when the queue is empty.
_REFINE_IDLE_S = 0.05

#: Maximum size of the request head (request line + headers).
_MAX_HEAD_BYTES = 16 * 1024

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                422: "Unprocessable Entity",
                500: "Internal Server Error"}


class ForecastService:
    """One cascade, one metric registry, one refinement loop."""

    def __init__(self, cascade: ForecastCascade | None = None,
                 registry: MetricRegistry | None = None,
                 refine: bool = True) -> None:
        self.cascade = cascade or ForecastCascade()
        self.registry = registry or MetricRegistry()
        self.refine_enabled = refine
        self._server: asyncio.base_events.Server | None = None
        self._refine_task: asyncio.Task | None = None
        self._refined = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        if self.refine_enabled:
            self._refine_task = asyncio.create_task(self._refine_loop())
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def stop(self) -> None:
        if self._refine_task is not None:
            self._refine_task.cancel()
            try:
                await self._refine_task
            except asyncio.CancelledError:
                pass
            self._refine_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self, host: str, port: int) -> None:
        await self.start(host, port)
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def wait_refined(self, timeout_s: float = 30.0) -> bool:
        """Block until one refinement round lands (tests/smoke)."""
        self._refined.clear()
        try:
            await asyncio.wait_for(self._refined.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------ #
    # Background refinement
    # ------------------------------------------------------------------ #
    async def _refine_loop(self) -> None:
        depth_gauge = self.registry.gauge(
            "service_refine_queue_depth",
            help="refinable cached entries (CI wider than target)")
        rounds = self.registry.counter(
            "service_refine_rounds_total",
            help="background refinement rounds completed")
        while True:
            queue = self.cascade.refinement_queue()
            depth_gauge.set(float(len(queue)))
            if not queue:
                await asyncio.sleep(_REFINE_IDLE_S)
                continue
            await self.cascade.refine_once()
            rounds.inc()
            self._refined.set()
            # Yield so queued requests interleave between rounds.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        tier = "-"
        path = "-"
        try:
            method, path, body = await self._read_request(reader)
            status, payload, tier = await self._route(method, path, body)
        except ForecastError as exc:
            status, payload = exc.status, {"error": exc.message}
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:   # a crashed estimator is a 500, not EOF
            status, payload = 500, {"error": f"{type(exc).__name__}: "
                                             f"{exc}"}
        self._observe(path, status, tier, time.perf_counter() - t0)
        await self._write_response(writer, status, payload)

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEAD_BYTES:
            raise ForecastError(400, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ForecastError(400, f"malformed request line "
                                     f"{lines[0]!r}")
        method, path, _version = parts
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ForecastError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise ForecastError(413, f"body exceeds {MAX_BODY_BYTES} "
                                     f"bytes")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: Any) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            ctype = "application/json"
        text = _STATUS_TEXT.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {text}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _route(self, method: str, path: str, body: bytes
                     ) -> tuple[int, Any, str]:
        """Dispatch; returns (status, payload, tier-for-metrics)."""
        if path == "/healthz":
            if method != "GET":
                raise ForecastError(405, "healthz is GET-only")
            return 200, {"status": "ok"}, "-"
        if path == "/metrics":
            if method != "GET":
                raise ForecastError(405, "metrics is GET-only")
            return 200, to_prometheus(self.registry.snapshot()), "-"
        if path == "/forecast":
            if method != "POST":
                raise ForecastError(405, "forecast queries are POSTed")
            return await self._post_forecast(body)
        if path.startswith("/forecast/"):
            if method != "GET":
                raise ForecastError(405, "forecast lookup is GET-only")
            return self._get_forecast(path.removeprefix("/forecast/"))
        raise ForecastError(404, f"no route {path!r}")

    async def _post_forecast(self, body: bytes) -> tuple[int, Any, str]:
        config, confidence = parse_forecast_request(body)
        try:
            forecast = await self.cascade.forecast(config, confidence)
        except InfeasibleConfig as exc:
            raise ForecastError(422, str(exc))
        return 200, forecast_to_dict(forecast), forecast.tier

    def _get_forecast(self, key: str) -> tuple[int, Any, str]:
        entry = self.cascade.cache.get(key)
        cfg = self.cascade._configs.get(key)
        if entry is None or cfg is None:
            raise ForecastError(
                404, f"no cached live forecast under key {key!r} "
                     f"(closed-form tiers are stateless; re-POST the "
                     f"config)")
        forecast = self.cascade._from_entry(
            entry, cfg, "cached live evidence", 0.95)
        return 200, forecast_to_dict(forecast), forecast.tier

    # ------------------------------------------------------------------ #
    def _observe(self, path: str, status: int, tier: str,
                 seconds: float) -> None:
        route = path.split("?")[0]
        if route.startswith("/forecast/"):
            route = "/forecast/<key>"
        self.registry.counter(
            "service_requests_total", help="HTTP requests served",
            labels={"route": route, "status": str(status)}).inc()
        self.registry.histogram(
            "service_request_seconds", _LATENCY_BOUNDS,
            help="request latency by answering tier",
            labels={"tier": tier}).observe(seconds)


# --------------------------------------------------------------------- #
# Threaded harness (tests, the --smoke gate, notebooks)
# --------------------------------------------------------------------- #
@dataclass
class ServiceHandle:
    """A running service on its own thread + event loop."""

    service: ForecastService
    host: str
    port: int
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def wait_refined(self, timeout_s: float = 30.0) -> bool:
        """Block the *calling* thread until a refinement round lands."""
        fut = asyncio.run_coroutine_threadsafe(
            self.service.wait_refined(timeout_s), self.loop)
        return fut.result(timeout_s + 5.0)

    def stop(self) -> None:
        fut = asyncio.run_coroutine_threadsafe(self.service.stop(),
                                               self.loop)
        fut.result(10.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


def run_in_thread(service: ForecastService | None = None,
                  host: str = "127.0.0.1",
                  port: int = 0) -> ServiceHandle:
    """Start a service on a daemon thread; returns once it is bound."""
    service = service or ForecastService()
    loop = asyncio.new_event_loop()
    bound: dict[str, Any] = {}
    ready = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            bound["addr"] = await service.start(host, port)

        loop.run_until_complete(_start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-forecast-service",
                              daemon=True)
    thread.start()
    if not ready.wait(30.0):
        raise RuntimeError("forecast service failed to start in 30 s")
    bhost, bport = bound["addr"]
    return ServiceHandle(service=service, host=bhost, port=bport,
                         loop=loop, thread=thread)
