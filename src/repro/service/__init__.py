"""Reliability-forecast service: interactive p_loss/MTTDL queries.

The experiments in :mod:`repro.experiments` answer reliability questions
in batch: pick a figure, run its sweep, read the table.  This package
turns the same estimators into an *interactive* service — a long-running
HTTP server that answers "what is P(data loss) and the MTTDL for this
configuration?" for arbitrary :class:`~repro.config.SystemConfig`\\ s,
through a layered cascade that always returns the cheapest answer whose
validity envelope covers the question:

1. **markov** — the exact CTMC closed form, when rates are constant;
2. **analytic** — the first-order window model, inside its envelope;
3. **surrogate** — multilinear interpolation over precomputed sweep
   grids (:mod:`repro.service.surrogate`), refusing extrapolation;
4. **live** — Monte-Carlo on the persistent-pool runner (vectorized
   bulk engine where expressible, DES otherwise), with the evidence
   content-addressed in :mod:`repro.service.cache` and *refined in the
   background*: wide confidence intervals tighten between requests
   without blocking new ones.

Entry points: ``python -m repro serve`` (the server) and
``python -m repro forecast`` (a one-shot client); the wire schema lives
in :mod:`repro.service.protocol` and is documented in docs/SERVICE.md.
"""

from .app import ForecastService, ServiceHandle, run_in_thread
from .cache import CacheEntry, ForecastCache
from .cascade import (Forecast, ForecastCascade, InfeasibleConfig,
                      check_feasible, repair_utilization)
from .protocol import (FORECAST_SCHEMA, ForecastError, forecast_to_dict,
                       get_forecast, parse_forecast_request,
                       request_forecast)
from .surrogate import Axis, GridStore, SurrogateGrid, build_grid

__all__ = [
    "Axis",
    "CacheEntry",
    "FORECAST_SCHEMA",
    "Forecast",
    "ForecastCache",
    "ForecastCascade",
    "ForecastError",
    "ForecastService",
    "GridStore",
    "InfeasibleConfig",
    "ServiceHandle",
    "SurrogateGrid",
    "build_grid",
    "check_feasible",
    "forecast_to_dict",
    "get_forecast",
    "parse_forecast_request",
    "repair_utilization",
    "request_forecast",
    "run_in_thread",
]
