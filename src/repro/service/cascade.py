"""Layered estimator cascade: cheapest valid answer first.

Tier order, each gated by an explicit validity predicate:

1. ``markov`` — exact CTMC closed form
   (:func:`repro.reliability.markov.supports`): constant rates, flat
   topology.  Degenerate interval — the chain *is* the model's truth.
2. ``analytic`` — first-order window model
   (:func:`repro.reliability.analytic.supports`); the interval is the
   model's own truncation bound (relative O(hW)), not sampling noise.
3. ``surrogate`` — multilinear interpolation over precomputed grids
   (:class:`repro.service.surrogate.GridStore`), refusing extrapolation.
4. ``live-bulk`` / ``live-des`` — Monte-Carlo on the persistent pool;
   the vectorized bulk engine where
   :func:`~repro.reliability.bulk.bulk_unsupported_reasons` is empty,
   the DES engine otherwise.  Evidence accumulates in the
   content-addressed cache across background refinement rounds, each
   round seeded from ``(digest, round)`` so counts never double-count
   and a restarted server reproduces the same trajectory.

Before any tier runs, the Luby-style feasibility rail refuses configs
whose steady-state repair demand exceeds the recovery bandwidth —
every estimator downstream would just measure the queue diverging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..availability.luby import (InfeasibleConfig, check_feasible,
                                 repair_utilization)
from ..config import SystemConfig, config_digest
from ..reliability import analytic, markov
from ..reliability.bulk import bulk_unsupported_reasons
from ..reliability.montecarlo import estimate_p_loss_async
from ..reliability.runner import SweepRunner
from ..reliability.stats import Proportion
from ..sim.rng import stable_hash64
from .cache import CacheEntry, ForecastCache
from .surrogate import GridStore

#: Tier names, cheap to expensive (response ``tier`` field values).
TIER_MARKOV = "markov"
TIER_ANALYTIC = "analytic"
TIER_SURROGATE = "surrogate"
TIER_LIVE_BULK = "live-bulk"
TIER_LIVE_DES = "live-des"

#: Lifetimes per live round — the first answer's budget, and each
#: background refinement round's increment.
DEFAULT_LIVE_RUNS = 64

#: Refinement stops once an entry's 95% CI is narrower than this.
DEFAULT_TARGET_CI_WIDTH = 0.05

#: Hard ceiling on accumulated live trials per digest, so one
#: pathological query cannot monopolize the refinement queue forever.
MAX_LIVE_TRIALS = 100_000

@dataclass(frozen=True)
class Forecast:
    """One cascade answer with its provenance."""

    digest: str
    p_loss: Proportion
    mttdl_s: float | None
    tier: str
    #: human-readable provenance: which predicate admitted the tier, or
    #: which grid / how many live rounds produced the number.
    detail: str
    #: True when background refinement will keep tightening this CI.
    refining: bool = False


def _mttdl_from_p(p: float, duration_s: float) -> float | None:
    """MTTDL implied by P(loss over duration) under Poisson arrivals."""
    if p <= 0.0:
        return None
    if p >= 1.0:
        return 0.0
    return -duration_s / math.log(1.0 - p)


class ForecastCascade:
    """Routes one config to the cheapest valid estimator tier."""

    def __init__(self, cache: ForecastCache | None = None,
                 grids: GridStore | None = None,
                 runner: SweepRunner | None = None,
                 live_runs: int = DEFAULT_LIVE_RUNS,
                 target_ci_width: float = DEFAULT_TARGET_CI_WIDTH) -> None:
        if live_runs < 1:
            raise ValueError("live_runs must be >= 1")
        if not 0.0 < target_ci_width < 1.0:
            raise ValueError("target_ci_width must be in (0, 1)")
        self.cache = cache or ForecastCache()
        self.grids = grids or GridStore()
        self.runner = runner or SweepRunner()
        self.live_runs = live_runs
        self.target_ci_width = target_ci_width
        #: configs behind cached digests, so refinement can re-run them.
        self._configs: dict[str, SystemConfig] = {}

    # ------------------------------------------------------------------ #
    def classify(self, cfg: SystemConfig) -> tuple[str, str]:
        """(tier, detail) the cascade would answer this config from."""
        if markov.supports(cfg):
            return TIER_MARKOV, "exact CTMC closed form (constant rates)"
        if analytic.supports(cfg):
            return TIER_ANALYTIC, "first-order window model (in envelope)"
        grid = self.grids.lookup(cfg)
        if grid is not None:
            return TIER_SURROGATE, f"multilinear over grid {grid.name!r}"
        reasons = bulk_unsupported_reasons(cfg)
        if not reasons:
            return TIER_LIVE_BULK, "vectorized bulk Monte-Carlo"
        return TIER_LIVE_DES, ("discrete-event Monte-Carlo (bulk "
                               "refused: " + "; ".join(reasons) + ")")

    async def forecast(self, cfg: SystemConfig,
                       confidence: float = 0.95) -> Forecast:
        """Answer one query; live-tier misses run one round of MC."""
        check_feasible(cfg)
        digest = config_digest(cfg)
        tier, detail = self.classify(cfg)
        if tier == TIER_MARKOV:
            p = markov.p_loss_config(cfg)
            return Forecast(
                digest=digest, tier=tier, detail=detail,
                p_loss=Proportion(successes=0, trials=0, estimate=p,
                                  lo=p, hi=p, confidence=confidence),
                mttdl_s=markov.mttdl_config(cfg))
        if tier == TIER_ANALYTIC:
            p = analytic.p_loss(cfg)
            rel = analytic.mean_hazard(cfg) * analytic.mean_window(cfg)
            return Forecast(
                digest=digest, tier=tier,
                detail=f"{detail}; truncation bound +/-{rel:.2g} rel",
                p_loss=Proportion(successes=0, trials=0, estimate=p,
                                  lo=max(0.0, p * (1.0 - rel)),
                                  hi=min(1.0, p * (1.0 + rel)),
                                  confidence=confidence),
                mttdl_s=analytic.mttdl_estimate(cfg))
        if tier == TIER_SURROGATE:
            grid = self.grids.lookup(cfg)
            prop = grid.proportion(cfg, confidence)
            return Forecast(
                digest=digest, tier=tier,
                detail=f"{detail} ({grid.n_runs} runs/point)",
                p_loss=prop,
                mttdl_s=_mttdl_from_p(prop.estimate, cfg.duration))
        return await self._live(cfg, digest, tier, detail, confidence)

    # ------------------------------------------------------------------ #
    async def _live(self, cfg: SystemConfig, digest: str, tier: str,
                    detail: str, confidence: float) -> Forecast:
        entry = self.cache.get(digest)
        if entry is None:
            entry = await self._run_round(
                cfg, CacheEntry(digest=digest, losses=0, trials=0,
                                rounds=0, engine=tier.split("-", 1)[1]))
        self._configs[digest] = cfg
        return self._from_entry(entry, cfg, detail, confidence)

    def _from_entry(self, entry: CacheEntry, cfg: SystemConfig,
                    detail: str, confidence: float) -> Forecast:
        prop = entry.proportion(confidence)
        return Forecast(
            digest=entry.digest, tier="live-" + entry.engine,
            detail=f"{detail}; {entry.rounds} round(s), "
                   f"{entry.trials} lifetimes",
            p_loss=prop,
            mttdl_s=_mttdl_from_p(prop.estimate, cfg.duration),
            refining=self._needs_refinement(entry))

    async def _run_round(self, cfg: SystemConfig,
                         entry: CacheEntry) -> CacheEntry:
        """Run one live round and fold its counts into the cache.

        Round ``i`` seeds from ``(digest, "service-live", i)``: rounds
        are disjoint deterministic streams, so re-running a round after
        a crash reproduces — not double-counts — its evidence.
        """
        seed = stable_hash64(entry.digest, "service-live",
                             entry.rounds) % (2 ** 62)
        result = await estimate_p_loss_async(
            cfg, n_runs=self.live_runs, base_seed=seed,
            engine=entry.engine, runner=self.runner)
        merged = entry.merged(result.losses,
                              result.n_runs - result.runs_failed)
        self.cache.put(merged)
        return merged

    # ------------------------------------------------------------------ #
    def _needs_refinement(self, entry: CacheEntry) -> bool:
        if entry.trials >= MAX_LIVE_TRIALS:
            return False
        return entry.proportion().width > self.target_ci_width

    def refinement_queue(self) -> list[CacheEntry]:
        """Refinable entries, widest interval first.

        Only digests whose config this process has seen are refinable —
        the journal stores evidence, not configs, so entries inherited
        from an earlier server life refine again once re-queried.
        """
        pending = [e for e in self.cache.entries()
                   if e.digest in self._configs
                   and self._needs_refinement(e)]
        pending.sort(key=lambda e: e.proportion().width, reverse=True)
        return pending

    async def refine_once(self) -> CacheEntry | None:
        """Tighten the widest refinable CI by one round (None if idle)."""
        queue = self.refinement_queue()
        if not queue:
            return None
        entry = queue[0]
        return await self._run_round(self._configs[entry.digest], entry)
