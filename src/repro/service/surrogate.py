"""Interpolation surrogates over precomputed sweep grids.

Tier 3 of the forecast cascade: when neither closed form's envelope
covers a config but a precomputed Monte-Carlo *grid* brackets it, the
service answers by multilinear interpolation instead of burning live
runs.  A grid is a full factorial sweep over a few numeric config fields
around a base config; coverage is *exact* on every non-axis field (the
canonical dicts must match) and *bracketing* on the axes — a query
outside the hull is an honest refusal, never an extrapolation.

P(loss) is near-linear in system scale (paper Fig. 8) and smooth in
detection latency and group size over the sweep ranges the figures use,
which is what makes a multilinear surrogate trustworthy between the
points the experiments already computed.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import SystemConfig, config_to_dict
from ..reliability.stats import Proportion, wilson_from_rate

#: Schema tag of a grid file.
GRID_SCHEMA = "repro.surrogate-grid.v1"


@dataclass(frozen=True)
class Axis:
    """One swept config field with its sorted grid values."""

    field: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise ValueError(f"axis {self.field!r} needs >= 2 values")
        if list(self.values) != sorted(set(self.values)):
            raise ValueError(f"axis {self.field!r} values must be "
                             f"strictly increasing")


class SurrogateGrid:
    """A factorial p_loss table with multilinear interpolation."""

    def __init__(self, name: str, base: dict, axes: tuple[Axis, ...],
                 p_loss: np.ndarray, n_runs: int) -> None:
        if not axes:
            raise ValueError("a grid needs at least one axis")
        if n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        shape = tuple(len(a.values) for a in axes)
        values = np.asarray(p_loss, dtype=float)
        if values.shape != shape:
            raise ValueError(f"p_loss shape {values.shape} does not "
                             f"match axes {shape}")
        if np.any(values < 0.0) or np.any(values > 1.0):
            raise ValueError("p_loss values must be in [0, 1]")
        self.name = name
        self.base = dict(base)
        self.axes = axes
        self.values = values
        self.n_runs = n_runs

    # ------------------------------------------------------------------ #
    def covers(self, cfg: SystemConfig) -> bool:
        """Exact match off-axis, inside the hull on-axis."""
        d = config_to_dict(cfg)
        for axis in self.axes:
            raw = d.pop(axis.field, None)
            if not isinstance(raw, (int, float)):
                return False
            if not axis.values[0] <= float(raw) <= axis.values[-1]:
                return False
        base = dict(self.base)
        for axis in self.axes:
            base.pop(axis.field, None)
        return d == base

    def interpolate(self, cfg: SystemConfig) -> float:
        """Multilinear P(loss) at ``cfg`` (requires :meth:`covers`)."""
        if not self.covers(cfg):
            raise ValueError(f"grid {self.name!r} does not cover this "
                             f"config; interpolation would extrapolate")
        d = config_to_dict(cfg)
        corners: list[tuple[int, int]] = []
        weights: list[tuple[float, float]] = []
        for axis in self.axes:
            x = float(d[axis.field])
            vals = axis.values
            j = int(np.searchsorted(vals, x, side="right")) - 1
            j = min(max(j, 0), len(vals) - 2)
            span = vals[j + 1] - vals[j]
            t = (x - vals[j]) / span
            corners.append((j, j + 1))
            weights.append((1.0 - t, t))
        total = 0.0
        for picks in itertools.product(*[(0, 1)] * len(self.axes)):
            idx = tuple(corners[k][pick] for k, pick in enumerate(picks))
            w = 1.0
            for k, pick in enumerate(picks):
                w *= weights[k][pick]
            total += w * float(self.values[idx])
        return min(1.0, max(0.0, total))

    def proportion(self, cfg: SystemConfig,
                   confidence: float = 0.95) -> Proportion:
        """Interpolated estimate with a Wilson CI at the grid's budget.

        The surrogate inherits the sampling noise of the sweep it was
        built from, so the honest interval treats the interpolated rate
        as if observed over one grid point's ``n_runs`` — interpolation
        cannot *add* information the grid never had.
        """
        return wilson_from_rate(self.interpolate(cfg), float(self.n_runs),
                                confidence)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "schema": GRID_SCHEMA,
            "name": self.name,
            "base": self.base,
            "axes": [{"field": a.field, "values": list(a.values)}
                     for a in self.axes],
            "n_runs": self.n_runs,
            "p_loss": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SurrogateGrid":
        if data.get("schema") != GRID_SCHEMA:
            raise ValueError(f"not a {GRID_SCHEMA} grid: "
                             f"{data.get('schema')!r}")
        axes = tuple(Axis(field=str(a["field"]),
                          values=tuple(float(v) for v in a["values"]))
                     for a in data["axes"])
        return cls(name=str(data.get("name", "grid")),
                   base=dict(data["base"]), axes=axes,
                   p_loss=np.asarray(data["p_loss"], dtype=float),
                   n_runs=int(data["n_runs"]))


class GridStore:
    """All loaded grids; first cover wins on lookup."""

    def __init__(self, grids: list[SurrogateGrid] | None = None) -> None:
        self.grids = list(grids or [])

    def __len__(self) -> int:
        return len(self.grids)

    def add(self, grid: SurrogateGrid) -> None:
        self.grids.append(grid)

    def lookup(self, cfg: SystemConfig) -> SurrogateGrid | None:
        for grid in self.grids:
            if grid.covers(cfg):
                return grid
        return None

    @classmethod
    def load_dir(cls, path: str | Path) -> "GridStore":
        """Load every ``*.json`` grid under ``path`` (sorted by name).

        A missing directory is an empty store; a malformed grid file is
        an error — a silently dropped grid would demote its queries to
        the live tier without anyone noticing.
        """
        store = cls()
        root = Path(path)
        if not root.is_dir():
            return store
        for file in sorted(root.glob("*.json")):
            data = json.loads(file.read_text(encoding="utf-8"))
            store.add(SurrogateGrid.from_dict(data))
        return store

    def save_dir(self, path: str | Path) -> None:
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        for grid in self.grids:
            out = root / f"{grid.name}.json"
            out.write_text(json.dumps(grid.to_dict()) + "\n",
                           encoding="utf-8")


def build_grid(base: SystemConfig, axes: dict[str, list[float]],
               n_runs: int = 100, base_seed: int = 0,
               engine: str = "bulk", n_jobs: int | None = None,
               name: str = "grid") -> SurrogateGrid:
    """Precompute a factorial grid by sweeping the Monte-Carlo engines.

    One :func:`repro.reliability.montecarlo.sweep` covers the whole
    cartesian product, so the persistent pool stays saturated and every
    point shares the deterministic seed schedule.
    """
    axis_objs = tuple(Axis(field=f, values=tuple(float(v) for v in vs))
                      for f, vs in axes.items())
    fields = [a.field for a in axis_objs]
    combos = list(itertools.product(*[a.values for a in axis_objs]))
    configs = {
        "/".join(f"{f}={v:g}" for f, v in zip(fields, combo)):
            base.with_(**{f: _coerce_field(base, f, v)
                          for f, v in zip(fields, combo)})
        for combo in combos
    }
    from ..reliability.montecarlo import sweep
    results = sweep(configs, n_runs=n_runs, base_seed=base_seed,
                    n_jobs=n_jobs, engine=engine, bench_path=None,
                    sweep_name=f"surrogate:{name}")
    shape = tuple(len(a.values) for a in axis_objs)
    values = np.array([results[label].p_loss.estimate
                       for label in configs]).reshape(shape)
    return SurrogateGrid(name=name, base=config_to_dict(base),
                         axes=axis_objs, p_loss=values, n_runs=n_runs)


def _coerce_field(base: SystemConfig, field: str, value: float):
    """Keep int-typed config fields int under float axis values."""
    current = getattr(base, field)
    if isinstance(current, int) and not isinstance(current, bool):
        return int(value)
    return value
