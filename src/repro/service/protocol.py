"""Wire schema of the forecast service (requests, responses, client).

One JSON schema tag versions the whole exchange; the request carries a
canonical config dict (:func:`repro.config.config_from_dict` semantics:
partial dicts take defaults, unknown keys are an error) and the response
carries the estimate, its interval, and *provenance* — which cascade
tier produced the number and why, so a consumer can tell an exact closed
form from an interpolated surrogate from 64 Monte-Carlo lifetimes.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any
from urllib import request as _urlrequest

from ..config import SystemConfig, config_from_dict

if TYPE_CHECKING:   # response serializer type only; no runtime cycle
    from .cascade import Forecast

#: Schema tag stamped on every response body.
FORECAST_SCHEMA = "repro.forecast.v1"

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 9130

#: Confidence the service answers at unless the request overrides it.
DEFAULT_CONFIDENCE = 0.95

#: Hard cap on request body size (a config dict is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Request keys beyond the config payload.
_REQUEST_KEYS = frozenset({"config", "confidence"})


class ForecastError(Exception):
    """A request the service refuses, with the HTTP status to say so."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def parse_forecast_request(body: bytes
                           ) -> tuple[SystemConfig, float]:
    """Parse a ``POST /forecast`` body into (config, confidence).

    Raises :class:`ForecastError` (status 400) on malformed JSON, an
    unknown top-level key, a bad confidence, or a config dict that
    :func:`~repro.config.config_from_dict` rejects — a typo'd field must
    fail loudly, never fall back to a default and hash to the wrong key.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ForecastError(400, f"request body is not JSON: {exc}")
    if not isinstance(data, dict):
        raise ForecastError(400, "request body must be a JSON object")
    unknown = set(data) - _REQUEST_KEYS
    if unknown:
        raise ForecastError(
            400, f"unknown request key(s) {sorted(unknown)}; expected "
                 f"{sorted(_REQUEST_KEYS)}")
    confidence = data.get("confidence", DEFAULT_CONFIDENCE)
    if not isinstance(confidence, (int, float)) \
            or not 0.0 < confidence < 1.0:
        raise ForecastError(400, f"confidence must be in (0, 1), got "
                                 f"{confidence!r}")
    raw = data.get("config")
    if not isinstance(raw, dict):
        raise ForecastError(400, "request must carry a 'config' object")
    try:
        config = config_from_dict(raw)
    except (ValueError, TypeError, KeyError) as exc:
        raise ForecastError(400, f"bad config: {exc}")
    return config, float(confidence)


def forecast_to_dict(forecast: "Forecast") -> dict[str, Any]:
    """JSON-safe response body for a cascade answer.

    ``mttdl_s`` is ``None`` when the evidence cannot support a finite
    mean (a zero-hit live estimate), and infinite MTTDLs are encoded as
    ``null`` too — JSON has no ``Infinity`` in strict mode.
    """
    p = forecast.p_loss
    mttdl = forecast.mttdl_s
    if mttdl is not None and mttdl != mttdl:   # NaN guard
        mttdl = None
    if mttdl is not None and mttdl == float("inf"):
        mttdl = None
    return {
        "schema": FORECAST_SCHEMA,
        "key": forecast.digest,
        "tier": forecast.tier,
        "detail": forecast.detail,
        "p_loss": p.estimate,
        "ci_lo": p.lo,
        "ci_hi": p.hi,
        "ci_width": p.width,
        "confidence": p.confidence,
        "trials": p.trials,
        "losses": p.successes,
        "mttdl_s": mttdl,
        "refining": forecast.refining,
    }


# --------------------------------------------------------------------- #
# One-shot client (used by ``python -m repro forecast`` and the tests)
# --------------------------------------------------------------------- #
def request_forecast(base_url: str, payload: dict[str, Any],
                     timeout_s: float = 60.0) -> dict[str, Any]:
    """POST a forecast request; returns the decoded response body.

    Raises :class:`ForecastError` with the server's status and message
    on a non-2xx answer, so callers see the refusal reason (a 422
    infeasible-repair diagnosis, a 400 schema complaint) instead of a
    bare HTTPError.
    """
    body = json.dumps(payload).encode("utf-8")
    req = _urlrequest.Request(
        base_url.rstrip("/") + "/forecast", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    return _round_trip(req, timeout_s)


def get_forecast(base_url: str, key: str,
                 timeout_s: float = 60.0) -> dict[str, Any]:
    """GET a previously computed forecast by its content key."""
    req = _urlrequest.Request(
        base_url.rstrip("/") + "/forecast/" + key, method="GET")
    return _round_trip(req, timeout_s)


def _round_trip(req: _urlrequest.Request,
                timeout_s: float) -> dict[str, Any]:
    import urllib.error
    try:
        with _urlrequest.urlopen(req, timeout=timeout_s) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8"))
            message = detail.get("error", str(exc))
        except (ValueError, UnicodeDecodeError):
            message = str(exc)
        raise ForecastError(exc.code, message)
