"""RUSH-style decentralized, weighted data placement (Honicky & Miller).

The paper distributes redundancy groups to disks with RUSH, which gives:

* **statistical balance** — each disk gets its fair (weight-proportional)
  share of blocks;
* **decentralized lookup** — any client computes the mapping by hashing,
  with no central table;
* **near-minimal migration** — when a batch (sub-cluster) of disks is added,
  only the fraction of objects equal to the new batch's share of total
  weight moves, and it moves *onto the new disks*;
* **candidate lists** — for each group an unbounded, prefix-stable sequence
  of distinct disks, used both for initial block placement and for choosing
  FARM recovery targets.

This implementation follows the RUSH_P structure: the system is a sequence
of sub-clusters; placement walks clusters from newest to oldest, sending the
probe into cluster ``j`` with probability equal to ``j``'s share of the
cumulative weight, and hashing uniformly within the chosen cluster.  All
decisions use the deterministic mixers in :mod:`repro.placement.hashing`, so
the map is pure data: reproducible across processes and vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import PlacementAlgorithm, PlacementError
from .hashing import hash_range, hash_unit

#: Offset mixed into within-cluster disk-pick hashes so they are independent
#: of the cluster-choice hashes that share (grp, probe, cluster) inputs.
_DISK_PICK_SALT = 0x5EED_D15C


@dataclass(frozen=True)
class SubCluster:
    """A batch of disks deployed together (ids are contiguous)."""

    start: int          # first disk id
    count: int          # number of disks
    weight: float       # per-disk weight (capacity/vintage based)

    @property
    def mass(self) -> float:
        return self.count * self.weight

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("sub-cluster must contain at least one disk")
        if self.weight <= 0:
            raise ValueError("sub-cluster weight must be positive")


class RushPlacement(PlacementAlgorithm):
    """Weighted multi-cluster placement with candidate lists.

    Parameters
    ----------
    initial_disks:
        Size of the first sub-cluster.
    weight:
        Per-disk weight of the first sub-cluster.
    seed:
        Root of all hashing decisions.
    """

    def __init__(self, initial_disks: int, weight: float = 1.0,
                 seed: int = 0) -> None:
        if initial_disks <= 0:
            raise ValueError("need at least one disk")
        self.seed = int(seed)
        self.clusters: list[SubCluster] = [
            SubCluster(start=0, count=initial_disks, weight=weight)]
        self._cum_mass: list[float] = [self.clusters[0].mass]

    # ------------------------------------------------------------------ #
    @property
    def n_disks(self) -> int:
        last = self.clusters[-1]
        return last.start + last.count

    def add_cluster(self, count: int, weight: float = 1.0) -> SubCluster:
        """Deploy a new batch of ``count`` disks; returns the sub-cluster.

        Only a ``mass_new / mass_total`` fraction of placements change, all
        of them moving onto the new batch (near-minimal migration).
        """
        sc = SubCluster(start=self.n_disks, count=count, weight=weight)
        self.clusters.append(sc)
        self._cum_mass.append(self._cum_mass[-1] + sc.mass)
        return sc

    # ------------------------------------------------------------------ #
    def probe(self, grp_id: int, t: int) -> int:
        """The t-th probe for a group: one disk id (not deduplicated)."""
        return int(self.probe_many(np.asarray([grp_id], dtype=np.int64),
                                   t)[0])

    def probe_many(self, grp_ids: np.ndarray, t: int) -> np.ndarray:
        """Vectorized :meth:`probe` over an array of group ids."""
        g = np.asarray(grp_ids, dtype=np.int64)
        result = np.empty(g.shape, dtype=np.int64)
        undecided = np.ones(g.shape, dtype=bool)
        # Walk clusters newest -> oldest; cluster j captures a probe with
        # probability mass_j / cum_mass_j.
        for j in range(len(self.clusters) - 1, 0, -1):
            if not undecided.any():
                break
            sc = self.clusters[j]
            share = sc.mass / self._cum_mass[j]
            u = hash_unit(self.seed, g, t, j)
            take = undecided & (u < share)
            if take.any():
                picks = hash_range(self.seed, sc.count, g[take], t,
                                   j + _DISK_PICK_SALT)
                result[take] = sc.start + picks
                undecided &= ~take
        if undecided.any():
            sc = self.clusters[0]
            picks = hash_range(self.seed, sc.count, g[undecided], t,
                               _DISK_PICK_SALT)
            result[undecided] = sc.start + picks
        return result

    # ------------------------------------------------------------------ #
    def candidates(self, grp_id: int, count: int) -> list[int]:
        """First ``count`` distinct disks in the group's probe sequence."""
        if count > self.n_disks:
            raise PlacementError(
                f"cannot produce {count} distinct disks from {self.n_disks}")
        out: list[int] = []
        seen: set[int] = set()
        t = 0
        # Coupon-collector bound with generous headroom; hitting it would
        # indicate a broken hash, not bad luck.
        max_probes = 64 + 32 * count
        while len(out) < count:
            if t >= max_probes:
                raise PlacementError(
                    f"probe sequence for group {grp_id} failed to yield "
                    f"{count} distinct disks within {max_probes} probes")
            d = self.probe(grp_id, t)
            t += 1
            if d not in seen:
                seen.add(d)
                out.append(d)
        return out

    def place_many(self, grp_ids: np.ndarray, n: int) -> np.ndarray:
        """Vectorized first-n-distinct placement for many groups."""
        g = np.asarray(grp_ids, dtype=np.int64)
        if n > self.n_disks:
            raise PlacementError(
                f"cannot place {n} blocks on {self.n_disks} disks")
        probes = np.stack([self.probe_many(g, t) for t in range(n)], axis=1)
        # Rows whose first n probes are already distinct are done; fix the
        # rest (rare for n << n_disks) with the scalar path.
        srt = np.sort(probes, axis=1)
        has_dup = (srt[:, 1:] == srt[:, :-1]).any(axis=1)
        if has_dup.any():
            for i in np.nonzero(has_dup)[0]:
                probes[i] = self.candidates(int(g[i]), n)
        return probes

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RushPlacement(disks={self.n_disks}, "
                f"clusters={len(self.clusters)}, seed={self.seed})")
