"""Deterministic, vectorizable 64-bit mixing for placement decisions.

Placement algorithms of the RUSH family make every decision by hashing
``(seed, group, probe, cluster)`` tuples.  We use the splitmix64 finalizer —
a well-studied bijective mixer with excellent avalanche behaviour — composed
over the inputs.  Everything operates on ``uint64`` NumPy arrays so millions
of placement decisions vectorize.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MAX_PLUS1 = float(2 ** 64)

# uint64 arithmetic intentionally wraps; silence NumPy's overflow warnings
# once for this module's functions via errstate in each op.


def mix64(x: np.ndarray | int) -> np.ndarray:
    """splitmix64 finalizer: bijective avalanche mix of a uint64."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        x = x ^ (x >> np.uint64(31))
    return x


def hash_u64(seed: int, a: np.ndarray | int, b: np.ndarray | int = 0,
             c: np.ndarray | int = 0) -> np.ndarray:
    """Deterministic 64-bit hash of (seed, a, b, c); broadcasts over arrays."""
    with np.errstate(over="ignore"):
        h = mix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF) + _GOLDEN)
        h = mix64(h + np.asarray(a, dtype=np.uint64) * _GOLDEN)
        h = mix64(h + np.asarray(b, dtype=np.uint64) * _MIX1)
        h = mix64(h + np.asarray(c, dtype=np.uint64) * _MIX2)
    return h


def hash_unit(seed: int, a: np.ndarray | int, b: np.ndarray | int = 0,
              c: np.ndarray | int = 0) -> np.ndarray:
    """Hash mapped to floats uniform on [0, 1)."""
    return hash_u64(seed, a, b, c) / _U64_MAX_PLUS1


def hash_range(seed: int, n: int, a: np.ndarray | int,
               b: np.ndarray | int = 0,
               c: np.ndarray | int = 0) -> np.ndarray:
    """Hash mapped to integers uniform on [0, n).

    Uses the multiply-shift (Lemire) reduction, which is unbiased enough for
    placement purposes and avoids the modulo bias of ``h % n``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    h = hash_u64(seed, a, b, c)
    with np.errstate(over="ignore"):
        # high 64 bits of h * n without 128-bit ints: use float path for
        # large n is lossy, so do the classic (h >> 11) * n >> 53 trick,
        # exact for n < 2**53.
        top53 = (h >> np.uint64(11)).astype(np.float64)
        out = np.floor(top53 * (n / 9007199254740992.0)).astype(np.int64)
    return np.minimum(out, n - 1)
