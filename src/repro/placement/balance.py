"""Balance metrics for placements (used by Table 3 / Figure 6 and tests).

"A good data placement algorithm ... gives each disk statistically its fair
share of user data and parity data" (paper §2.2).  These helpers quantify
that: per-disk load counts, coefficient of variation, max/mean ratio, and a
chi-square uniformity statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BalanceReport:
    """Summary statistics of a per-disk load vector."""

    n_disks: int
    total: float
    mean: float
    std: float
    cv: float                 # coefficient of variation (std / mean)
    max_over_mean: float
    chi2: float               # sum((obs - exp)^2 / exp) against uniform

    def __str__(self) -> str:
        return (f"BalanceReport(disks={self.n_disks}, mean={self.mean:.4g}, "
                f"std={self.std:.4g}, cv={self.cv:.4f}, "
                f"max/mean={self.max_over_mean:.4f})")


def disk_loads(placements: np.ndarray, n_disks: int,
               weights: np.ndarray | float = 1.0) -> np.ndarray:
    """Per-disk load from a (G, n) placement matrix.

    ``weights`` is the per-block byte count (scalar, or per-group array
    broadcast over the n blocks of each group).
    """
    placements = np.asarray(placements)
    flat = placements.ravel()
    w = np.broadcast_to(
        np.asarray(weights, dtype=float).reshape(-1, 1)
        if np.ndim(weights) == 1 else np.asarray(weights, dtype=float),
        placements.shape).ravel()
    return np.bincount(flat, weights=w, minlength=n_disks)


def analyze(loads: np.ndarray) -> BalanceReport:
    """Balance statistics of a per-disk load vector."""
    loads = np.asarray(loads, dtype=float)
    total = float(loads.sum())
    mean = total / loads.size if loads.size else 0.0
    std = float(loads.std())
    cv = std / mean if mean > 0 else 0.0
    mx = float(loads.max()) / mean if mean > 0 else 0.0
    chi2 = float(((loads - mean) ** 2 / mean).sum()) if mean > 0 else 0.0
    return BalanceReport(n_disks=loads.size, total=total, mean=mean,
                         std=std, cv=cv, max_over_mean=mx, chi2=chi2)
