"""Statistically-equivalent random placement (vectorized).

The reliability results in the paper depend on the *statistical* properties
of RUSH — balance, distinct disks per group, uniformly random recovery
candidates — not on its decentralized-lookup machinery.  This module
provides a placement with the same interface whose bulk path is a single
vectorized rejection sampler, used for very large Monte-Carlo sweeps (e.g.
2 PB with 1 GB groups = 2 million groups).  An ablation benchmark
(`bench_ablation_placement`) confirms RUSH and this placement produce
indistinguishable reliability curves.

Determinism: the mapping is a pure function of (seed, grp_id), exactly like
RUSH, because per-group draws are keyed hashes rather than sequential RNG
consumption.
"""

from __future__ import annotations

import numpy as np

from .base import PlacementAlgorithm, PlacementError
from .hashing import hash_range


class RandomPlacement(PlacementAlgorithm):
    """Uniform placement via keyed hashing, bulk-vectorized."""

    def __init__(self, n_disks: int, seed: int = 0) -> None:
        if n_disks <= 0:
            raise ValueError("need at least one disk")
        self._n_disks = int(n_disks)
        self.seed = int(seed)

    @property
    def n_disks(self) -> int:
        return self._n_disks

    def add_disks(self, count: int) -> None:
        """Grow the disk population (new batch of ``count`` disks).

        Unlike RUSH this remaps arbitrarily; it is only used in sweeps where
        migration volume is not the measured quantity.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        self._n_disks += count

    # -- scalar path ---------------------------------------------------- #
    def candidates(self, grp_id: int, count: int) -> list[int]:
        if count > self._n_disks:
            raise PlacementError(
                f"cannot produce {count} distinct disks from {self._n_disks}")
        out: list[int] = []
        seen: set[int] = set()
        t = 0
        max_probes = 64 + 32 * count
        while len(out) < count:
            if t >= max_probes:
                raise PlacementError("probe sequence exhausted")
            d = int(hash_range(self.seed, self._n_disks, grp_id, t))
            t += 1
            if d not in seen:
                seen.add(d)
                out.append(d)
        return out

    # -- bulk path -------------------------------------------------------- #
    def place_many(self, grp_ids: np.ndarray, n: int) -> np.ndarray:
        """Distinct-disk placement for many groups at once.

        Draws the (G, n) probe matrix in one shot, then re-probes only the
        colliding entries (with fresh probe indexes) until all rows are
        duplicate-free.  For n << n_disks this converges in 2–3 rounds.
        """
        g = np.asarray(grp_ids, dtype=np.int64)
        if n > self._n_disks:
            raise PlacementError(
                f"cannot place {n} blocks on {self._n_disks} disks")
        cols = [hash_range(self.seed, self._n_disks, g, t) for t in range(n)]
        probes = np.stack(cols, axis=1)
        t_next = np.full(g.shape, n, dtype=np.int64)
        for _ in range(64):
            srt = np.sort(probes, axis=1)
            bad_rows = (srt[:, 1:] == srt[:, :-1]).any(axis=1)
            if not bad_rows.any():
                return probes
            idx = np.nonzero(bad_rows)[0]
            # For each bad row, find one duplicated column and redraw it.
            sub = probes[idx]
            for col in range(1, n):
                dup = (sub[:, col:col + 1] == sub[:, :col]).any(axis=1)
                if dup.any():
                    rows = idx[dup]
                    probes[rows, col] = hash_range(
                        self.seed, self._n_disks, g[rows], t_next[rows])
                    t_next[rows] += 1
        # Unreachable for sane parameters; fall back to the scalar path.
        for i in range(probes.shape[0]):  # pragma: no cover
            row = probes[i]
            if len(set(row.tolist())) != n:
                probes[i] = self.candidates(int(g[i]), n)
        return probes
