"""Copyset-style placement: bound the number of fatal failure sets.

Random placement scatters every group over an essentially independent
disk set, so with G >> C(n_disks, n) almost *every* simultaneous n-disk
failure kills some group.  Copyset placement (Cidon et al., USENIX ATC
2013) instead partitions disks into a small number of fixed *copysets*
via P deterministic permutations and assigns each group to one copyset —
only a failure combination covering a whole copyset can lose data.

When a failure-domain topology is supplied, each permutation is built
rack-aware: disks are shuffled *within* their rack (keyed hashing, no
RNG state) and racks are interleaved round-robin, so consecutive
windows — the copysets — span distinct racks whenever the group size
does not exceed the rack count.  Combined with the
``max_chunks_per_domain`` repair pass this makes whole-rack bursts
survivable by construction.

Determinism matches the other placements: every decision is a pure
keyed hash of ``(seed, grp_id, probe)``; no sequential RNG is consumed.
"""

from __future__ import annotations

import numpy as np

from .base import PlacementAlgorithm, PlacementError
from .hashing import hash_range, hash_u64

#: Salt separating the group->copyset assignment from candidate probes.
_ASSIGN_SALT = 0xC0505E7
#: Salt for the recovery-candidate probe sequence beyond the copyset.
_EXTEND_SALT = 0x7A26E7


class CopysetPlacement(PlacementAlgorithm):
    """Permutation-based copysets, optionally rack-aware.

    Parameters
    ----------
    n_disks:
        Initial disk population; copysets are built over these disks.
    group_size:
        Blocks per group (``scheme.n``); each copyset has this many disks.
    topology:
        Optional :class:`~repro.cluster.topology.Topology` (duck-typed:
        ``racks``, ``disks_in_rack``).  Non-flat topologies get
        rack-interleaved permutations.
    permutations:
        Scatter width knob ``P``: each disk lands in about ``P`` copysets.
    """

    def __init__(self, n_disks: int, group_size: int, topology=None,
                 permutations: int = 4, seed: int = 0) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if n_disks < group_size:
            raise PlacementError(
                f"cannot build copysets of {group_size} from {n_disks} disks")
        if permutations < 1:
            raise ValueError("need at least one permutation")
        self._n_disks = int(n_disks)
        self.group_size = int(group_size)
        self.seed = int(seed)
        rows: list[list[int]] = []
        for p in range(permutations):
            order = self._permutation(p, topology)
            for i in range(0, len(order) - group_size + 1, group_size):
                rows.append(order[i:i + group_size])
        self._copysets = np.array(rows, dtype=np.int64)

    def _permutation(self, p: int, topology) -> list[int]:
        if topology is not None and getattr(topology, "racks", 1) > 1:
            queues: list[list[int]] = []
            for r in range(topology.racks):
                ds = [d for d in topology.disks_in_rack(r)
                      if d < self._n_disks]
                ds.sort(key=lambda d: int(hash_u64(self.seed, d, p, 1)))
                queues.append(ds)
            rack_order = sorted(range(len(queues)),
                                key=lambda r: int(hash_u64(self.seed, r, p, 2)))
            out: list[int] = []
            fronts = [0] * len(queues)
            remaining = self._n_disks
            while remaining:
                for r in rack_order:
                    if fronts[r] < len(queues[r]):
                        out.append(queues[r][fronts[r]])
                        fronts[r] += 1
                        remaining -= 1
            return out
        ds = list(range(self._n_disks))
        ds.sort(key=lambda d: int(hash_u64(self.seed, d, p, 1)))
        return ds

    # -- interface --------------------------------------------------------- #
    @property
    def n_disks(self) -> int:
        return self._n_disks

    @property
    def n_copysets(self) -> int:
        return int(self._copysets.shape[0])

    def copyset_of(self, grp_id: int) -> list[int]:
        idx = int(hash_range(self.seed, self.n_copysets, grp_id,
                             _ASSIGN_SALT))
        return [int(d) for d in self._copysets[idx]]

    def candidates(self, grp_id: int, count: int) -> list[int]:
        if count > self._n_disks:
            raise PlacementError(
                f"cannot produce {count} distinct disks from {self._n_disks}")
        out = self.copyset_of(grp_id)
        if count <= len(out):
            return out[:count]
        seen = set(out)
        t = 0
        max_probes = 64 + 32 * count
        while len(out) < count:
            if t >= max_probes:
                raise PlacementError("probe sequence exhausted")
            d = int(hash_range(self.seed, self._n_disks, grp_id, t,
                               _EXTEND_SALT))
            t += 1
            if d not in seen:
                seen.add(d)
                out.append(d)
        return out

    def place_many(self, grp_ids: np.ndarray, n: int) -> np.ndarray:
        g = np.asarray(grp_ids, dtype=np.int64)
        if n > self.group_size:
            return super().place_many(g, n)
        idx = hash_range(self.seed, self.n_copysets, g, _ASSIGN_SALT)
        return self._copysets[idx][:, :n]

    def add_disks(self, count: int) -> None:
        """Grow the pool for recovery-candidate probes only.

        Copysets are a property of the initial population: late-added
        disks never join a copyset (matching the paper's model, where
        batches are rebalance targets, not new placement structure) but
        do become recovery candidates beyond the copyset prefix.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        self._n_disks += count
