"""Data-placement substrate: RUSH-style and random placement, balance."""

from .balance import BalanceReport, analyze, disk_loads
from .base import PlacementAlgorithm, PlacementError
from .copyset import CopysetPlacement
from .hashing import hash_range, hash_u64, hash_unit, mix64
from .random_placement import RandomPlacement
from .rush import RushPlacement, SubCluster

__all__ = [
    "PlacementAlgorithm", "PlacementError",
    "RushPlacement", "SubCluster", "RandomPlacement", "CopysetPlacement",
    "BalanceReport", "analyze", "disk_loads",
    "hash_u64", "hash_unit", "hash_range", "mix64",
]
