"""Placement-algorithm interface.

A placement algorithm deterministically maps each redundancy group to an
ordered *candidate list* of distinct disks.  The first ``n`` candidates hold
the group's blocks; later candidates are where FARM looks for recovery
targets when a block must be re-created (paper §2.3: "Our data placement
algorithm, RUSH, provides a list of locations where replicated data blocks
can go").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class PlacementError(RuntimeError):
    """Raised when a placement cannot be satisfied (e.g. too few disks)."""


class PlacementAlgorithm(ABC):
    """Deterministic group -> ordered-distinct-disk-list mapping."""

    @property
    @abstractmethod
    def n_disks(self) -> int:
        """Total number of disks currently known to the algorithm."""

    @abstractmethod
    def candidates(self, grp_id: int, count: int) -> list[int]:
        """First ``count`` distinct candidate disks for group ``grp_id``.

        The list is deterministic for a given (algorithm state, grp_id) and
        is a *prefix-stable* sequence: ``candidates(g, k)`` is a prefix of
        ``candidates(g, k+1)``.
        """

    def place_group(self, grp_id: int, n: int) -> list[int]:
        """Disks for the group's n blocks (first n candidates)."""
        return self.candidates(grp_id, n)

    def place_many(self, grp_ids: np.ndarray, n: int) -> np.ndarray:
        """Vectorized ``place_group`` -> array of shape (len(grp_ids), n).

        The default implementation loops; subclasses override with a
        vectorized path.
        """
        return np.array([self.place_group(int(g), n) for g in grp_ids],
                        dtype=np.int64)
