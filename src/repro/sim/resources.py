"""Queueing resources for the simulation layer.

Two abstractions are provided:

:class:`SerialServer`
    A single-server FCFS queue expressed purely in *times*: callers submit a
    job of a given duration and get back its completion time.  This is the
    workhorse of the recovery models — e.g. the single spare disk in the
    traditional RAID baseline serializes all rebuild jobs, and each FARM
    recovery target serializes jobs directed at it.  Because the reliability
    simulator only needs completion times (not mid-job state), this
    closed-form queue is far cheaper than a token-based resource.

:class:`Resource`
    A capacity-limited resource for the generator-process layer, supporting
    ``request``/``release`` with FIFO granting.  Used by higher-fidelity
    models and by the workload module.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .engine import Simulator
from .process import Signal


class SerialServer:
    """Single-server FCFS queue in closed form.

    Jobs are submitted with ``submit(now, duration)`` and execute back to
    back: a job starts at ``max(now, time the previous job finishes)``.

    >>> q = SerialServer()
    >>> q.submit(0.0, 10.0)     # runs 0..10
    10.0
    >>> q.submit(2.0, 5.0)      # queued until 10, runs 10..15
    15.0
    >>> q.submit(20.0, 1.0)     # idle gap, runs 20..21
    21.0
    """

    __slots__ = ("free_at", "jobs_served", "busy_time")

    def __init__(self) -> None:
        self.free_at = 0.0
        self.jobs_served = 0
        self.busy_time = 0.0

    def submit(self, now: float, duration: float) -> float:
        """Enqueue a job arriving at ``now``; return its completion time."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(now, self.free_at)
        self.free_at = start + duration
        self.jobs_served += 1
        self.busy_time += duration
        return self.free_at

    def backlog(self, now: float) -> float:
        """Seconds of queued work remaining at time ``now``."""
        return max(0.0, self.free_at - now)

    def reset(self) -> None:
        self.free_at = 0.0
        self.jobs_served = 0
        self.busy_time = 0.0


class Request(Signal):
    """A pending acquisition of a :class:`Resource` slot (a Signal that
    triggers when the slot is granted)."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(name=f"request:{resource.name}")
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Capacity-limited resource with FIFO granting for processes.

    >>> from repro.sim.engine import Simulator
    >>> from repro.sim.process import Process, Timeout
    >>> sim = Simulator(); res = Resource(sim, capacity=1)
    >>> order = []
    >>> def user(tag, hold):
    ...     req = res.request()
    ...     yield req
    ...     order.append((tag, sim.now))
    ...     yield Timeout(hold)
    ...     req.release()
    >>> _ = Process(sim, user('a', 5.0)); _ = Process(sim, user('b', 1.0))
    >>> sim.run()
    >>> order
    [('a', 0.0), ('b', 5.0)]
    """

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Request] = deque()

    def request(self) -> Request:
        """Ask for a slot; the returned Request triggers when granted."""
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.trigger(req)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted slot, waking the next waiter."""
        if not req.triggered:
            # Releasing an ungranted request just removes it from the queue.
            try:
                self._queue.remove(req)
            except ValueError:
                pass
            return
        if self._queue:
            nxt = self._queue.popleft()
            nxt.trigger(nxt)
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        return len(self._queue)
