"""Named, reproducible random-number streams.

Every stochastic component of the simulator (failure times, placement,
target selection, workload) draws from its own named stream so that changing
how one component consumes randomness does not perturb the others — the
standard variance-reduction discipline for Monte-Carlo reliability studies.

Streams are derived from a root seed with ``numpy.random.SeedSequence`` and a
stable 64-bit hash of the stream name, so ``RandomStreams(seed).get("x")`` is
identical across processes and Python versions.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash64(*parts: object) -> int:
    """A stable (non-salted) 64-bit hash of the given parts.

    Python's builtin ``hash`` is salted per-process for strings, so it cannot
    be used for reproducible stream derivation or placement.  This uses
    blake2b over the repr of each part.
    """
    h = hashlib.blake2b(digest_size=8)
    for p in parts:
        h.update(repr(p).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


#: Stream kinds reserved for the rare-event estimators
#: (:mod:`repro.reliability.rare`).  ``split-resample`` drives the
#: multilevel-splitting state resampling; ``clone-failures`` draws the
#: conditional residual failure times of a restored splitting clone.  The
#: family is a closed registry so golden-regression tests can pin every
#: member; importance sampling deliberately has no entry here — the
#: tilted draw consumes the ordinary ``disk-failures`` stream so that a
#: zero tilt reproduces the unweighted trajectories bit for bit.
RARE_STREAM_KINDS: tuple[str, ...] = ("split-resample", "clone-failures")


def rare_stream_name(kind: str) -> str:
    """The stream name for a rare-event stream ``kind`` (validated)."""
    if kind not in RARE_STREAM_KINDS:
        raise ValueError(f"unknown rare stream kind {kind!r}; expected "
                         f"one of {RARE_STREAM_KINDS}")
    return f"rare-{kind}"


#: Stream kinds reserved for the bulk-lifetime engine
#: (:mod:`repro.reliability.bulk`).  ``failures`` draws every disk's
#: lifetime in one batch, ``placement`` draws group membership, and
#: ``windows`` draws the stochastic part of the repair windows
#: (traditional-mode queue positions).  Like the rare family this is a
#: closed registry so the golden-regression suite can pin every member:
#: the bulk engine deliberately does *not* share the DES engines'
#: ``disk-failures``/``targets`` streams — its draw order is batched, not
#: event-ordered, so sharing would silently perturb the DES pins.
BULK_STREAM_KINDS: tuple[str, ...] = ("failures", "placement", "windows")


def bulk_stream_name(kind: str) -> str:
    """The stream name for a bulk-engine stream ``kind`` (validated)."""
    if kind not in BULK_STREAM_KINDS:
        raise ValueError(f"unknown bulk stream kind {kind!r}; expected "
                         f"one of {BULK_STREAM_KINDS}")
    return f"bulk-{kind}"


class RandomStreams:
    """Factory of independent named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(stable_hash64(name),))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._cache[name] = gen
        return gen

    def rare(self, kind: str) -> np.random.Generator:
        """A stream of the rare-event family (see :data:`RARE_STREAM_KINDS`).

        Dedicated streams keep the estimators' own randomness (state
        resampling, clone redraws) isolated from the simulation's
        component streams, so enabling an accelerated estimator never
        perturbs an ordinary run with the same seed.
        """
        return self.get(rare_stream_name(kind))

    def bulk(self, kind: str) -> np.random.Generator:
        """A stream of the bulk-engine family (see :data:`BULK_STREAM_KINDS`).

        The bulk-lifetime engine draws whole batches (all lifetimes, all
        placements) instead of event-ordered scalars, so it owns its own
        stream family: enabling it can never perturb — and is never
        perturbed by — the DES engines' streams for the same seed.
        """
        return self.get(bulk_stream_name(kind))

    def fresh(self, name: str) -> np.random.Generator:
        """Return a new generator for ``name``, resetting any cached state."""
        self._cache.pop(name, None)
        return self.get(name)

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child stream set (for Monte-Carlo run i)."""
        child_seed = stable_hash64(self.seed, "spawn", index) % (2 ** 63)
        return RandomStreams(child_seed)
