"""Event primitives for the discrete-event simulation engine.

An :class:`Event` is a scheduled callback with a firing time, a tie-breaking
priority, and a monotonically increasing sequence number that makes the event
order total and deterministic.  Events may be cancelled before they fire;
cancellation is O(1) (the heap entry is left in place and skipped on pop).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping events that must run before normal events at the
#: same timestamp (e.g. state snapshots).
PRIORITY_HIGH = -10
#: Priority for events that must run after normal events at the same
#: timestamp (e.g. invariant checks).
PRIORITY_LOW = 10

_seq_counter = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled occurrence in simulated time.

    Events compare by ``(time, priority, seq)`` which gives a deterministic
    total order; callbacks and payload never participate in comparison.
    """

    time: float
    priority: int = PRIORITY_NORMAL
    seq: int = field(default_factory=lambda: next(_seq_counter))
    callback: Callable[..., Any] | None = field(default=None, compare=False)
    args: tuple = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)
    name: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (no-op if cancelled or callback-less)."""
        if self.cancelled or self.callback is None:
            return None
        return self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or getattr(self.callback, "__name__", "?")
        flag = " CANCELLED" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority} {label}{flag}>"
