"""Generator-based processes on top of the event engine.

This gives the simulator a coroutine-style modelling layer similar to what
PARSEC entities (or simpy processes) provide: a process is a Python generator
that yields *waitables* — :class:`Timeout`, :class:`Signal`, or another
:class:`Process` — and is resumed when the waitable completes.

Example
-------
>>> from repro.sim.engine import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     log.append(('start', sim.now))
...     yield Timeout(3.0)
...     log.append(('done', sim.now))
>>> p = Process(sim, worker(sim))
>>> sim.run()
>>> log
[('start', 0.0), ('done', 3.0)]
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from .engine import Simulator
from .events import Event


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Waitable that completes after a fixed delay."""

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = float(delay)
        self.value = value


class Signal:
    """A one-shot broadcast waitable.

    Processes yielding a pending Signal block until :meth:`trigger` is
    called; all waiters resume at the trigger time with the signal's value.
    Yielding an already-triggered signal resumes immediately.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(value)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """Drives a generator as a simulated process.

    The generator may yield:

    * ``Timeout(dt)`` — sleep for ``dt`` simulated seconds;
    * ``Signal`` — wait until the signal triggers;
    * another ``Process`` — wait for it to finish (receiving its return
      value);
    * ``None`` — yield control and resume immediately (same timestamp).

    The process object itself is waitable, completing when the generator
    returns.  ``interrupt()`` throws :class:`Interrupt` into the generator at
    the current simulation time.
    """

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any],
                 name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self._done_signal = Signal(f"done:{self.name}")
        self._pending_event: Event | None = None
        self._waiting_on: Signal | None = None
        # Start at the current time (but via the event queue so ordering
        # with already-scheduled events at `now` stays deterministic).
        self._pending_event = sim.schedule(0.0, self._resume, None,
                                           name=f"start:{self.name}")

    # -- waitable protocol -------------------------------------------- #
    @property
    def done(self) -> Signal:
        """Signal triggered with the generator's return value on completion."""
        return self._done_signal

    # -- control ------------------------------------------------------- #
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.alive:
            return
        self._detach()
        self.sim.schedule(0.0, self._throw, Interrupt(cause),
                          name=f"interrupt:{self.name}")

    def _detach(self) -> None:
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None

    # -- engine plumbing ------------------------------------------------ #
    def _resume(self, value: Any) -> None:
        self._pending_event = None
        self._waiting_on = None
        if not self.alive:
            return
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Uncaught interrupt kills the process quietly.
            self._finish(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self._pending_event = self.sim.schedule(
                0.0, self._resume, None, name=f"yield:{self.name}")
        elif isinstance(target, Timeout):
            self._pending_event = self.sim.schedule(
                target.delay, self._resume, target.value,
                name=f"timeout:{self.name}")
        elif isinstance(target, Signal):
            if target.triggered:
                self._pending_event = self.sim.schedule(
                    0.0, self._resume, target.value,
                    name=f"signal:{self.name}")
            else:
                self._waiting_on = target
                target._add_waiter(self)
        elif isinstance(target, Process):
            self._wait_on(target.done)
        else:
            raise TypeError(f"process {self.name} yielded non-waitable "
                            f"{target!r}")

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self._done_signal.trigger(value)


def all_of(sim: Simulator, waitables: Iterable[Signal | Process]) -> Process:
    """A process that completes when every given waitable has completed."""

    def _waiter() -> Generator[Any, Any, list]:
        results = []
        for w in waitables:
            results.append((yield w))
        return results

    return Process(sim, _waiter(), name="all_of")
