"""Structured event tracing for simulation runs.

A :class:`TraceRecorder` plugs into :class:`~repro.sim.engine.Simulator`'s
``trace`` hook and collects a structured timeline — useful for debugging
recovery schedules, writing regression fixtures, and the incident
post-mortem example.  Records can be filtered by event-name prefix, capped
in length, and exported as JSON lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TextIO

from .events import Event


@dataclass(frozen=True)
class TraceRecord:
    """One fired event: time, name, sequence number."""

    time: float
    name: str
    seq: int

    def to_json(self) -> str:
        return json.dumps({"t": self.time, "name": self.name,
                           "seq": self.seq})


@dataclass
class TraceRecorder:
    """Collects fired events from a Simulator.

    Parameters
    ----------
    prefixes:
        If given, only events whose name starts with one of these prefixes
        are kept (e.g. ``("disk-failure", "rebuild")``).
    max_records:
        Ring-buffer cap; oldest records are dropped beyond it.
    sink:
        Optional callback invoked with each kept :class:`TraceRecord` as
        it is recorded — the streaming writer (wire it to a logger, a
        JSONL file via :meth:`write_jsonl`, or any callable).

    Usage::

        recorder = TraceRecorder(prefixes=("disk-failure",))
        sim = Simulator(trace=recorder)
        ...
        with open("trace.jsonl", "w") as fh:
            recorder.write_jsonl(fh)
    """

    prefixes: tuple[str, ...] = ()
    max_records: int | None = None
    records: list[TraceRecord] = field(default_factory=list)
    #: records evicted from the ring buffer (``max_records`` overflow).
    dropped: int = 0
    #: events rejected by the ``prefixes`` filter (never recorded at all,
    #: so they don't count as ``dropped``); mirrors ``dropped`` so a
    #: consumer can tell "never kept" from "kept then evicted".
    filtered: int = 0
    sink: Callable[[TraceRecord], None] | None = None

    def __call__(self, event: Event) -> None:
        """The Simulator trace hook."""
        name = event.name or getattr(event.callback, "__name__", "?")
        if self.prefixes and not name.startswith(self.prefixes):
            self.filtered += 1
            return
        record = TraceRecord(time=event.time, name=name, seq=event.seq)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)
        if self.max_records is not None and \
                len(self.records) > self.max_records:
            del self.records[0]
            self.dropped += 1

    # -- access --------------------------------------------------------- #
    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def named(self, name: str) -> list[TraceRecord]:
        """Records whose name matches exactly."""
        return [r for r in self.records if r.name == name]

    def between(self, start: float, end: float) -> list[TraceRecord]:
        """Records with start <= time < end."""
        return [r for r in self.records if start <= r.time < end]

    def counts(self) -> dict[str, int]:
        """Histogram of event names."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0) + 1
        return out

    def to_jsonl(self) -> str:
        """One JSON object per line, in firing order."""
        return "\n".join(r.to_json() for r in self.records)

    def write_jsonl(self, file: TextIO) -> int:
        """Write the collected records to ``file`` as JSON lines.

        Returns the number of records written.  This is the batch
        counterpart of the streaming ``sink`` callback.
        """
        for r in self.records:
            file.write(r.to_json())
            file.write("\n")
        return len(self.records)


def filtered(hook: Callable[[Event], None],
             predicate: Callable[[Event], bool]) -> Callable[[Event], None]:
    """Compose a trace hook with an arbitrary event predicate."""

    def _hook(event: Event) -> None:
        if predicate(event):
            hook(event)

    return _hook
