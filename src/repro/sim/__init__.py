"""Discrete-event simulation substrate (PARSEC substitute).

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.events.Event` — scheduled callback.
* :class:`~repro.sim.process.Process`, :class:`~repro.sim.process.Timeout`,
  :class:`~repro.sim.process.Signal`, :class:`~repro.sim.process.Interrupt`
  — generator-based process layer.
* :class:`~repro.sim.resources.SerialServer`,
  :class:`~repro.sim.resources.Resource` — queueing resources.
* :class:`~repro.sim.rng.RandomStreams` — named reproducible RNG streams.
"""

from .engine import PeriodicTimer, SimulationError, Simulator
from .events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, Event
from .process import Interrupt, Process, Signal, Timeout, all_of
from .resources import Request, Resource, SerialServer
from .rng import RandomStreams, stable_hash64
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Simulator", "SimulationError", "Event", "PeriodicTimer",
    "PRIORITY_HIGH", "PRIORITY_LOW", "PRIORITY_NORMAL",
    "Process", "Timeout", "Signal", "Interrupt", "all_of",
    "SerialServer", "Resource", "Request",
    "RandomStreams", "stable_hash64",
    "TraceRecorder", "TraceRecord",
]
