"""Heap-based discrete-event simulation core.

The paper ran its experiments on PARSEC, a C discrete-event simulation tool.
This module is the Python substitute: a deterministic, timestamp-ordered
event loop.  It is intentionally simple — a binary heap of
:class:`~repro.sim.events.Event` objects and a clock — because the
reliability simulations schedule at most a few hundred thousand events per
run and the costly work (failure-time sampling, placement) is vectorized
outside the loop.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(5.0, fired.append, 'a')
>>> _ = sim.schedule(1.0, fired.append, 'b')
>>> sim.run()
>>> fired
['b', 'a']
>>> sim.now
5.0
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterator

from .events import PRIORITY_NORMAL, Event


class SimulationError(RuntimeError):
    """Raised for invalid scheduling (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).
    trace:
        Optional callable invoked as ``trace(event)`` just before each event
        fires; useful for debugging and for building event logs in tests.
    """

    def __init__(self, start_time: float = 0.0,
                 trace: Callable[[Event], None] | None = None) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._trace = trace
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------ #
    # Clock and introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def pending(self) -> Iterator[Event]:
        """Iterate over pending events in arbitrary (heap) order."""
        return (ev for ev in self._heap if not ev.cancelled)

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else math.inf

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, priority: int = PRIORITY_NORMAL,
                 name: str = "") -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback, *args,
                                priority=priority, name=name)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any, priority: int = PRIORITY_NORMAL,
                    name: str = "") -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}")
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        ev = Event(time=float(time), priority=priority,
                   callback=callback, args=args, name=name)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> Event | None:
        """Execute the next pending event; return it (or None if drained)."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            if self._trace is not None:
                self._trace(ev)
            ev.fire()
            self._events_fired += 1
            return ev
        return None

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock is
            advanced to ``until`` (standard end-of-horizon semantics).
        max_events:
            Safety valve: at most ``max_events`` events fire; a further
            pending event raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is math.inf:
                    break
                if until is not None and nxt > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway model?")
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (clock unchanged)."""
        self._heap.clear()

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def every(self, interval: float | Callable[[], float],
              callback: Callable[..., Any], *args: Any,
              until: float | None = None,
              name: str = "") -> "PeriodicTimer":
        """Run ``callback(*args)`` repeatedly, ``interval`` seconds apart.

        ``interval`` may be a zero-argument callable re-evaluated before
        each arming, for periods that depend on mutable state (e.g. a
        scrub cycle spread over a growing disk population).  The first
        firing is one interval from now; firings stop after ``until`` or
        when the returned timer is cancelled.
        """
        timer = PeriodicTimer(self, interval, callback, args, until, name)
        timer._arm()
        return timer


class PeriodicTimer:
    """A self-rescheduling timer (see :meth:`Simulator.every`)."""

    __slots__ = ("sim", "interval", "callback", "args", "until", "name",
                 "cancelled", "fired", "_event")

    def __init__(self, sim: Simulator,
                 interval: float | Callable[[], float],
                 callback: Callable[..., Any], args: tuple,
                 until: float | None, name: str) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.until = until
        self.name = name
        self.cancelled = False
        self.fired = 0
        self._event: Event | None = None

    def _period(self) -> float:
        dt = self.interval() if callable(self.interval) else self.interval
        if dt <= 0 or math.isnan(dt):
            raise SimulationError(f"timer period must be positive, got {dt}")
        return float(dt)

    def _arm(self) -> None:
        when = self.sim.now + self._period()
        if self.until is not None and when > self.until:
            self._event = None
            return
        self._event = self.sim.schedule_at(when, self._fire,
                                           name=self.name)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired += 1
        self.callback(*self.args)
        if not self.cancelled:
            self._arm()

    def cancel(self) -> None:
        """Stop the timer; any armed firing is cancelled."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
