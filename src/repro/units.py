"""Unit constants (SI bytes, seconds).

SI decimal byte units are used throughout because that is what makes the
paper's arithmetic exact: "it takes 64 seconds to reconstruct a 1 GB group
... at a bandwidth of 16 MB/sec" (1e9 / 16e6 = 62.5 s).
"""

# bytes
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12
PB = 1e15

# time (seconds)
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365.25 * DAY
MONTH = YEAR / 12.0


def fmt_bytes(b: float) -> str:
    """Human-readable byte count (SI)."""
    for unit, name in ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"),
                       (KB, "KB")):
        if abs(b) >= unit:
            return f"{b / unit:.4g} {name}"
    return f"{b:.0f} B"


def fmt_duration(s: float) -> str:
    """Human-readable duration."""
    for unit, name in ((YEAR, "yr"), (DAY, "d"), (HOUR, "h"), (MINUTE, "min")):
        if abs(s) >= unit:
            return f"{s / unit:.4g} {name}"
    return f"{s:.4g} s"
