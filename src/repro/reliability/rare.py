"""Rare-event acceleration for the probability of data loss.

The paper's headline probabilities drop to 1e-4 and far below, where the
naive estimator (count losing lifetimes) needs millions of runs for a
usable interval.  This module provides the two classic variance-reduction
estimators, both exactly unbiased and both degenerating to the naive
estimator at their trivial settings (the golden-pin gate in
``tests/test_rare.py``):

**Importance sampling by exponential tilting**
    (:class:`TiltedFailureDraw`, :func:`estimate_p_loss_is`).  Failure
    ages are drawn from the bathtub model with every hazard multiplied by
    ``exp(tilt)``; each run carries the likelihood ratio of its censored
    failure-age vector on ``RecoveryStats.log_weight``, and the weighted
    sums fold through :class:`~repro.reliability.stats.WeightedAggregate`
    (exact Shewchuk sums, so serial and parallel sweeps agree bit for
    bit).  The sampler consumes the *same* uniforms from the ordinary
    ``disk-failures`` stream the naive path uses, which is what makes
    ``tilt=0`` reproduce the unweighted trajectories exactly, and makes
    tilted/untilted pairs common-random-number coupled.

**Fixed-effort multilevel splitting**
    (:func:`splitting_p_loss`).  The level variable is the count of
    concurrently *degraded* groups (>=1 failed block, not lost) — data
    loss requires overlapping degradation, so trajectories that reach k
    concurrent degraded groups are the promising ones.  Each stage runs a
    fixed effort of N legs; legs that reach the next level are captured
    as :class:`~repro.reliability.simulation.SplitState` snapshots, the
    next stage resamples starting states from that pool (dedicated
    ``rare-split-resample`` stream) and regenerates each clone's future
    by redrawing residual failure times (``rare-clone-failures`` stream;
    valid because (age, alive) makes the failure process Markov).  The
    estimate is the product of per-stage conditional hit fractions, with
    a delta-method interval.

When each wins, the math, and the re-pin policy for weighted goldens are
documented in ``docs/RARE_EVENTS.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..config import SystemConfig
from ..disks.failure import BathtubFailureModel
from ..sim.rng import RandomStreams, stable_hash64
from ..telemetry.handle import TelemetryConfig
from .montecarlo import MonteCarloResult, estimate_p_loss
from .runner import StatsAggregate, SweepRunner, seed_schedule
from .simulation import ReliabilitySimulation, SplitState
from .stats import Proportion, _erfinv, wilson_interval

#: Default hazard tilt for :func:`estimate_p_loss_is`: every failure rate
#: is multiplied by ``exp(DEFAULT_TILT)``.  Tuned for the small "rare
#: regime" scenarios where global tilting genuinely helps (see
#: ``docs/RARE_EVENTS.md`` for the weight-degeneracy analysis that caps
#: useful tilts as the disk count grows).
DEFAULT_TILT = math.log(3.0)

#: Default splitting levels: concurrent-degraded-group thresholds.
DEFAULT_LEVELS: tuple[int, ...] = (1, 2)


# --------------------------------------------------------------------- #
# Importance sampling
# --------------------------------------------------------------------- #
class TiltedFailureDraw:
    """Exponentially tilted failure-age proposal with LR accounting.

    Implements the :class:`~repro.reliability.simulation.FailureDraw`
    protocol.  A drive whose reference hazard is ``h(t)`` is sampled with
    hazard ``c * h(t)``, ``c = exp(tilt)``; the accumulated
    :attr:`log_weight` is the log density ratio of the *censored*
    observation (the age if it precedes the horizon, else the survival
    event), which is all the trajectory can see:

    * observed at age ``t`` (given current age ``a``):
      ``log w = (c - 1) * (H(t) - H(a)) - log c``
    * censored at horizon age ``T``:
      ``log w = (c - 1) * (H(T) - H(a))``

    with ``H`` the reference cumulative hazard.  Taking the ratio on the
    censored statistic Rao-Blackwellizes away the over-horizon tail and
    keeps survivor weights deterministic.  At ``tilt = 0`` the proposal
    *is* the reference model (``scaled(1.0)`` is bit-identical), the same
    uniforms produce the same ages, and ``log_weight`` stays exactly 0.
    """

    def __init__(self, model: BathtubFailureModel, tilt: float) -> None:
        self.model = model
        self.tilt = float(tilt)
        #: hazard multiplier c = exp(tilt)
        self.factor = math.exp(self.tilt)
        self.tilted = model.scaled(self.factor)
        self.log_weight = 0.0

    def sample(self, rng: np.random.Generator, size: int,
               current_age: np.ndarray | float = 0.0,
               horizon_age: float = math.inf) -> np.ndarray:
        ages = self.tilted.sample_failure_age(rng, size,
                                              current_age=current_age)
        c = self.factor
        base = self.model
        cur = np.broadcast_to(np.asarray(current_age, dtype=float), (size,))
        h0 = base.cumulative_hazard(cur)
        observed = ages <= horizon_age
        n_obs = int(observed.sum())
        logw = 0.0
        if n_obs:
            dh = base.cumulative_hazard(ages[observed]) - h0[observed]
            logw += (c - 1.0) * float(dh.sum()) - n_obs * math.log(c)
        if n_obs < size:
            dh_t = base.cumulative_hazard(horizon_age) - h0[~observed]
            logw += (c - 1.0) * float(dh_t.sum())
        self.log_weight += logw
        return ages


def estimate_p_loss_is(config: SystemConfig, n_runs: int = 100,
                       tilt: float = DEFAULT_TILT, base_seed: int = 0,
                       confidence: float = 0.95,
                       n_jobs: int | None = None,
                       keep_run_stats: bool = False,
                       telemetry: TelemetryConfig | bool | None = None,
                       on_error: str = "raise") -> MonteCarloResult:
    """Importance-sampled estimate of P(data loss).

    A thin wrapper over :func:`~repro.reliability.montecarlo.
    estimate_p_loss` with the tilt threaded through the sweep runner, so
    weighted runs ride the exact same persistent pool, seed schedule, and
    reorder-buffer folding as naive runs.  ``result.p_loss`` is the
    weighted CLT interval of the unbiased estimator ``(1/n) sum w_i x_i``;
    ``result.ess`` reports the effective sample size.
    """
    return estimate_p_loss(config, n_runs=n_runs, base_seed=base_seed,
                           confidence=confidence, n_jobs=n_jobs,
                           keep_run_stats=keep_run_stats,
                           telemetry=telemetry, on_error=on_error,
                           tilt=tilt)


# --------------------------------------------------------------------- #
# Fixed-effort multilevel splitting
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _SplitLeg:
    """One splitting-stage leg shipped to a worker (picklable)."""

    config: SystemConfig
    #: level to arm; ``None`` runs the leg to the horizon (final stage).
    level: int | None
    #: fresh-run seed (stage 0 only; clones use ``state`` + clone seed).
    seed: int = 0
    state: SplitState | None = None
    clone_seed: int = 0


def _run_split_leg(leg: _SplitLeg) -> tuple[SplitState | None, object, int]:
    """Execute one leg; returns ``(captured_state, stats, events)``."""
    if leg.state is None:
        sim = ReliabilitySimulation(leg.config, seed=leg.seed)
    else:
        sim = ReliabilitySimulation.from_split_state(
            leg.config, leg.state, leg.clone_seed)
    if leg.level is None:
        stats = sim.run()
        return None, stats, sim.sim.events_fired
    state = sim.run_to_level(leg.level)
    return state, sim.stats, sim.sim.events_fired


@dataclass
class SplitStage:
    """One stage's conditional hit statistics."""

    level: int | None       # level this stage ran toward (None = horizon)
    trials: int
    hits: int

    @property
    def p_hat(self) -> float:
        return self.hits / self.trials if self.trials else 0.0


@dataclass
class SplittingResult:
    """Outcome of a fixed-effort multilevel-splitting estimate."""

    config: SystemConfig
    levels: tuple[int, ...]
    n_runs: int             # effort per stage
    stages: list[SplitStage]
    p_loss: Proportion
    #: final-stage stats aggregate; runs carry the product of earlier
    #: stage probabilities as their likelihood-ratio weight, so
    #: ``aggregate.weighted`` reproduces the splitting estimate.
    aggregate: StatsAggregate
    total_runs: int
    confidence: float

    @property
    def zero_hit(self) -> bool:
        return self.p_loss.zero_hit

    def as_montecarlo(self) -> MonteCarloResult:
        """Adapt to the shape the experiment tables consume.

        ``n_runs``/aggregate describe the *final stage* (the only full
        lifetimes); ``p_loss`` is the splitting estimate.
        """
        agg = self.aggregate
        return MonteCarloResult(
            config=self.config,
            n_runs=self.n_runs,
            losses=agg.losses,
            p_loss=self.p_loss,
            groups_lost_total=agg.groups_lost,
            mean_window=agg.mean_window,
            max_window=agg.window_max,
            disk_failures_total=agg.disk_failures,
            redirections_total=agg.target_redirections,
            replacement_batches_total=agg.replacement_batches,
            blocks_migrated_total=agg.blocks_migrated,
            events_fired_total=agg.events_fired,
            aggregate=agg,
        )


def _splitting_interval(p_hats: list[float], estimate: float, hits: int,
                        n_runs: int, confidence: float) -> Proportion:
    """Delta-method interval for a product of stage proportions.

    Treats stages as independent (the fixed-effort resampling correlation
    is ignored, the standard approximation):
    ``(sigma / p)^2 ~= sum (1 - p_l) / (N p_l)``, applied on the log
    scale so the interval stays positive.
    """
    rel_var = sum((1.0 - p) / (n_runs * p) for p in p_hats if p > 0.0)
    z = math.sqrt(2.0) * _erfinv(confidence)
    sigma = math.sqrt(rel_var)
    lo = estimate * math.exp(-z * sigma)
    hi = estimate * math.exp(z * sigma)
    return Proportion(successes=hits, trials=n_runs, estimate=estimate,
                      lo=min(estimate, max(0.0, lo)),
                      hi=max(estimate, min(1.0, hi)),
                      confidence=confidence)


def splitting_p_loss(config: SystemConfig, n_runs: int = 100,
                     levels: tuple[int, ...] = DEFAULT_LEVELS,
                     base_seed: int = 0, confidence: float = 0.95,
                     n_jobs: int | None = None,
                     runner: SweepRunner | None = None) -> SplittingResult:
    """Fixed-effort multilevel-splitting estimate of P(data loss).

    ``levels`` are strictly increasing concurrent-degraded-group
    thresholds; each of the ``len(levels) + 1`` stages runs ``n_runs``
    legs.  Stage 0 uses the standard Monte-Carlo seed schedule, so
    ``levels=()`` *is* the naive estimator — same seeds, same
    trajectories, same golden pins.  A leg that loses data mid-stage is
    an absorbing hit for every later level.  Legs run through
    :meth:`SweepRunner.map_tasks`, an ordered map, so parallel execution
    folds identically to serial.
    """
    levels = tuple(int(lv) for lv in levels)
    if any(lv < 1 for lv in levels):
        raise ValueError("splitting levels must be >= 1")
    if any(b <= a for a, b in zip(levels, levels[1:])):
        raise ValueError("splitting levels must be strictly increasing")
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    runner = runner or SweepRunner(n_jobs=n_jobs)
    resample_rng = RandomStreams(base_seed).rare("split-resample")
    seeds = seed_schedule(base_seed, n_runs)
    n_stages = len(levels) + 1
    total_runs = n_stages * n_runs
    agg = StatsAggregate()
    stages: list[SplitStage] = []

    # Stage 0: fresh trajectories toward the first level (or the horizon
    # when there are no levels at all — the naive degenerate case).
    first = levels[0] if levels else None
    legs = [_SplitLeg(config, first, seed=s) for s in seeds]
    outcomes = runner.map_tasks(_run_split_leg, legs)

    if not levels:
        for _, stats, events in outcomes:
            agg.fold(stats, events)
        hits = agg.losses
        stages.append(SplitStage(level=None, trials=n_runs, hits=hits))
        p_loss = wilson_interval(hits, n_runs, confidence)
        return SplittingResult(config=config, levels=levels, n_runs=n_runs,
                               stages=stages, p_loss=p_loss, aggregate=agg,
                               total_runs=n_runs, confidence=confidence)

    pool = [state for state, _, _ in outcomes if state is not None]
    stages.append(SplitStage(level=first, trials=n_runs, hits=len(pool)))
    p_hats = [stages[0].p_hat]

    for stage_idx, next_level in enumerate(levels[1:] + (None,), start=1):
        if not pool:
            # A dry stage: the estimate is 0 with the stage-0 Wilson
            # upper bound standing in (p <= P(reach first level)).
            p_loss = replace(wilson_interval(0, n_runs, confidence),
                             successes=0)
            return SplittingResult(config=config, levels=levels,
                                   n_runs=n_runs, stages=stages,
                                   p_loss=p_loss, aggregate=agg,
                                   total_runs=total_runs,
                                   confidence=confidence)
        log_prefix = sum(math.log(p) for p in p_hats)
        choice = resample_rng.integers(0, len(pool), size=n_runs)
        legs_now: list[tuple[int, _SplitLeg]] = []
        absorbed: list[tuple[int, SplitState]] = []
        for j, k in enumerate(choice):
            start = pool[int(k)]
            if start.lost_hit:
                absorbed.append((j, start))
                continue
            clone_seed = stable_hash64(
                base_seed, "rare-split", stage_idx, j) % (2 ** 62)
            legs_now.append((j, _SplitLeg(config, next_level, state=start,
                                          clone_seed=clone_seed)))
        results = runner.map_tasks(_run_split_leg,
                                   [leg for _, leg in legs_now])

        if next_level is None:
            # Final stage: full lifetimes; each run's weight is the
            # product of the earlier stages' conditional probabilities.
            slot_stats: list[tuple[int, object, int]] = []
            for (j, _), (_, stats, events) in zip(legs_now, results):
                slot_stats.append((j, stats, events))
            for j, start in absorbed:
                slot_stats.append((j, replace(start.stats), 0))
            hits = 0
            for j, stats, events in sorted(slot_stats, key=lambda t: t[0]):
                stats.log_weight = log_prefix
                agg.fold(stats, events)
                if stats.any_loss:
                    hits += 1
            stages.append(SplitStage(level=None, trials=n_runs, hits=hits))
            p_hats.append(stages[-1].p_hat)
        else:
            new_pool = [state for state, _, _ in results
                        if state is not None]
            hits = len(new_pool) + len(absorbed)
            new_pool.extend(start for _, start in absorbed)
            stages.append(SplitStage(level=next_level, trials=n_runs,
                                     hits=hits))
            p_hats.append(stages[-1].p_hat)
            pool = new_pool

    estimate = math.prod(p_hats)
    final_hits = stages[-1].hits
    if final_hits == 0 or estimate == 0.0:
        p_loss = _splitting_interval(
            [p for p in p_hats if p > 0.0] or [1.0],
            0.0, 0, n_runs, confidence)
    else:
        p_loss = _splitting_interval(p_hats, estimate, final_hits, n_runs,
                                     confidence)
    return SplittingResult(config=config, levels=levels, n_runs=n_runs,
                           stages=stages, p_loss=p_loss, aggregate=agg,
                           total_runs=total_runs, confidence=confidence)


def sweep_splitting(configs: dict[str, SystemConfig], n_runs: int = 100,
                    levels: tuple[int, ...] = DEFAULT_LEVELS,
                    base_seed: int = 0, confidence: float = 0.95,
                    n_jobs: int | None = None
                    ) -> dict[str, MonteCarloResult]:
    """Splitting estimates for a labelled family of configurations.

    The figure drivers' ``estimator="splitting"`` path: one
    :class:`SweepRunner` (hence one persistent pool) serves every point,
    and each result is adapted to the :class:`MonteCarloResult` shape the
    experiment tables consume.
    """
    runner = SweepRunner(n_jobs=n_jobs)
    out: dict[str, MonteCarloResult] = {}
    for label, cfg in configs.items():
        res = splitting_p_loss(cfg, n_runs=n_runs, levels=levels,
                               base_seed=base_seed, confidence=confidence,
                               runner=runner)
        out[label] = res.as_montecarlo()
    return out
