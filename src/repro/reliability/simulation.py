"""Flat-array reliability simulation (the Monte-Carlo workhorse).

Semantically this engine matches the object-level reference in
:mod:`repro.core` — same failure process, same recovery scheduling, same
loss condition — but group state lives in NumPy arrays and recovery targets
are drawn by rejection sampling instead of walking an explicit candidate
list (the candidate list entries are uniform hashes, so the distributions
are identical; the equivalence is asserted by
``tests/test_engine_equivalence.py``).  This brings a full 2 PB / 6-year
trajectory with hundreds of thousands of groups down to seconds.

Mechanics per run:

1. Size the system from the config; place all groups (vectorized).
2. Sample every drive's failure time from the bathtub hazard.
3. Drive a discrete-event loop of failures, detections, rebuild
   completions, redirections, and replacement batches.
4. A group with more than ``n - m`` concurrently-missing blocks is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Protocol

import numpy as np

from ..availability.luby import check_repair_lane
from ..availability.queue import RepairPriority, RepairPriorityQueue
from ..cluster.topology import Topology, enforce_domain_constraint
from ..cluster.workload import ConstantWorkload, DiurnalWorkload
from ..config import SystemConfig
from ..core.recovery import RecoveryStats
from ..placement.copyset import CopysetPlacement
from ..placement.hashing import hash_unit
from ..placement.random_placement import RandomPlacement
from ..placement.rush import RushPlacement
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..telemetry.handle import Telemetry
from ..telemetry.probes import ProbeSample
from ..units import MINUTE

#: Salt for the deterministic per-disk SMART detection coin.
_SMART_SALT = 0x51AC
#: Salt for the deterministic per-disk SMART false-positive coin.
_SMART_FP_SALT = 0x51AD


@dataclass(eq=False)
class _Job:
    """In-flight rebuild (fast-engine record)."""

    __slots__ = ("g", "rep", "target", "failed_at", "event", "cancelled")

    g: int
    rep: int
    target: int
    failed_at: float
    event: object
    cancelled: bool


class FailureDraw(Protocol):
    """Replacement sampler for disk failure ages (importance sampling).

    Implementations draw from a *proposal* distribution while consuming
    the same uniforms from the caller's stream as the reference model
    would, and accumulate the run's log likelihood-ratio on
    :attr:`log_weight`.  ``horizon_age`` is the drive age at which the
    simulation horizon censors the draw (a failure past it never fires),
    so the ratio can be taken on the censored statistic — much lower
    weight variance than the raw density ratio.
    """

    log_weight: float

    def sample(self, rng: np.random.Generator, size: int,
               current_age: np.ndarray | float = 0.0,
               horizon_age: float = float("inf")) -> np.ndarray:
        """Draw ``size`` failure ages; account their likelihood ratio."""
        ...


@dataclass
class SplitState:
    """A picklable snapshot of a trajectory at a splitting level.

    Captured by :meth:`ReliabilitySimulation.run_to_level` the moment the
    count of concurrently degraded groups first reaches the level (or a
    loss occurs — an absorbing hit for every later level).  The failure
    times of still-alive drives are deliberately *not* part of the state:
    given (deploy time, alive) the failure process is Markov, so a
    restored clone redraws them from the conditional residual-life
    distribution — that redraw is what makes clones diverge.
    """

    seed: int                   # root seed of the ancestor trajectory
    now: float
    lost_hit: bool              # captured at a loss (absorbing success)
    level: int | None           # the level this capture was armed with
    total_disks: int
    alive: np.ndarray
    free_at: np.ndarray
    used_blocks: np.ndarray
    deploy_time: np.ndarray
    group_disks: np.ndarray
    failed_count: np.ndarray
    lost: np.ndarray
    degraded: int
    dynamic: dict[int, list[tuple[int, int]]]
    spare_for: dict[int, int]
    unreplaced: int
    groups_lost_ids: list[int]
    stats: RecoveryStats
    #: in-flight rebuilds: (g, rep, target, failed_at, completion_time)
    jobs: list[tuple[int, int, int, float, float]] = field(
        default_factory=list)
    #: pending detect/redirect/retry events: (due, g, rep, failed_at, origin)
    detects: list[tuple[float, int, int, float, int]] = field(
        default_factory=list)
    #: machine id per disk id (failure-domain topology)
    machine_of: list[int] = field(default_factory=list)
    #: deferred-rebuild queue: (g, rep, attempts)
    deferred: list[tuple[int, int, int]] = field(default_factory=list)
    #: lazy-recovery held rebuilds: (g, rep, failed_at, origin)
    lazy_held: list[tuple[int, int, float, int]] = field(
        default_factory=list)
    #: open per-group unavailability spans: (g, degraded-since)
    degraded_since: list[tuple[int, float]] = field(default_factory=list)


class ReliabilitySimulation:
    """One system lifetime on the flat-array engine."""

    def __init__(self, config: SystemConfig, seed: int = 0,
                 telemetry: Telemetry | None = None,
                 failure_draw: FailureDraw | None = None) -> None:
        self.cfg = config
        self.seed = seed
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        self.stats = RecoveryStats()
        #: Nullable observability handle; the disabled path is one `is not
        #: None` test per instrumentation site (pinned by the overhead
        #: benchmark), and per-disk rebuild-load tracking is only
        #: allocated when enabled.
        self.telemetry = telemetry
        #: Nullable importance-sampling hook: when set, disk failure ages
        #: come from its proposal distribution (same uniforms, same
        #: stream) and the run's likelihood ratio lands on
        #: ``stats.log_weight`` when the run ends.
        self.failure_draw = failure_draw
        #: count of groups currently degraded (>=1 failed block, not
        #: lost) — the multilevel-splitting level variable.
        self._degraded = 0
        #: Lazy-recovery threshold (1 = eager, the bit-identical default).
        self._lazy_r = config.recovery_threshold
        #: held rebuilds (lazy policy): (g, rep) -> (failed_at, origin).
        self._held: dict[tuple[int, int], tuple[float, int]] = {}
        #: open per-group unavailability spans: g -> degraded-since.
        self._degraded_since: dict[int, float] = {}
        # Reject a rate-limited repair lane that cannot keep up with its
        # own failure inflow (the forecast service's 422 rail, applied at
        # engine construction).
        check_repair_lane(config)
        self._split_level: int | None = None
        self._split_state: SplitState | None = None
        self._restored = False

        scheme = config.scheme
        from ..redundancy.composite import is_threshold_scheme
        if not is_threshold_scheme(scheme):
            raise NotImplementedError(
                f"scheme {scheme} has a set-based survival predicate; the "
                f"flat-array engine is threshold-only — use the object "
                f"engine (repro.core.simulate_run)")
        self.n = scheme.n
        self.tol = scheme.tolerance
        self.G = config.n_groups
        self.N0 = config.n_disks
        self.block_bytes = config.block_bytes
        self.capacity_blocks = int(
            config.vintage.capacity_bytes // self.block_bytes)
        self.duration = config.duration
        if config.workload_peak_load > 0:
            self.workload = DiurnalWorkload(
                peak_load=config.workload_peak_load)
        else:
            self.workload = ConstantWorkload(0.0)

        self._build_state()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_state(self) -> None:
        cfg = self.cfg
        self.topology = Topology(cfg.racks, cfg.machines_per_rack, self.N0)
        self._domain_limit = cfg.max_chunks_per_domain
        if cfg.placement == "rush":
            placement = RushPlacement(self.N0, seed=self.streams.seed)
        elif cfg.placement == "copyset":
            placement = CopysetPlacement(self.N0, group_size=self.n,
                                         topology=self.topology,
                                         seed=self.streams.seed)
        else:
            placement = RandomPlacement(self.N0, seed=self.streams.seed)
        self.placement = placement
        matrix = placement.place_many(np.arange(self.G, dtype=np.int64),
                                      self.n)
        matrix = enforce_domain_constraint(matrix, self.topology,
                                           self._domain_limit, placement)
        self.group_disks = matrix.astype(np.int64)
        self.failed_count = np.zeros(self.G, dtype=np.int16)
        self.lost = np.zeros(self.G, dtype=bool)

        # Static disk index: block instance ids (g * n + rep) sorted by disk.
        flat = self.group_disks.ravel()
        order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=self.N0)
        self._idx_sorted = order
        self._idx_start = np.concatenate([[0], np.cumsum(counts)])
        #: disk -> blocks that moved there after t=0 (rebuilds, migration).
        self._dynamic: dict[int, list[tuple[int, int]]] = {}

        # Disk arrays (with headroom for spares / replacement batches).
        cap = self.N0 + max(64, self.N0 // 4)
        self._cap = cap
        self.alive = np.zeros(cap, dtype=bool)
        self.alive[:self.N0] = True
        self.fail_time = np.full(cap, np.inf)
        self.free_at = np.zeros(cap)
        self.used_blocks = np.zeros(cap, dtype=np.int64)
        self.used_blocks[:self.N0] = counts
        self.deploy_time = np.zeros(cap)
        #: completed rebuild writes per disk (imbalance probe); allocated
        #: only when telemetry is enabled so the hot path stays untouched.
        self._rebuild_writes = (np.zeros(cap, dtype=np.int64)
                                if self.telemetry is not None else None)
        self.total_disks = self.N0

        rng = self.streams.get("disk-failures")
        self.fail_time[:self.N0] = self._sample_failure_ages(
            rng, self.N0, horizon_age=self.duration)

        # Bookkeeping for recovery and replacement.
        self._jobs_by_target: dict[int, set[_Job]] = {}
        self._jobs_by_group: dict[int, set[_Job]] = {}
        self._spare_for: dict[int, int] = {}
        self._unreplaced = 0
        self._target_rng = self.streams.get("targets")
        self.groups_lost_ids: list[int] = []
        #: deferred-rebuild queue: (g, rep) -> retry attempts so far.
        self._deferred: dict[tuple[int, int], int] = {}
        #: Whether the most recent admissibility sweep rejected at least
        #: one target solely on the failure-domain cap (so a resulting
        #: deferral is counted as constraint-caused).
        self._domain_blocked = False

    def _sample_failure_ages(self, rng: np.random.Generator, size: int,
                             horizon_age: float) -> np.ndarray:
        """Failure ages for a batch of age-0 drives (hook-aware)."""
        if self.failure_draw is not None:
            return self.failure_draw.sample(rng, size,
                                            horizon_age=horizon_age)
        return self.cfg.vintage.failure_model.sample_failure_age(rng, size)

    # ------------------------------------------------------------------ #
    # Disk-array growth (spares, batches)
    # ------------------------------------------------------------------ #
    def _grow(self, extra: int) -> None:
        need = self.total_disks + extra
        if need <= self._cap:
            return
        new_cap = max(need, self._cap * 2)
        pad = new_cap - self._cap

        def _extend(arr: np.ndarray, fill: float | bool | int) -> np.ndarray:
            return np.concatenate([arr, np.full(pad, fill, dtype=arr.dtype)])

        self.alive = _extend(self.alive, False)
        self.fail_time = _extend(self.fail_time, np.inf)
        self.free_at = _extend(self.free_at, 0.0)
        self.used_blocks = _extend(self.used_blocks, 0)
        self.deploy_time = _extend(self.deploy_time, 0.0)
        if self._rebuild_writes is not None:
            self._rebuild_writes = _extend(self._rebuild_writes, 0)
        self._cap = new_cap

    def _new_disks(self, count: int, now: float,
                   slot: int | None = None) -> np.ndarray:
        """Deploy ``count`` age-0 drives; returns their ids.

        ``slot`` names the failed disk whose bay the newcomers occupy
        (spares inherit its failure domain); batches tile round-robin.
        """
        self._grow(count)
        ids = np.arange(self.total_disks, self.total_disks + count)
        self.total_disks += count
        for _ in range(count):
            self.topology.add_disk(slot_of=slot)
        self.alive[ids] = True
        self.deploy_time[ids] = now
        rng = self.streams.get("disk-failures")
        ages = self._sample_failure_ages(
            rng, count, horizon_age=self.duration - now)
        self.fail_time[ids] = now + ages
        for d, t in zip(ids, self.fail_time[ids]):
            if t <= self.duration:
                self.sim.schedule_at(float(t), self._on_disk_failure, int(d),
                                     name="disk-failure")
        return ids

    # ------------------------------------------------------------------ #
    # Block index
    # ------------------------------------------------------------------ #
    def _blocks_on(self, disk: int) -> Iterator[tuple[int, int]]:
        """Yield (g, rep) of blocks currently on ``disk``."""
        if disk < self.N0:
            lo, hi = self._idx_start[disk], self._idx_start[disk + 1]
            for b in self._idx_sorted[lo:hi]:
                g, rep = divmod(int(b), self.n)
                if self.group_disks[g, rep] == disk:
                    yield g, rep
        for g, rep in self._dynamic.get(disk, ()):
            if self.group_disks[g, rep] == disk:
                yield g, rep

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #
    def _on_disk_failure(self, disk: int) -> None:
        if not self.alive[disk]:
            return
        now = self.sim.now
        self.alive[disk] = False
        self.stats.disk_failures += 1
        tele = self.telemetry
        if tele is not None:
            tele.disk_failures.inc()

        # Redirect in-flight rebuilds targeting the dead disk.
        for job in list(self._jobs_by_target.get(disk, ())):
            self._cancel(job)
            if self.lost[job.g]:
                continue
            self.stats.target_redirections += 1
            if tele is not None:
                tele.target_redirections.inc()
            self.sim.schedule(self.cfg.detection_latency, self._start_rebuild,
                              job.g, job.rep, job.failed_at, job.target,
                              name="redirect")

        # Fail every block on the disk.
        topo = self.topology
        track_domains = topo.racks > 1
        rack = topo.rack_of(disk) if track_domains else -1
        losses: list[tuple[int, int]] = []
        for g, rep in self._blocks_on(disk):
            self.group_disks[g, rep] = -1
            if self.lost[g]:
                continue
            if track_domains and self._live_in_rack(g, rack):
                self.stats.domain_colocated_losses += 1
                if tele is not None:
                    tele.domain_colocated_losses.inc()
            self.failed_count[g] += 1
            if self.failed_count[g] > self.tol:
                self.lost[g] = True
                if self.failed_count[g] > 1:
                    self._degraded -= 1    # was counted while degraded
                self.groups_lost_ids.append(g)
                self.stats.groups_lost += 1
                self.stats.bytes_lost += self.cfg.group_user_bytes
                if self.stats.first_loss_time is None:
                    self.stats.first_loss_time = now
                self._degraded_since.pop(g, None)
                for key in [k for k in self._held if k[0] == g]:
                    del self._held[key]
                if tele is not None:
                    tele.group_lost(g)
                for job in list(self._jobs_by_group.get(g, ())):
                    self._cancel(job)
            else:
                if self.failed_count[g] == 1:
                    self._degraded += 1
                    self._note_degraded(g, now)
                losses.append((g, rep))
                if tele is not None:
                    tele.block_failed(g, rep, now, self.n)

        if self._lazy_r > 1:
            self._lazy_dispatch(losses, now, disk)
        else:
            for g, rep in losses:
                self.sim.schedule(self.cfg.detection_latency,
                                  self._start_rebuild, g, rep, now, disk,
                                  name="detect")
        self._maybe_replace(now)
        # A new batch may open constraint-compliant targets: retries for
        # deferred rebuilds are already armed, nothing extra to do here.
        # Multilevel splitting: capture the trajectory the first time it
        # reaches the armed level (or loses data — an absorbing hit for
        # every later level), *after* this failure's detect events and
        # replacement handling are scheduled, so the snapshot is a
        # consistent instant of the process.
        if self._split_level is not None and self._split_state is None \
                and (self._degraded >= self._split_level
                     or self.stats.groups_lost > 0):
            self._split_state = self._capture_split()
            self.sim.clear()

    # ------------------------------------------------------------------ #
    # Lazy recovery (recovery_threshold > 1) and unavailability spans
    # ------------------------------------------------------------------ #
    def _lazy_dispatch(self, losses: list[tuple[int, int]], now: float,
                       origin: int) -> None:
        """Hold new losses until their group reaches the threshold, then
        release every held rebuild of the group most-at-risk-first.

        Mirrors ``RecoveryManager._dispatch_rebuilds`` on the object
        engine; the fast engine has no transient outages, so the trigger
        count is exactly ``failed_count``.
        """
        fresh: list[int] = []
        seen: set[int] = set()
        for g, rep in losses:
            self._held[(g, rep)] = (now, origin)
            if g not in seen:
                seen.add(g)
                fresh.append(g)
        queue: RepairPriorityQueue = RepairPriorityQueue()
        released: set[int] = set()
        for g in fresh:
            if int(self.failed_count[g]) >= self._lazy_r:
                released.add(g)
                self._collect_held(g, queue)
        n_held = sum(1 for g, _ in losses if g not in released)
        if n_held:
            self.stats.rebuilds_held += n_held
            if self.telemetry is not None:
                self.telemetry.rebuilds_held.inc(n_held)
        self._release_queue(queue, now)

    def _collect_held(self, g: int, queue: RepairPriorityQueue) -> None:
        surviving = max(0, self.tol - int(self.failed_count[g]))
        for key in sorted(k for k in self._held if k[0] == g):
            failed_at, origin = self._held.pop(key)
            queue.push(RepairPriority(surviving, failed_at, g, key[1]),
                       (key[1], failed_at, origin))

    def _release_queue(self, queue: RepairPriorityQueue,
                       now: float) -> None:
        tele = self.telemetry
        for prio, (rep, failed_at, origin) in queue.drain():
            g = prio.grp_id
            if self.lost[g] or self.group_disks[g, rep] != -1:
                continue
            if tele is not None:
                tele.held_released.inc()
            self.sim.schedule(self.cfg.detection_latency,
                              self._start_rebuild, g, rep, failed_at,
                              origin, name="detect")

    def _note_degraded(self, g: int, now: float) -> None:
        if g in self._degraded_since:
            return
        self._degraded_since[g] = now
        if self.telemetry is not None:
            self.telemetry.group_degraded(g, now, self.n)

    def _note_repaired(self, g: int, now: float) -> None:
        since = self._degraded_since.pop(g, None)
        if since is None:
            return
        duration = now - since
        self.stats.unavail_group_seconds += duration
        self.stats.unavail_spans += 1
        self.stats.unavail_max = max(self.stats.unavail_max, duration)
        if self.telemetry is not None:
            self.telemetry.group_restored(g, now)

    def _finalize(self, now: float) -> None:
        """Close spans still open at the horizon, ascending group id —
        the same order the object engine's ``finalize`` uses, keeping
        span totals float-exact across engines."""
        for g in sorted(self._degraded_since):
            self._note_repaired(g, now)

    # ------------------------------------------------------------------ #
    # Rebuild scheduling
    # ------------------------------------------------------------------ #
    def _start_rebuild(self, g: int, rep: int, failed_at: float,
                       origin: int) -> None:
        if self.lost[g] or self.group_disks[g, rep] != -1:
            self._deferred.pop((g, rep), None)
            return
        now = self.sim.now
        self._domain_blocked = False
        if self.cfg.use_farm:
            # Exclude targets of the group's other in-flight rebuilds so
            # two buddies never land on one disk.
            inflight = {j.target for j in self._jobs_by_group.get(g, ())}
            target = self._pick_farm_target(g, now, inflight)
        else:
            target = self._pick_spare_target(g, origin, now)
        if target is None:
            # No admissible target right now (system full, or every
            # candidate vetoed by the domain cap): park for retry with
            # exponential backoff — never drop, never violate.
            if self.telemetry is not None:
                self.telemetry.rebuilds_unplaced.inc()
            self._defer_rebuild(g, rep, failed_at, origin)
            return
        self._deferred.pop((g, rep), None)
        duration = self.workload.time_to_transfer(
            self.block_bytes, self.cfg.recovery_bandwidth, now)
        start = max(now, self.free_at[target])
        completion = start + duration
        self.free_at[target] = completion
        job = _Job(g=g, rep=rep, target=target, failed_at=failed_at,
                   event=None, cancelled=False)
        job.event = self.sim.schedule_at(completion, self._complete, job,
                                         name="rebuild")
        self._jobs_by_target.setdefault(target, set()).add(job)
        self._jobs_by_group.setdefault(g, set()).add(job)
        # Reserve the block on the target immediately so concurrent
        # selections cannot collectively overflow it; _complete keeps the
        # count, cancellation releases it.
        self.used_blocks[target] += 1
        self.stats.rebuilds_started += 1
        if self.telemetry is not None:
            self.telemetry.rebuilds_started.inc()

    def _defer_rebuild(self, g: int, rep: int, failed_at: float,
                       origin: int) -> None:
        """Park a rebuild with no admissible target; retry with backoff.

        Mirrors the object engine's deferred queue: counted once per
        parked block (``rebuilds_deferred``; plus the constraint counter
        when the domain cap caused it), each attempt counted as a retry.
        """
        key = (g, rep)
        attempts = self._deferred.get(key, 0)
        if attempts == 0:
            self.stats.rebuilds_deferred += 1
            if self._domain_blocked:
                self.stats.rebuilds_deferred_constraint += 1
            if self.telemetry is not None:
                self.telemetry.rebuilds_deferred.inc()
                if self._domain_blocked:
                    self.telemetry.rebuilds_deferred_constraint.inc()
        self._deferred[key] = attempts + 1
        # Same backoff law as RecoveryManager._arm_retry: pure doubling
        # with the exponent clamped (~45 days at 16), so thousands of
        # hopelessly parked blocks on a full shrinking system cannot
        # dominate the event loop with periodic retries.
        delay = MINUTE * 2.0 ** min(attempts, 16)
        self.sim.schedule(delay, self._retry_rebuild, g, rep, failed_at,
                          origin, name="rebuild-retry")

    def _retry_rebuild(self, g: int, rep: int, failed_at: float,
                       origin: int) -> None:
        if (g, rep) not in self._deferred:
            return      # resolved by an earlier retry/redirect
        if self.lost[g] or self.group_disks[g, rep] != -1:
            self._deferred.pop((g, rep), None)
            return
        self.stats.retries += 1
        if self.telemetry is not None:
            self.telemetry.rebuild_retries.inc()
        self._start_rebuild(g, rep, failed_at, origin)

    def _admissible(self, d: int, g: int,
                    exclude: set[int] = frozenset()) -> bool:
        if (d in exclude
                or not self.alive[d]
                or self.used_blocks[d] >= self.capacity_blocks
                or (self.group_disks[g] == d).any()):
            return False
        if self._domain_limit is not None \
                and not self._domain_ok(d, g, exclude):
            self._domain_blocked = True
            return False
        return True

    def _domain_ok(self, d: int, g: int, exclude: set[int]) -> bool:
        """Would placing a block of ``g`` on ``d`` stay within the
        per-rack cap?  Counts the group's live blocks plus in-flight
        rebuild targets (``exclude``) already in ``d``'s rack."""
        topo = self.topology
        rack = topo.rack_of(d)
        count = 0
        for dd in self.group_disks[g]:
            dd = int(dd)
            if dd >= 0 and topo.rack_of(dd) == rack:
                count += 1
        for dd in exclude:
            if dd != d and topo.rack_of(int(dd)) == rack:
                count += 1
        return count < self._domain_limit

    def _live_in_rack(self, g: int, rack: int) -> bool:
        """Does group ``g`` still hold a live block in ``rack``?"""
        topo = self.topology
        for dd in self.group_disks[g]:
            dd = int(dd)
            if dd >= 0 and topo.rack_of(dd) == rack:
                return True
        return False

    def _pick_farm_target(self, g: int, now: float,
                          exclude: set[int] = frozenset()) -> int | None:
        """Rejection-sample the candidate list: alive, space, no buddy;
        prefer recovery-idle disks, then relax (paper §2.3)."""
        rng = self._target_rng
        probes = rng.integers(0, self.total_disks, size=24)
        fallback = -1
        for d in probes:
            d = int(d)
            if not self._admissible(d, g, exclude):
                continue
            if self.free_at[d] <= now and not self._smart_suspect(d, now):
                return d
            if fallback < 0:
                fallback = d
        if fallback >= 0:
            return fallback
        for d in range(self.total_disks):       # degenerate small systems
            if self._admissible(d, g, exclude):
                return d
        return None

    def _smart_suspect(self, d: int, now: float) -> bool:
        """SMART veto, mirroring :class:`~repro.disks.smart.SmartMonitor`:
        a drive is flagged spuriously with the false-positive rate (decided
        once per disk), and flagged for real — with the detection
        probability — inside the warning horizon of its actual failure.
        Both coins are deterministic per ``(seed, disk)``."""
        cfg = self.cfg
        if not cfg.use_smart:
            return False
        if hash_unit(self.seed, d, _SMART_FP_SALT) \
                < cfg.smart_false_positive_rate:
            return True
        if self.fail_time[d] - now > cfg.smart_warning_horizon:
            return False
        return bool(hash_unit(self.seed, d, _SMART_SALT)
                    < cfg.smart_detection_probability)

    def _pick_spare_target(self, g: int, origin: int,
                           now: float) -> int | None:
        """Traditional RAID: one dedicated spare per failed disk.

        ``origin`` is the disk whose loss caused this rebuild (or the dead
        spare, for redirections), so all of one disk's reconstruction work
        queues on the same spare.  A second "overflow" spare handles the
        rare case where the spare already holds a buddy of this group.
        """
        spare = self._spare_for.get(origin, -1)
        if spare < 0 or not self.alive[spare] or \
                self.used_blocks[spare] >= self.capacity_blocks:
            # The spare goes into the failed disk's bay, inheriting its
            # failure domain — rebuilding onto it never changes the
            # group's per-rack block counts.
            spare = int(self._new_disks(1, now, slot=origin)[0])
            self._spare_for[origin] = spare
            if self.telemetry is not None:
                self.telemetry.spares_provisioned.inc()
        if (self.group_disks[g] == spare).any():
            over = self._spare_for.get(~origin, -1)
            if over < 0 or not self.alive[over] or \
                    not self._admissible(over, g):
                over = int(self._new_disks(1, now, slot=origin)[0])
                self._spare_for[~origin] = over
                if self.telemetry is not None:
                    self.telemetry.spares_provisioned.inc()
            return over
        return spare

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _cancel(self, job: _Job) -> None:
        job.cancelled = True
        if job.event is not None:
            job.event.cancel()
        if job in self._jobs_by_target.get(job.target, set()):
            self.used_blocks[job.target] -= 1    # release the reservation
        self._jobs_by_target.get(job.target, set()).discard(job)
        self._jobs_by_group.get(job.g, set()).discard(job)

    def _complete(self, job: _Job) -> None:
        if job.cancelled or self.lost[job.g]:
            return
        self._jobs_by_target.get(job.target, set()).discard(job)
        self._jobs_by_group.get(job.g, set()).discard(job)
        if not self.alive[job.target] or \
                (self.group_disks[job.g] == job.target).any():
            # Defensive: redirection/exclusion should have caught this.
            self.used_blocks[job.target] -= 1    # release the reservation
            self.stats.target_redirections += 1
            if self.telemetry is not None:
                self.telemetry.target_redirections.inc()
            self.sim.schedule(self.cfg.detection_latency,
                              self._start_rebuild, job.g, job.rep,
                              job.failed_at, job.target, name="redirect")
            return
        now = self.sim.now
        self.group_disks[job.g, job.rep] = job.target
        self.failed_count[job.g] -= 1
        if self.failed_count[job.g] == 0:
            self._degraded -= 1
        # used_blocks[target] was already incremented at reservation time.
        self._dynamic.setdefault(job.target, []).append((job.g, job.rep))
        self.stats.rebuilds_completed += 1
        window = now - job.failed_at
        self.stats.window_total += window
        self.stats.window_max = max(self.stats.window_max, window)
        if self.telemetry is not None:
            self.telemetry.rebuilds_completed.inc()
            self.telemetry.block_rebuilt(job.g, job.rep, now)
            self._rebuild_writes[job.target] += 1
        if self.failed_count[job.g] == 0:
            self._note_repaired(job.g, now)

    # ------------------------------------------------------------------ #
    # Replacement batches (Figure 7)
    # ------------------------------------------------------------------ #
    def _maybe_replace(self, now: float) -> None:
        self._unreplaced += 1
        theta = self.cfg.replacement_threshold
        if theta is None or self._unreplaced < theta * self.N0:
            return
        count = self._unreplaced
        self._unreplaced = 0
        new_ids = self._new_disks(count, now)
        self.stats.replacement_batches += 1
        if self.telemetry is not None:
            self.telemetry.replacement_batches.inc()
        self._migrate(new_ids, now)

    def _migrate(self, new_ids: np.ndarray, now: float) -> None:
        """Rebalance a fair share of live blocks onto the new batch."""
        rng = self.streams.get("migration")
        live_disks = int(self.alive[:self.total_disks].sum())
        share = len(new_ids) / max(1, live_disks)
        movable = self.group_disks >= 0
        move = movable & (rng.random(self.group_disks.shape) < share)
        if not move.any():
            return
        rows, cols = np.nonzero(move)
        targets = rng.choice(new_ids, size=rows.size)
        # Reject moves that would co-locate two blocks of one group:
        # against the group's current disks ...
        gd = self.group_disks
        ok = np.ones(rows.size, dtype=bool)
        for j in range(self.n):
            ok &= gd[rows, j] != targets
        # ... and against other moves of the same group in this batch.
        key = rows.astype(np.int64) * np.int64(self._cap + 1) + targets
        _, first = np.unique(key, return_index=True)
        dedup = np.zeros(rows.size, dtype=bool)
        dedup[first] = True
        ok &= dedup
        rows, cols, targets = rows[ok], cols[ok], targets[ok]
        if rows.size == 0:
            return
        # Failure-domain cap: reject moves that would push a group's
        # per-rack block count to the limit or beyond.  Counting excludes
        # the moving block's own column; at most one move per (group,
        # target rack) is admitted per batch so concurrent moves cannot
        # collectively overflow a rack (conservative, never violates).
        if self._domain_limit is not None and self.topology.racks > 1:
            k = self._domain_limit
            rack_arr = self.topology.rack_array()
            target_rack = rack_arr[targets]
            cnt = np.zeros(rows.size, dtype=np.int64)
            for j in range(self.n):
                dd = gd[rows, j]
                live = dd >= 0
                same = np.zeros(rows.size, dtype=bool)
                same[live] = rack_arr[dd[live]] == target_rack[live]
                cnt += same & (cols != j)
            rack_key = rows.astype(np.int64) * np.int64(
                self.topology.racks) + target_rack
            _, first_rk = np.unique(rack_key, return_index=True)
            one_per_rack = np.zeros(rows.size, dtype=bool)
            one_per_rack[first_rk] = True
            fit_domain = (cnt < k) & one_per_rack
            rows, cols, targets = (rows[fit_domain], cols[fit_domain],
                                   targets[fit_domain])
            if rows.size == 0:
                return
        # Physical capacity: a batch drive only takes what fits.  Admit
        # moves in row order until each target is full (``used_blocks``
        # already counts in-flight rebuild reservations).
        order = np.argsort(targets, kind="stable")
        sorted_t = targets[order]
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_t)) + 1])
        sizes = np.diff(np.concatenate([starts, [sorted_t.size]]))
        rank_in_target = np.arange(sorted_t.size) - np.repeat(starts, sizes)
        room = self.capacity_blocks - self.used_blocks[sorted_t]
        fits = np.zeros(targets.size, dtype=bool)
        fits[order] = rank_in_target < room
        rows, cols, targets = rows[fits], cols[fits], targets[fits]
        if rows.size == 0:
            return
        old = gd[rows, cols]
        gd[rows, cols] = targets
        # Utilization bookkeeping.
        dec = np.bincount(old, minlength=self._cap)
        inc = np.bincount(targets, minlength=self._cap)
        self.used_blocks -= dec[:self._cap]
        self.used_blocks += inc[:self._cap]
        for r, c, t in zip(rows.tolist(), cols.tolist(), targets.tolist()):
            self._dynamic.setdefault(t, []).append((r, c))
        self.stats.blocks_migrated += rows.size
        if self.telemetry is not None:
            self.telemetry.blocks_migrated.inc(int(rows.size))

    # ------------------------------------------------------------------ #
    # Telemetry probe (read-only; never perturbs the failure process)
    # ------------------------------------------------------------------ #
    def _telemetry_sample(self) -> ProbeSample:
        now = self.sim.now
        total = self.total_disks
        alive = self.alive[:total]
        n_alive = int(alive.sum())
        busy_mask = alive & (self.free_at[:total] > now)
        busy = int(np.count_nonzero(busy_mask))
        cap = self.cfg.recovery_bandwidth
        by_rack: dict[str, float] = {}
        if self.topology.racks > 1 and busy:
            rack_arr = self.topology.rack_array()
            rack_busy = np.bincount(rack_arr[np.flatnonzero(busy_mask)],
                                    minlength=self.topology.racks)
            for r, c in enumerate(rack_busy.tolist()):
                if c:
                    by_rack[str(r)] = c * cap
        degraded = int(np.count_nonzero((self.failed_count > 0)
                                        & ~self.lost))
        if self._rebuild_writes is not None and n_alive > 0:
            loads = self._rebuild_writes[:total][alive]
            load_max = float(loads.max())
            load_mean = float(loads.mean())
        else:
            load_max = load_mean = 0.0
        return ProbeSample(
            bandwidth_in_use_bps=busy * cap,
            disk_bandwidth_max_bps=cap if busy else 0.0,
            bandwidth_cap_bps=cap,
            disks_by_state={"online": n_alive, "failed": total - n_alive},
            degraded_groups=degraded,
            deferred_rebuilds=len(self._deferred),
            rebuild_load_max=load_max,
            rebuild_load_mean=load_mean,
            bandwidth_by_rack=by_rack)

    # ------------------------------------------------------------------ #
    def _schedule_initial_failures(self) -> None:
        for d in range(self.N0):
            t = self.fail_time[d]
            if t <= self.duration:
                self.sim.schedule_at(float(t), self._on_disk_failure, d,
                                     name="disk-failure")

    def run(self) -> RecoveryStats:
        """Execute the full lifetime; returns the statistics."""
        if self.telemetry is not None:
            self.telemetry.attach_probes(self.sim, self._telemetry_sample,
                                         until=self.duration)
        if not self._restored:
            self._schedule_initial_failures()
        self.sim.run(until=self.duration)
        self._finalize(self.duration)
        if self.failure_draw is not None:
            self.stats.log_weight = self.failure_draw.log_weight
        return self.stats

    # ------------------------------------------------------------------ #
    # Multilevel splitting support (see repro.reliability.rare)
    # ------------------------------------------------------------------ #
    def run_to_level(self, level: int) -> SplitState | None:
        """Run until ``level`` concurrently degraded groups (or a loss).

        Returns the captured :class:`SplitState` at the first crossing —
        with ``lost_hit=True`` when the stop was a data loss — or ``None``
        when the horizon was reached first (the run's stats are then
        complete).  Works both on a fresh trajectory and on a clone
        restored with :meth:`from_split_state`.
        """
        if level < 1:
            raise ValueError("splitting level must be >= 1")
        if self.telemetry is not None:
            raise ValueError("splitting stages do not support telemetry; "
                             "probe timers cannot be captured/restored")
        self._split_level = level
        self._split_state = None
        if not self._restored:
            self._schedule_initial_failures()
        self.sim.run(until=self.duration)
        if self._split_state is None:
            self._finalize(self.duration)     # horizon reached: close spans
        return self._split_state

    def _capture_split(self) -> SplitState:
        total = self.total_disks
        jobs: list[tuple[int, int, int, float, float]] = []
        seen: set[int] = set()
        for group_jobs in self._jobs_by_group.values():
            for job in group_jobs:
                if job.cancelled or id(job) in seen:
                    continue
                seen.add(id(job))
                jobs.append((job.g, job.rep, job.target, job.failed_at,
                             float(job.event.time)))
        jobs.sort()
        detects = sorted(
            (float(ev.time), int(ev.args[0]), int(ev.args[1]),
             float(ev.args[2]), int(ev.args[3]))
            for ev in self.sim.pending()
            if ev.name in ("detect", "redirect", "rebuild-retry"))
        return SplitState(
            seed=self.seed,
            now=float(self.sim.now),
            lost_hit=self.stats.groups_lost > 0,
            level=self._split_level,
            total_disks=total,
            alive=self.alive[:total].copy(),
            free_at=self.free_at[:total].copy(),
            used_blocks=self.used_blocks[:total].copy(),
            deploy_time=self.deploy_time[:total].copy(),
            group_disks=self.group_disks.copy(),
            failed_count=self.failed_count.copy(),
            lost=self.lost.copy(),
            degraded=self._degraded,
            dynamic={d: list(v) for d, v in self._dynamic.items()},
            spare_for=dict(self._spare_for),
            unreplaced=self._unreplaced,
            groups_lost_ids=list(self.groups_lost_ids),
            stats=replace(self.stats),
            jobs=jobs,
            detects=detects,
            machine_of=self.topology.assignments(),
            deferred=sorted((g, rep, a)
                            for (g, rep), a in self._deferred.items()),
            lazy_held=sorted((g, rep, fa, o)
                             for (g, rep), (fa, o) in self._held.items()),
            degraded_since=sorted(self._degraded_since.items()))

    @classmethod
    def from_split_state(cls, config: SystemConfig, state: SplitState,
                         clone_seed: int) -> "ReliabilitySimulation":
        """Rebuild a simulation from a captured splitting state.

        Placement, the static block index, and the per-disk SMART coins
        are reconstructed from the ancestor's root seed (they are part of
        the trajectory's identity); all *future* randomness — conditional
        failure-time redraws, target probes, migration — comes from
        ``clone_seed`` streams, with the redraw on the dedicated
        ``rare-clone-failures`` stream.
        """
        sim = cls(config, seed=state.seed)
        sim._apply_split(state, clone_seed)
        return sim

    def _apply_split(self, state: SplitState, clone_seed: int) -> None:
        self.sim = Simulator(start_time=state.now)
        need = state.total_disks
        if need > self._cap:
            self._grow(need - self.total_disks)
        self.total_disks = need
        self.alive[:] = False
        self.alive[:need] = state.alive
        self.fail_time[:] = np.inf
        self.free_at[:] = 0.0
        self.free_at[:need] = state.free_at
        self.used_blocks[:] = 0
        self.used_blocks[:need] = state.used_blocks
        self.deploy_time[:] = 0.0
        self.deploy_time[:need] = state.deploy_time
        self.group_disks = state.group_disks.copy()
        self.failed_count = state.failed_count.copy()
        self.lost = state.lost.copy()
        self._degraded = state.degraded
        self._dynamic = {d: list(v) for d, v in state.dynamic.items()}
        self._spare_for = dict(state.spare_for)
        self._unreplaced = state.unreplaced
        self.groups_lost_ids = list(state.groups_lost_ids)
        self.stats = replace(state.stats)
        if state.machine_of:
            self.topology = Topology.from_assignments(
                self.cfg.racks, self.cfg.machines_per_rack,
                state.machine_of)
        # Attempt counts survive the restore so a re-deferral on the clone
        # neither double-counts rebuilds_deferred nor resets the backoff.
        self._deferred = {(g, rep): a for g, rep, a in state.deferred}
        self._held = {(g, rep): (fa, o)
                      for g, rep, fa, o in state.lazy_held}
        self._degraded_since = dict(state.degraded_since)
        self._domain_blocked = False
        self._restored = True

        # Future randomness comes from the clone's stream set; the root
        # seed (placement, SMART coins) stays the ancestor's.
        self.streams = RandomStreams(clone_seed)
        self._target_rng = self.streams.get("targets")

        # Markov regeneration: redraw every live drive's failure time from
        # the residual-life distribution given its current age.
        idx = np.flatnonzero(self.alive[:need])
        if idx.size:
            ages_now = np.maximum(0.0, state.now - self.deploy_time[idx])
            redraw = self.cfg.vintage.failure_model.sample_failure_age(
                self.streams.rare("clone-failures"), idx.size,
                current_age=ages_now)
            self.fail_time[idx] = self.deploy_time[idx] + redraw
            for d in idx:
                t = self.fail_time[d]
                if t <= self.duration:
                    self.sim.schedule_at(float(t), self._on_disk_failure,
                                         int(d), name="disk-failure")

        # Recreate in-flight rebuilds (reservations are already inside the
        # captured used_blocks) and pending detect/redirect events.
        self._jobs_by_target = {}
        self._jobs_by_group = {}
        for g, rep, target, failed_at, completion in state.jobs:
            job = _Job(g=g, rep=rep, target=target, failed_at=failed_at,
                       event=None, cancelled=False)
            job.event = self.sim.schedule_at(completion, self._complete,
                                             job, name="rebuild")
            self._jobs_by_target.setdefault(target, set()).add(job)
            self._jobs_by_group.setdefault(g, set()).add(job)
        for due, g, rep, failed_at, origin in state.detects:
            self.sim.schedule_at(due, self._start_rebuild, g, rep,
                                 failed_at, origin, name="detect")
