"""Monte-Carlo estimation of the probability of data loss.

The paper's headline metric: simulate N independent system lifetimes and
report the fraction that lose at least one redundancy group, with Wilson
confidence intervals (Figure 7 shows 95% CIs; the other figures use 100
runs per point).

Runs can execute serially (deterministic, benchmark-friendly) or across
processes (``n_jobs``) for the full paper-scale sweeps.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..core.recovery import RecoveryStats
from ..sim.rng import stable_hash64
from .simulation import ReliabilitySimulation
from .stats import Proportion, wilson_interval


@dataclass
class MonteCarloResult:
    """Aggregate over N independent lifetimes of one configuration."""

    config: SystemConfig
    n_runs: int
    losses: int
    p_loss: Proportion
    groups_lost_total: int
    mean_window: float
    max_window: float
    disk_failures_total: int
    redirections_total: int
    run_stats: list[RecoveryStats] = field(repr=False, default_factory=list)

    @property
    def runs_with_redirection(self) -> int:
        return sum(1 for s in self.run_stats if s.target_redirections > 0)


def run_seed(config: SystemConfig, seed: int) -> RecoveryStats:
    """One lifetime on the fast engine (module-level for pickling)."""
    return ReliabilitySimulation(config, seed=seed).run()


def estimate_p_loss(config: SystemConfig, n_runs: int = 100,
                    base_seed: int = 0, confidence: float = 0.95,
                    n_jobs: int | None = None) -> MonteCarloResult:
    """Estimate P(data loss over the configured duration).

    Parameters
    ----------
    n_runs:
        Independent lifetimes to simulate (paper: 100 per point).
    base_seed:
        Run i uses a seed derived from ``(base_seed, i)``; results are
        reproducible and runs are independent.
    n_jobs:
        Process-parallelism; ``None``/1 runs serially, 0 uses all cores.
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    seeds = [stable_hash64(base_seed, "mc-run", i) % (2 ** 62)
             for i in range(n_runs)]
    if n_jobs is None or n_jobs == 1:
        all_stats = [run_seed(config, s) for s in seeds]
    else:
        workers = os.cpu_count() if n_jobs == 0 else n_jobs
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = max(1, n_runs // (4 * workers))
            all_stats = list(pool.map(run_seed, [config] * n_runs, seeds,
                                      chunksize=chunk))

    losses = sum(1 for s in all_stats if s.any_loss)
    completed = sum(s.rebuilds_completed for s in all_stats)
    window_total = sum(s.window_total for s in all_stats)
    return MonteCarloResult(
        config=config,
        n_runs=n_runs,
        losses=losses,
        p_loss=wilson_interval(losses, n_runs, confidence),
        groups_lost_total=sum(s.groups_lost for s in all_stats),
        mean_window=(window_total / completed) if completed else 0.0,
        max_window=max((s.window_max for s in all_stats), default=0.0),
        disk_failures_total=sum(s.disk_failures for s in all_stats),
        redirections_total=sum(s.target_redirections for s in all_stats),
        run_stats=all_stats,
    )


def sweep(configs: dict[str, SystemConfig], n_runs: int = 100,
          base_seed: int = 0, n_jobs: int | None = None
          ) -> dict[str, MonteCarloResult]:
    """Estimate P(loss) for a labelled family of configurations."""
    return {label: estimate_p_loss(cfg, n_runs=n_runs, base_seed=base_seed,
                                   n_jobs=n_jobs)
            for label, cfg in configs.items()}


def loss_probability_series(base: SystemConfig, param: str,
                            values: list, n_runs: int = 100,
                            base_seed: int = 0,
                            n_jobs: int | None = None
                            ) -> list[tuple[object, MonteCarloResult]]:
    """Sweep one config field; returns (value, result) pairs in order."""
    out = []
    for v in values:
        cfg = base.with_(**{param: v})
        out.append((v, estimate_p_loss(cfg, n_runs=n_runs,
                                       base_seed=base_seed, n_jobs=n_jobs)))
    return out
