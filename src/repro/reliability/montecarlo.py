"""Monte-Carlo estimation of the probability of data loss.

The paper's headline metric: simulate N independent system lifetimes and
report the fraction that lose at least one redundancy group, with Wilson
confidence intervals (Figure 7 shows 95% CIs; the other figures use 100
runs per point).

Execution is delegated to :mod:`repro.reliability.runner`: a sweep shares
one persistent process pool across *all* of its points and aggregates
per-run statistics streamingly, so parallel (``n_jobs``) and serial runs
produce bit-identical results and memory stays flat however many runs a
point has.  Pass ``keep_run_stats=True`` to also retain the raw per-run
:class:`~repro.core.recovery.RecoveryStats` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from ..config import SystemConfig
from ..core.recovery import RecoveryStats
from ..telemetry.handle import TelemetryConfig
from .runner import (PointOutcome, PointSpec, StatsAggregate, SweepRunner,
                     default_bench_path)
from .simulation import ReliabilitySimulation
from .stats import (Proportion, empty_proportion, weighted_clt_interval,
                    wilson_interval)


@dataclass
class MonteCarloResult:
    """Aggregate over N independent lifetimes of one configuration."""

    config: SystemConfig
    n_runs: int
    losses: int
    p_loss: Proportion
    groups_lost_total: int
    mean_window: float
    max_window: float
    disk_failures_total: int
    redirections_total: int
    replacement_batches_total: int = 0
    blocks_migrated_total: int = 0
    events_fired_total: int = 0
    #: runs that raised and were dropped (``on_error="skip"``); the
    #: estimate's trial count is ``n_runs - runs_failed``.
    runs_failed: int = 0
    aggregate: StatsAggregate | None = field(repr=False, default=None)
    run_stats: list[RecoveryStats] = field(repr=False, default_factory=list)
    #: merged telemetry snapshot (``None`` unless telemetry was enabled).
    telemetry: dict | None = field(repr=False, default=None)
    #: importance-sampling tilt the runs used (0.0 = naive MC; nonzero
    #: means ``p_loss`` is the weighted CLT interval of the unbiased
    #: likelihood-ratio estimator).
    tilt: float = 0.0
    #: the lifetime engine that produced the runs ("des" or "bulk").
    engine: str = "des"

    @property
    def runs_with_redirection(self) -> int:
        if self.aggregate is not None:
            return self.aggregate.runs_with_redirection
        return sum(1 for s in self.run_stats if s.target_redirections > 0)

    @property
    def ess(self) -> float:
        """Effective sample size of the (possibly weighted) estimate.

        Unweighted runs contribute one effective sample each; weighted
        (tilted) runs contribute through the Kish ratio of their
        likelihood-ratio weights.  A run-stats-only construction (no
        aggregate) recomputes Kish from the per-run log-weights — the
        completed-run count would silently *overstate* a weighted
        estimate's information — and a tilted result carrying neither
        the aggregate nor the run stats has no defensible answer, so it
        refuses rather than guessing.
        """
        if self.aggregate is not None:
            return self.aggregate.weighted.ess
        if self.tilt == 0.0:
            return float(self.n_runs - self.runs_failed)
        if self.run_stats:
            # Kish ESS is scale-invariant, so shift by the max log-weight
            # before exponentiating: immune to under/overflow however
            # extreme the tilt.
            log_w = [s.log_weight for s in self.run_stats]
            peak = max(log_w)
            if peak == float("-inf"):
                return 0.0
            w = [math.exp(v - peak) for v in log_w]
            return math.fsum(w) ** 2 / math.fsum(x * x for x in w)
        raise ValueError(
            "cannot derive the effective sample size of a tilted result "
            "without its aggregate or per-run stats; construct it with "
            "aggregate=... or keep_run_stats=True")

    @property
    def zero_hit(self) -> bool:
        """True when no completed run observed a loss (see Proportion)."""
        return self.p_loss.zero_hit


def run_seed(config: SystemConfig, seed: int) -> RecoveryStats:
    """One lifetime on the fast engine (module-level for pickling)."""
    return ReliabilitySimulation(config, seed=seed).run()


def _result_from(outcome: PointOutcome,
                 confidence: float) -> MonteCarloResult:
    agg = outcome.aggregate
    # The estimate's trials are the runs that actually completed; with
    # on_error="skip" that can legitimately be zero, where the Wilson
    # interval is undefined and the uninformative [0, 1] stands in.
    completed = agg.n_runs
    if completed == 0:
        p_loss = empty_proportion(confidence)
    elif outcome.tilt != 0.0:
        # Importance-sampled runs: the unbiased weighted estimator with
        # its CLT interval (weights folded through WeightedAggregate).
        p_loss = weighted_clt_interval(agg.weighted, confidence)
    else:
        p_loss = wilson_interval(agg.losses, completed, confidence)
    return MonteCarloResult(
        config=outcome.config,
        n_runs=outcome.n_runs,
        losses=agg.losses,
        p_loss=p_loss,
        groups_lost_total=agg.groups_lost,
        mean_window=agg.mean_window,
        max_window=agg.window_max,
        disk_failures_total=agg.disk_failures,
        redirections_total=agg.target_redirections,
        replacement_batches_total=agg.replacement_batches,
        blocks_migrated_total=agg.blocks_migrated,
        events_fired_total=agg.events_fired,
        runs_failed=outcome.runs_failed,
        aggregate=agg,
        run_stats=outcome.run_stats,
        telemetry=outcome.telemetry,
        tilt=outcome.tilt,
        engine=outcome.engine,
    )


def estimate_p_loss(config: SystemConfig, n_runs: int = 100,
                    base_seed: int = 0, confidence: float = 0.95,
                    n_jobs: int | None = None,
                    keep_run_stats: bool = False,
                    telemetry: TelemetryConfig | bool | None = None,
                    telemetry_path: str | Path | None = None,
                    on_error: str = "raise",
                    tilt: float = 0.0,
                    engine: str = "des") -> MonteCarloResult:
    """Estimate P(data loss over the configured duration).

    Parameters
    ----------
    n_runs:
        Independent lifetimes to simulate (paper: 100 per point).
    base_seed:
        Run i uses a seed derived from ``(base_seed, i)``; results are
        reproducible and runs are independent.
    n_jobs:
        Process-parallelism; ``None``/1 runs serially, 0 uses all cores.
        Aggregates are bit-identical to the serial run either way.
    keep_run_stats:
        Retain the per-run :class:`RecoveryStats` list on the result
        (off by default; aggregates are streamed regardless).
    telemetry:
        A :class:`~repro.telemetry.handle.TelemetryConfig` (or ``True``
        for defaults) records in-sim metrics; the merged snapshot lands
        on ``result.telemetry`` and, when ``telemetry_path`` is given,
        in a ``repro.telemetry.v1`` JSONL record.
    on_error:
        ``"skip"`` drops lifetimes that raise (counted on
        ``result.runs_failed``) instead of propagating.
    tilt:
        Importance-sampling hazard log-multiplier: failure rates are
        scaled by ``exp(tilt)`` and every run carries its likelihood
        ratio, making loss more frequent under the proposal without
        biasing the (weighted) estimate.  0.0 is exactly the naive
        estimator (see :mod:`repro.reliability.rare`).
    engine:
        ``"des"`` (default) runs the flat-array discrete-event engine;
        ``"bulk"`` runs the vectorized window-overlap model
        (:mod:`repro.reliability.bulk`) — orders of magnitude faster,
        statistically conformant on its supported configuration space,
        incompatible with ``tilt`` and telemetry.
    """
    runner = SweepRunner(n_jobs=n_jobs, telemetry=telemetry,
                         telemetry_path=telemetry_path)
    [outcome] = runner.run_points(
        [PointSpec("point", config, tilt=tilt, engine=engine)], n_runs,
        base_seed=base_seed, keep_run_stats=keep_run_stats,
        sweep_name="estimate_p_loss", on_error=on_error)
    return _result_from(outcome, confidence)


async def estimate_p_loss_async(config: SystemConfig, n_runs: int = 100,
                                base_seed: int = 0,
                                confidence: float = 0.95,
                                n_jobs: int | None = None,
                                on_error: str = "raise",
                                tilt: float = 0.0,
                                engine: str = "des",
                                runner: SweepRunner | None = None
                                ) -> MonteCarloResult:
    """:func:`estimate_p_loss` without blocking the calling event loop.

    Same seed schedule, same aggregates, bit for bit — the lifetimes run
    on a worker thread via :meth:`SweepRunner.run_points_async` while the
    loop keeps serving (the forecast service's live tier).  Pass
    ``runner`` to reuse a long-lived pool across requests; a fresh
    serial runner is built otherwise.
    """
    runner = runner or SweepRunner(n_jobs=n_jobs)
    [outcome] = await runner.run_points_async(
        [PointSpec("point", config, tilt=tilt, engine=engine)], n_runs,
        base_seed=base_seed, sweep_name="estimate_p_loss",
        on_error=on_error)
    return _result_from(outcome, confidence)


def sweep(configs: dict[str, SystemConfig], n_runs: int = 100,
          base_seed: int = 0, n_jobs: int | None = None,
          confidence: float = 0.95, keep_run_stats: bool = False,
          sweep_name: str = "sweep",
          bench_path: str | Path | None | object = "auto",
          telemetry: TelemetryConfig | bool | None = None,
          telemetry_path: str | Path | None = None,
          on_error: str = "raise",
          tilt: float = 0.0,
          engine: str = "des") -> dict[str, MonteCarloResult]:
    """Estimate P(loss) for a labelled family of configurations.

    All points run on one :class:`SweepRunner` (and hence one persistent
    worker pool) with every ``(point, run)`` lifetime submitted as an
    independent task.  A ``BENCH_sweep.json`` perf record is written per
    invocation unless ``bench_path=None`` (or ``REPRO_BENCH_PATH=""``).
    With ``telemetry`` enabled each result carries the point's merged
    telemetry snapshot; ``telemetry_path`` additionally appends one JSONL
    record per point.
    """
    if bench_path == "auto":
        bench_path = default_bench_path()
    runner = SweepRunner(n_jobs=n_jobs, bench_path=bench_path,
                         telemetry=telemetry,
                         telemetry_path=telemetry_path)
    points = [PointSpec(label, cfg, tilt=tilt, engine=engine)
              for label, cfg in configs.items()]
    outcomes = runner.run_points(points, n_runs, base_seed=base_seed,
                                 keep_run_stats=keep_run_stats,
                                 sweep_name=sweep_name, on_error=on_error)
    return {o.label: _result_from(o, confidence) for o in outcomes}


def loss_probability_series(base: SystemConfig, param: str,
                            values: list, n_runs: int = 100,
                            base_seed: int = 0,
                            n_jobs: int | None = None,
                            keep_run_stats: bool = False,
                            sweep_name: str | None = None,
                            bench_path: str | Path | None | object = "auto",
                            telemetry: TelemetryConfig | bool | None = None,
                            telemetry_path: str | Path | None = None,
                            on_error: str = "raise",
                            tilt: float = 0.0,
                            engine: str = "des"
                            ) -> list[tuple[object, MonteCarloResult]]:
    """Sweep one config field; returns (value, result) pairs in order."""
    labelled = {str(v): base.with_(**{param: v}) for v in values}
    results = sweep(labelled, n_runs=n_runs, base_seed=base_seed,
                    n_jobs=n_jobs, keep_run_stats=keep_run_stats,
                    sweep_name=sweep_name or f"series:{param}",
                    bench_path=bench_path, telemetry=telemetry,
                    telemetry_path=telemetry_path, on_error=on_error,
                    tilt=tilt, engine=engine)
    return [(v, results[str(v)]) for v in values]
