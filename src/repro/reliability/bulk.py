"""Bulk-lifetime Monte-Carlo engine (the third engine: vectorized, event-free).

The two DES engines replay every failure/detect/rebuild event of a
lifetime; a 2 PB trajectory costs hundreds of thousands of Python event
dispatches.  The fleet-scale sweeps the ROADMAP calls for (10^4-point
design grids) need orders of magnitude more naive-MC throughput, and the
paper's loss statistic does not actually require an event loop: a group is
lost iff, at some instant, more than ``n - m`` of its blocks are missing —
a pure *window-overlap* predicate over per-block (failure time, repair
time) intervals.  This engine draws all of those quantities in batches
with :class:`numpy.random.Generator` and resolves the predicate with array
ops:

1. one lifetime per disk from the bathtub hazard (``bulk-failures``);
2. the failed blocks of every group under uniform distinct-``n``
   placement (``bulk-placement``).  For flat placement this is sampled
   *sparsely*: per-group failed-block counts are hypergeometric given the
   failed-disk set and groups are exchangeable, so one multinomial draw
   tallies the groups per count and uniform distinct failed-disk
   assignments fill them in — provably the same distribution as
   materializing all ``G * n`` memberships (the dense sampler,
   :func:`sample_members_flat`, survives as the property-test oracle).
   The rack-capped topology case keeps the dense draw
   (:func:`sample_members_capped`), where the cap skews the counts;
3. a repair window per *failed* block: FARM rebuilds are parallel, so the
   window is ``detection_latency + rebuild_seconds_per_block``;
   traditional rebuilds queue a dead disk's blocks serially on its
   dedicated spare, so the window is
   ``detection_latency + pos * rebuild_seconds_per_block`` with ``pos``
   uniform over the disk's hosted blocks (``bulk-windows``).  A failed
   disk's hosted blocks are exactly its failed blocks, so the queue
   length needs no dense membership either;
4. group loss iff the per-group count of concurrently open
   ``[failure, repair)`` intervals ever exceeds the scheme tolerance
   (:func:`group_loss_times`).

**Model vs DES** (docs/BULK_ENGINE.md derives the error terms): the engine
is *first-generation* — blocks rebuilt onto a new disk are not re-failed
when that disk later dies, spare disks' own failures are not counted, and
FARM target-queue collisions are ignored.  All of these are
O(failure-rate²) corrections, far inside the Monte-Carlo CI at the
paper's rates, and the conformance suite (``tests/test_bulk.py``) asserts
CI overlap against *both* DES engines on the golden FARM and traditional
scenarios.  Features with first-order trajectory effects the predicate
cannot express — replacement batches, SMART steering, diurnal workload,
rush/copyset placement, set-based survival schemes — are rejected at
construction rather than silently approximated.

All randomness comes from the dedicated, golden-pinned ``bulk-*`` family
(:data:`repro.sim.rng.BULK_STREAM_KINDS`), so a bulk run never perturbs a
DES run with the same seed.  Each Monte-Carlo run vectorizes *within* the
lifetime and uses its own seed from the shared schedule, so any batch
split folds to bit-identical aggregates (the runner's ``ExactSum``
invariance covers the weighted sums; per-run fold order covers the rest).
"""

from __future__ import annotations

from math import comb

import numpy as np

from ..cluster.topology import Topology
from ..config import SystemConfig
from ..core.recovery import RecoveryStats
from ..sim.rng import RandomStreams

#: Rejection-sampling ceiling for the distinct-membership redraw.  The
#: per-row collision probability is <= n^2 / (2 N) (and the cramped-pool
#: regimes where rejection would thrash fall back to a key sort), so this
#: only exists to turn a degenerate geometry into a loud error.
_MAX_REDRAWS = 64

#: Engines the sweep runner can dispatch a lifetime to.
ENGINES: tuple[str, ...] = ("des", "bulk")


def bulk_unsupported_reasons(config: SystemConfig) -> tuple[str, ...]:
    """Why the bulk model cannot express ``config`` (empty = supported).

    Everything listed here has a *first-order* effect on the loss
    trajectory that a static window-overlap predicate cannot capture.
    The forecast service's cascade (:mod:`repro.service.cascade`) uses
    this predicate to pick a live engine without try/except routing;
    :func:`validate_bulk_config` keeps the raising form for submission
    paths.
    """
    from ..redundancy.composite import is_threshold_scheme
    problems = []
    if not is_threshold_scheme(config.scheme):
        problems.append("set-based survival schemes (needs is_lost())")
    if config.replacement_threshold is not None:
        problems.append("replacement batches (replacement_threshold)")
    if config.use_smart:
        problems.append("SMART target steering (use_smart)")
    if config.workload_peak_load > 0:
        problems.append("diurnal workload (workload_peak_load > 0)")
    if config.placement != "random":
        problems.append(f"placement={config.placement!r} "
                        f"(only 'random' is expressible)")
    if config.recovery_threshold > 1:
        problems.append("lazy recovery (recovery_threshold > 1): repair "
                        "onset depends on the group's failure history, "
                        "which a static window predicate cannot couple")
    return tuple(problems)


def validate_bulk_config(config: SystemConfig) -> None:
    """Reject configurations the bulk model cannot express.

    Raising form of :func:`bulk_unsupported_reasons`; use the DES
    engines (``engine="des"``) for the listed features.
    """
    problems = bulk_unsupported_reasons(config)
    if problems:
        raise ValueError(
            "the bulk engine models random placement with threshold loss "
            "only; unsupported here: " + "; ".join(problems))


def group_loss_times(fail: np.ndarray, repair: np.ndarray,
                     tolerance: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized group-loss predicate over half-open ``[fail, repair)``.

    ``fail``/``repair`` are ``(..., n)`` arrays of per-block failure and
    repair times, with ``inf`` marking a block that never fails (its
    repair must then be ``inf`` too).  A group is lost iff more than
    ``tolerance`` intervals are ever open at once; the maximum overlap of
    a finite interval family is attained at some interval's left endpoint,
    so it suffices to count, for each block ``j``, how many intervals
    cover ``fail[j]``.  Ties count both sides: a block failing at the
    exact instant another's repair *starts to matter* is concurrent, which
    matches the DES engines (a failure event at time t sees every block
    whose rebuild has not completed strictly before t).

    Returns ``(lost, when)``: a boolean loss mask over the leading axes
    and the loss instant (``inf`` where not lost).
    """
    n = fail.shape[-1]
    lost = np.zeros(fail.shape[:-1], dtype=bool)
    when = np.full(fail.shape[:-1], np.inf)
    for j in range(n):
        tj = fail[..., j:j + 1]
        # A never-failed block has tj = inf: `tj < repair` is then false
        # everywhere, so its count is 0 and it can never trigger a loss.
        concurrent = ((fail <= tj) & (tj < repair)).sum(axis=-1)
        hit = concurrent > tolerance
        lost |= hit
        when = np.where(hit, np.minimum(when, fail[..., j]), when)
    return lost, when


def hypergeom_pmf(n_slots: int, n_failed: int, n_disks: int) -> np.ndarray:
    """PMF of a group's failed-block count under flat distinct placement.

    A group places ``n_slots`` blocks on distinct uniform disks; with
    ``n_failed`` of the ``n_disks`` disks failed, the number landing on
    failed disks is hypergeometric.  Exact integer combinatorics (group
    sizes are tiny), entry ``k`` = P(count == k) for ``k in 0..n_slots``.
    """
    total = comb(n_disks, n_slots)
    return np.array([comb(n_failed, k) * comb(n_disks - n_failed,
                                              n_slots - k) / total
                     for k in range(n_slots + 1)])


def _distinct_rows(m: np.ndarray) -> np.ndarray:
    """Mask of rows whose entries are pairwise distinct.

    Pairwise column compares instead of a row sort: group sizes are tiny
    (n <= a dozen) while the row count is 10^4-10^5, so n(n-1)/2 vector
    compares beat an O(G n log n) sort by ~10x on the hot path.
    """
    n = m.shape[1]
    dup = np.zeros(m.shape[0], dtype=bool)
    for j in range(1, n):
        for k in range(j):
            dup |= m[:, j] == m[:, k]
    return ~dup


def distinct_uniform(rng: np.random.Generator, n_rows: int, k: int,
                     n_vals: int) -> np.ndarray:
    """``(n_rows, k)`` rows of distinct uniform draws from ``0..n_vals-1``.

    Ordered tuples are drawn uniformly (``floor(u * n_vals)`` — exactly
    uniform at these magnitudes and far cheaper than a bounded integer
    draw) and rejected until distinct, which is exactly uniform over
    distinct tuples.  Cramped pools, where rejection would thrash, fall
    back to a per-row uniform ``k``-subset via random sort keys; block
    slots are exchangeable everywhere downstream, so the unordered subset
    has the same law.
    """
    if k > n_vals:
        raise ValueError(f"cannot draw {k} distinct values from {n_vals}")
    if k == 1:
        return (rng.random((n_rows, 1)) * n_vals).astype(np.int64)
    if n_vals <= 4 * k:
        keys = rng.random((n_rows, n_vals))
        return np.argpartition(keys, k - 1, axis=1)[:, :k].astype(np.int64)
    m = (rng.random((n_rows, k)) * n_vals).astype(np.int64)
    bad = np.flatnonzero(~_distinct_rows(m))
    for _ in range(_MAX_REDRAWS):
        if bad.size == 0:
            return m
        m[bad] = (rng.random((bad.size, k)) * n_vals).astype(np.int64)
        bad = bad[~_distinct_rows(m[bad])]
    raise RuntimeError(
        f"distinct-tuple redraw did not converge in {_MAX_REDRAWS} "
        f"rounds (k={k}, pool={n_vals})")


def sample_members_flat(rng: np.random.Generator, n_groups: int, n: int,
                        n_disks: int) -> np.ndarray:
    """Uniform membership: ``n`` distinct disks per group, flat pool.

    The same distribution the DES engines' random placement uses.  The
    engine's flat hot path no longer materializes memberships (it samples
    the failed blocks directly; see :func:`sample_failed_block_sections`);
    this dense sampler remains the distributional *oracle* the
    conformance suite checks that shortcut against.
    """
    if n == 1:
        # int32 ids: disk counts are far below 2^31 and the narrower
        # draw halves the PCG64 output consumed.
        return rng.integers(0, n_disks, size=(n_groups, 1), dtype=np.int32)
    return distinct_uniform(rng, n_groups, n, n_disks).astype(np.int32)


def sample_members_capped(rng: np.random.Generator, n_groups: int, n: int,
                          rack_of_disk: np.ndarray, cap: int) -> np.ndarray:
    """Membership under the per-rack placement cap (topology case).

    Racks are expanded into a pool of ``racks * cap`` slots; each group
    takes a uniform ``n``-subset of slots (so no rack is used more than
    ``cap`` times — the constraint holds by construction, never by
    repair), then a uniform disk within each chosen rack, redrawing
    within-group disk collisions.  ``SystemConfig`` validation guarantees
    the slot pool covers a group and every rack is populated.
    """
    n_racks = int(rack_of_disk.max()) + 1
    sizes = np.bincount(rack_of_disk, minlength=n_racks)
    order = np.argsort(rack_of_disk, kind="stable")
    starts = np.concatenate([[0], np.cumsum(sizes)])
    padded = np.full((n_racks, int(sizes.max())), -1, dtype=np.int64)
    for r in range(n_racks):
        padded[r, :sizes[r]] = order[starts[r]:starts[r + 1]]

    keys = rng.random((n_groups, n_racks * cap))
    slots = np.argpartition(keys, n - 1, axis=1)[:, :n]
    racks = slots // cap
    members = padded[racks, rng.integers(0, sizes[racks], dtype=np.int64)]
    bad = np.flatnonzero(~_distinct_rows(members))
    for _ in range(_MAX_REDRAWS):
        if bad.size == 0:
            return members
        r_bad = racks[bad]
        members[bad] = padded[r_bad,
                              rng.integers(0, sizes[r_bad], dtype=np.int64)]
        bad = bad[~_distinct_rows(members[bad])]
    raise RuntimeError(
        f"capped membership redraw did not converge in {_MAX_REDRAWS} "
        f"rounds (n={n}, racks={n_racks}, cap={cap}); a rack is likely "
        f"too small to host its allowed share of a group")


def sample_failed_block_sections(rng: np.random.Generator, n_groups: int,
                                 n: int, n_failed: int,
                                 n_disks: int) -> list[np.ndarray]:
    """Sparse flat placement: draw only the blocks on failed disks.

    Distributionally identical to drawing all ``n_groups * n`` distinct
    memberships (:func:`sample_members_flat`) and keeping the blocks on
    the ``n_failed`` failed disks:

    * each group's failed-block count is hypergeometric
      (:func:`hypergeom_pmf`), independent across groups, and every
      statistic the engine reports is invariant under permuting group
      ids — so one ``multinomial(n_groups, pmf)`` draw of the per-count
      group *tallies* carries the full information;
    * conditioned on its count ``k``, a group's failed disks are a
      uniform distinct ``k``-tuple of the failed set (exchangeability of
      the uniform distinct-``n`` draw);
    * blocks on *surviving* disks never matter: they cannot open a
      vulnerability window, and a failed disk's rebuild queue is exactly
      its failed blocks.

    Returns one ``(K_k, k)`` matrix per count ``k = 1..n`` (ascending —
    the stream-consumption order the golden pins fix), holding each
    group's failed-disk indices into the caller's failed-id array.
    ``K_k`` is the number of groups with exactly ``k`` failed blocks.
    """
    pmf = hypergeom_pmf(n, n_failed, n_disks)
    tallies = rng.multinomial(n_groups, pmf / pmf.sum())
    return [distinct_uniform(rng, int(tallies[k]), k, n_failed)
            if tallies[k] else np.empty((0, k), dtype=np.int64)
            for k in range(1, n + 1)]


class BulkLifetime:
    """One system lifetime under the bulk window-overlap model."""

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        validate_bulk_config(config)
        self.cfg = config
        self.seed = seed
        self.n = config.scheme.n
        self.tol = config.scheme.tolerance
        self.G = config.n_groups
        self.N = config.n_disks

    # ------------------------------------------------------------------ #
    def _failed_block_sections(self, rng: np.random.Generator,
                               ages: np.ndarray,
                               failed_ids: np.ndarray) -> list[np.ndarray]:
        """Per-count sections of failed blocks, as *disk id* matrices.

        Entry ``k - 1`` is a ``(K_k, k)`` matrix: the disk ids of the
        failed blocks of every group holding exactly ``k`` of them.  Flat
        placement samples the sections sparsely; the rack-capped topology
        case (where the cap skews the count law) draws the dense
        membership and regroups its failed blocks into the same shape.
        """
        cfg = self.cfg
        if cfg.max_chunks_per_domain is None:
            return [failed_ids[m] for m in sample_failed_block_sections(
                rng, self.G, self.n, failed_ids.size, self.N)]
        topology = Topology(cfg.racks, cfg.machines_per_rack, self.N)
        members = sample_members_capped(rng, self.G, self.n,
                                        topology.rack_array(),
                                        cfg.max_chunks_per_domain)
        hit = (ages <= cfg.duration)[members]
        fcount = hit.sum(axis=1)
        sections = []
        for k in range(1, self.n + 1):
            rows_k = np.flatnonzero(fcount == k)
            # Row-major boolean pick: each selected row contributes
            # exactly k entries, in slot order.
            sections.append(
                members[rows_k][hit[rows_k]].reshape(rows_k.size, k)
                .astype(np.int64))
        return sections

    def _traditional_windows(self, rng: np.random.Generator,
                             queue_len: np.ndarray) -> np.ndarray:
        """Windows of vulnerability for *failed* blocks, traditional (s).

        Traditional recovery queues all of a dead disk's blocks serially
        on its dedicated spare: the block in queue position ``pos``
        (1-based, uniform over the dead disk's ``queue_len`` hosted
        blocks) completes ``pos`` block-times after detection — exactly
        the DES engines' serial ``free_at`` schedule.  Positions are
        drawn only for blocks that actually failed, in section order;
        ``pos ~ Uniform{1..k}`` via ``floor(u * k) + 1``, which is
        exactly uniform for the tiny per-disk block counts and ~5x
        faster than a bounded ``integers`` draw with an array ``high``.
        (FARM rebuilds in parallel, so its window is the constant
        ``detection_latency + rebuild_seconds_per_block`` and never
        reaches this method — or the ``bulk-windows`` stream.)
        """
        cfg = self.cfg
        pos = np.floor(rng.random(queue_len.shape) * queue_len) + 1.0
        return cfg.detection_latency + pos * cfg.rebuild_seconds_per_block

    # ------------------------------------------------------------------ #
    def run(self, seed: int | None = None) -> RecoveryStats:
        """Execute the lifetime; returns DES-shaped statistics.

        The hot path is *sparse*: after the batched age draw, only the
        blocks whose disk actually fails in-horizon (a few percent of
        ``G * n``) are ever materialized, already grouped into dense
        per-count sections, so the quadratic overlap predicate runs
        pad-free on exactly the groups that hold more than ``tolerance``
        failed blocks and no G- or N·n-length array is ever built.

        ``seed`` overrides the instance seed, so one validated instance
        can serve a whole batch of runs.
        """
        cfg = self.cfg
        duration = cfg.duration
        latency = cfg.detection_latency
        streams = RandomStreams(self.seed if seed is None else seed)

        ages = cfg.vintage.failure_model.sample_failure_age(
            streams.bulk("failures"), self.N)
        failed_ids = np.flatnonzero(ages <= duration)

        stats = RecoveryStats()
        stats.disk_failures = failed_ids.size
        if failed_ids.size == 0:
            return stats

        sections = self._failed_block_sections(
            streams.bulk("placement"), ages, failed_ids)
        if not any(m.size for m in sections):
            return stats

        if cfg.use_farm:
            # FARM rebuilds a dead disk's blocks in parallel across the
            # fleet: every window is the same constant, kept scalar so it
            # broadcasts for free (and the `bulk-windows` stream is never
            # consumed — it only feeds the traditional queue draw).
            farm_window = latency + cfg.rebuild_seconds_per_block
            windows_flat = None
        else:
            # A failed disk's rebuild queue is its hosted blocks — all
            # of which failed with it, so the failed-block multiset
            # determines the queue length exactly.  One flat draw in
            # section order keeps stream consumption well-defined.
            disk_flat = np.concatenate(
                [m.ravel() for m in sections if m.size])
            queue_flat = np.bincount(disk_flat,
                                     minlength=self.N)[disk_flat]
            windows_flat = self._traditional_windows(
                streams.bulk("windows"), queue_flat)

        n_started = 0
        n_completed = 0
        n_lost = 0
        window_total = 0.0
        window_max = 0.0
        first_loss = np.inf
        offset = 0
        for k, m in enumerate(sections, start=1):
            if m.size == 0:
                continue
            fail_k = ages[m]                              # (K_k, k)
            if windows_flat is None:
                repair_k = fail_k + farm_window
            else:
                win_k = windows_flat[offset:offset + m.size] \
                    .reshape(m.shape)
                offset += m.size
                repair_k = fail_k + win_k

            # Groups with <= tolerance failed blocks can never be lost;
            # a scalar inf loss time broadcasts through the accounting.
            loss_of: np.ndarray | float = np.inf
            if k > self.tol:
                lost_k, when_k = group_loss_times(fail_k, repair_k,
                                                  self.tol)
                if lost_k.any():
                    n_lost += int(np.count_nonzero(lost_k))
                    first_loss = min(first_loss,
                                     float(when_k[lost_k].min()))
                    loss_of = np.where(lost_k, when_k, np.inf)[:, None]

            # Rebuild accounting mirrors the DES semantics: a rebuild
            # starts at the *detect* event (failure + detection latency)
            # and only if the group is not lost by then — the
            # loss-triggering block never starts one; a started rebuild
            # completes unless cancelled by a later loss or censored by
            # the horizon.
            detect_k = fail_k + latency
            started_k = (detect_k <= duration) & (detect_k < loss_of)
            completed_k = (started_k & (repair_k < loss_of)
                           & (repair_k <= duration))
            n_started += int(np.count_nonzero(started_k))
            done = int(np.count_nonzero(completed_k))
            n_completed += done
            if windows_flat is not None and done:
                done_windows = win_k[completed_k]
                window_total += float(done_windows.sum())
                window_max = max(window_max, float(done_windows.max()))

        stats.rebuilds_started = n_started
        stats.rebuilds_completed = n_completed
        if windows_flat is None:
            window_total = farm_window * n_completed
            window_max = farm_window if n_completed else 0.0
        stats.window_total = window_total
        stats.window_max = window_max
        stats.groups_lost = n_lost
        stats.bytes_lost = n_lost * cfg.group_user_bytes
        if n_lost:
            stats.first_loss_time = float(first_loss)
        return stats


def run_bulk_lifetime(config: SystemConfig, seed: int = 0) -> RecoveryStats:
    """One bulk lifetime (module-level for pickling across the pool)."""
    return BulkLifetime(config, seed=seed).run()


def run_bulk_batch(config: SystemConfig,
                   seeds: list[int]) -> list[RecoveryStats]:
    """A batch of independent bulk lifetimes, one per seed, in order.

    One validated :class:`BulkLifetime` serves the whole batch — the
    per-run state is entirely inside :meth:`BulkLifetime.run`, so this
    is identical to constructing a fresh instance per seed, minus the
    repeated validation.
    """
    lifetime = BulkLifetime(config)
    return [lifetime.run(seed=s) for s in seeds]


def bulk_aggregate(config: SystemConfig, n_runs: int, base_seed: int = 0,
                   batch_size: int = 64):
    """Fold ``n_runs`` bulk lifetimes into a :class:`StatsAggregate`.

    Uses the sweep runner's shared seed schedule and folds in run-index
    order, so the result is bit-identical for *any* ``batch_size`` — the
    invariance the conformance suite pins.
    """
    from .runner import StatsAggregate, seed_schedule
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    aggregate = StatsAggregate()
    seeds = seed_schedule(base_seed, n_runs)
    for lo in range(0, n_runs, batch_size):
        for stats in run_bulk_batch(config, seeds[lo:lo + batch_size]):
            aggregate.fold(stats)
    return aggregate
