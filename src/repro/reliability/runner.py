"""Sweep-level parallel execution with a persistent worker pool.

The paper's headline results (Figs. 3-8) are Monte-Carlo sweeps: hundreds
of independent lifetimes per point across many points.  Before this module
existed every point built and tore down its own ``ProcessPoolExecutor``
and the points themselves ran serially, so a 12-point x 100-run sweep
repeatedly barriered on its slowest point.  The :class:`SweepRunner`
instead submits **every** ``(point, run)`` lifetime as an independent task
to one process pool that persists across all points of a sweep (and across
sweeps within the process), so the pool stays saturated end to end.

Three guarantees:

* **Determinism** — run ``i`` of every point uses the seed
  ``stable_hash64(base_seed, "mc-run", i)``, the exact schedule the serial
  path uses, and results are folded into the aggregates *in run-index
  order* (a small reorder buffer holds out-of-order completions), so the
  parallel aggregates are bit-identical to a serial run.
* **Streaming aggregation** — per-run :class:`RecoveryStats` are reduced
  into a :class:`StatsAggregate` (counts, window sum/max, Welford moments)
  as they arrive; a sweep no longer retains one stats object per run
  unless the caller opts in with ``keep_run_stats=True``.
* **Perf record** — each sweep invocation can append a machine-readable
  record (wall time, events fired, runs/s, per-point timings) to the
  bounded ``BENCH_sweep.json`` history, keyed by schema version, run id
  (``REPRO_BENCH_ID`` or the git HEAD), and timestamp, so the benchmark
  trajectory accumulates across invocations instead of being rewritten.

Wall-clock reads here measure *host* performance only — simulated time
never touches them — and go through module-level injectable aliases so
tests can substitute a fake clock.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from ..config import SystemConfig
from ..core.recovery import RecoveryStats
from ..sim.rng import stable_hash64
from ..telemetry.export import append_jsonl, default_telemetry_path
from ..telemetry.handle import Telemetry, TelemetryConfig
from ..telemetry.metrics import empty_snapshot, merge_into
from .simulation import ReliabilitySimulation
from .stats import WeightedAggregate

#: Injectable host-performance clocks (never simulated time; RPR004 keeps
#: direct wall-clock *calls* out of simulation logic, and these aliases
#: are the one sanctioned, swappable measurement point).
_WALL_CLOCK: Callable[[], float] = time.perf_counter
_WALL_TIME: Callable[[], float] = time.time

#: Default location of the perf record; ``REPRO_BENCH_PATH`` overrides it
#: ("" disables writing entirely).
DEFAULT_BENCH_PATH = Path("results") / "BENCH_sweep.json"

#: Schema tag stamped into every perf record.
BENCH_SCHEMA = "repro.bench-sweep.v1"

#: Schema tag of the on-disk container: an append-only, bounded history
#: of per-sweep records, so the perf *trajectory* survives across
#: invocations (and across PRs) instead of each sweep clobbering the
#: last.  A legacy bare-v1 file is absorbed as the first history entry.
BENCH_LOG_SCHEMA = "repro.bench-sweep-log.v1"

#: How many records the on-disk history retains (oldest dropped first).
BENCH_HISTORY_LIMIT = 200

#: Cap on queued-but-unsubmitted task batching: every task is submitted
#: up front (sweeps are at most a few thousand lifetimes), but completions
#: are drained in waves of this size to bound reorder-buffer growth.
_DRAIN_WAVE = 256


def default_bench_path() -> Path | None:
    """Where a sweep's perf record goes (None disables writing)."""
    env = os.environ.get("REPRO_BENCH_PATH")
    if env is not None:
        return Path(env) if env else None
    return DEFAULT_BENCH_PATH


def _git_head_sha(start: Path) -> str | None:
    """Best-effort commit id from ``.git/HEAD`` (file reads only).

    Walks up from ``start`` looking for a ``.git`` directory and resolves
    HEAD through loose or packed refs.  No subprocess, no wall clock —
    it only exists to key perf records, and any failure degrades to
    ``None`` rather than raising.
    """
    try:
        d = Path(start).resolve()
        for _ in range(16):
            head = d / ".git" / "HEAD"
            if head.is_file():
                text = head.read_text(encoding="utf-8").strip()
                if not text.startswith("ref:"):
                    return text[:12] or None
                ref = text.split(None, 1)[1]
                loose = d / ".git" / ref
                if loose.is_file():
                    return loose.read_text(encoding="utf-8").strip()[:12]
                packed = d / ".git" / "packed-refs"
                if packed.is_file():
                    for line in packed.read_text(
                            encoding="utf-8").splitlines():
                        if line.endswith(" " + ref):
                            return line.split()[0][:12]
                return None
            if d.parent == d:
                break
            d = d.parent
    except OSError:
        return None
    return None


def bench_run_id() -> str:
    """Identity key for a perf record: env override, else git SHA.

    ``REPRO_BENCH_ID`` wins (CI can stamp a build id); otherwise the
    repository HEAD commit read from ``.git`` (never a subprocess), and
    ``"unknown"`` when neither is available.
    """
    env = os.environ.get("REPRO_BENCH_ID")
    if env:
        return env
    return _git_head_sha(Path.cwd()) or "unknown"


def bench_timestamp() -> float:
    """Record timestamp: ``REPRO_BENCH_TIMESTAMP`` env, else host time.

    The env override keeps record identity reproducible in pinned
    environments; the fallback is the module's injectable ``_WALL_TIME``
    alias (a sanctioned host clock — simulated time never reaches here).
    """
    env = os.environ.get("REPRO_BENCH_TIMESTAMP")
    if env:
        return float(env)
    return _WALL_TIME()


def read_bench_records(path: str | Path) -> list[dict]:
    """All retained perf records at ``path``, oldest first.

    Understands both the ``repro.bench-sweep-log.v1`` container and a
    legacy bare-v1 single record (returned as a one-entry history).
    Unreadable or malformed files read as empty — the perf log is an
    artifact, never an input a sweep can fail on.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if isinstance(data, dict) and data.get("schema") == BENCH_LOG_SCHEMA:
        records = data.get("records")
        return [r for r in records if isinstance(r, dict)] \
            if isinstance(records, list) else []
    if isinstance(data, dict) and data.get("schema"):
        return [data]
    return []


def latest_bench_record(path: str | Path,
                        sweep: str | None = None) -> dict | None:
    """The newest retained record (optionally for one sweep name)."""
    for record in reversed(read_bench_records(path)):
        if sweep is None or record.get("sweep") == sweep:
            return record
    return None


def append_bench_record(path: str | Path, record: dict,
                        limit: int = BENCH_HISTORY_LIMIT) -> None:
    """Append ``record`` to the bounded on-disk perf history."""
    path = Path(path)
    records = read_bench_records(path)
    records.append(record)
    del records[:-limit]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"schema": BENCH_LOG_SCHEMA, "records": records},
                   indent=2) + "\n",
        encoding="utf-8")


def seed_schedule(base_seed: int, n_runs: int) -> list[int]:
    """The per-run seed schedule shared by serial and parallel paths."""
    return [stable_hash64(base_seed, "mc-run", i) % (2 ** 62)
            for i in range(n_runs)]


def resolve_workers(n_jobs: int | None) -> int:
    """Worker-process count for an ``n_jobs`` request (0 = all cores)."""
    if n_jobs is None or n_jobs == 1:
        return 1
    if n_jobs == 0:
        return os.cpu_count() or 1
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0 or None, got {n_jobs}")
    return n_jobs


# --------------------------------------------------------------------- #
# Streaming aggregation
# --------------------------------------------------------------------- #
@dataclass
class RunningMoments:
    """Welford online mean/variance (numerically stable, single pass)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        """Population variance (0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def std(self) -> float:
        return self.variance ** 0.5


@dataclass
class StatsAggregate:
    """Order-stable streaming reduction of per-run :class:`RecoveryStats`.

    Integer fields are plain sums; float fields are folded in run-index
    order so the result is bit-identical however the runs were executed.
    ``window_moments`` tracks the per-run *mean* window and
    ``failure_moments`` the per-run disk-failure count — the two
    quantities the experiment tables quote spreads for.
    """

    n_runs: int = 0
    losses: int = 0
    groups_lost: int = 0
    bytes_lost: float = 0.0
    disk_failures: int = 0
    rebuilds_started: int = 0
    rebuilds_completed: int = 0
    target_redirections: int = 0
    source_redirections: int = 0
    runs_with_redirection: int = 0
    window_total: float = 0.0
    window_max: float = 0.0
    replacement_batches: int = 0
    blocks_migrated: int = 0
    rebuilds_deferred: int = 0
    retries: int = 0
    latent_errors_discovered: int = 0
    latent_window_total: float = 0.0
    transient_outages: int = 0
    unavail_group_seconds: float = 0.0
    unavail_spans: int = 0
    unavail_max: float = 0.0
    rebuilds_held: int = 0
    events_fired: int = 0
    run_seconds_total: float = 0.0
    window_moments: RunningMoments = field(default_factory=RunningMoments)
    failure_moments: RunningMoments = field(default_factory=RunningMoments)
    #: Weighted loss reduction: every run folds its likelihood-ratio
    #: weight ``exp(stats.log_weight)`` (1.0 for ordinary runs) here, the
    #: one sanctioned weight-combination point (lint rule RPR012).  Exact
    #: sums inside make it chunking-insensitive, so serial and parallel
    #: sweeps agree bit for bit even under importance sampling.
    weighted: WeightedAggregate = field(default_factory=WeightedAggregate)

    def fold(self, stats: RecoveryStats, events_fired: int = 0,
             run_seconds: float = 0.0) -> None:
        """Reduce one lifetime's stats into the aggregate."""
        self.n_runs += 1
        self.losses += 1 if stats.any_loss else 0
        self.weighted.add(math.exp(stats.log_weight), stats.any_loss)
        self.groups_lost += stats.groups_lost
        self.bytes_lost += stats.bytes_lost
        self.disk_failures += stats.disk_failures
        self.rebuilds_started += stats.rebuilds_started
        self.rebuilds_completed += stats.rebuilds_completed
        self.target_redirections += stats.target_redirections
        self.source_redirections += stats.source_redirections
        self.runs_with_redirection += \
            1 if stats.target_redirections > 0 else 0
        self.window_total += stats.window_total
        self.window_max = max(self.window_max, stats.window_max)
        self.replacement_batches += stats.replacement_batches
        self.blocks_migrated += stats.blocks_migrated
        self.rebuilds_deferred += stats.rebuilds_deferred
        self.retries += stats.retries
        self.latent_errors_discovered += stats.latent_errors_discovered
        self.latent_window_total += stats.latent_window_total
        self.transient_outages += stats.transient_outages
        self.unavail_group_seconds += stats.unavail_group_seconds
        self.unavail_spans += stats.unavail_spans
        self.unavail_max = max(self.unavail_max, stats.unavail_max)
        self.rebuilds_held += stats.rebuilds_held
        self.events_fired += events_fired
        self.run_seconds_total += run_seconds
        self.window_moments.add(stats.mean_window)
        self.failure_moments.add(float(stats.disk_failures))

    @property
    def mean_window(self) -> float:
        """Mean window of vulnerability over all completed rebuilds."""
        if self.rebuilds_completed == 0:
            return 0.0
        return self.window_total / self.rebuilds_completed


# --------------------------------------------------------------------- #
# Worker tasks (module-level for pickling)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _LifetimeTask:
    """One (point, run) lifetime shipped to a worker process."""

    point: int
    index: int
    config: SystemConfig
    seed: int
    #: telemetry config; ``None`` runs the lifetime unobserved.
    telemetry: TelemetryConfig | None = None
    #: hazard log-multiplier for importance sampling (0.0 = untilted).
    tilt: float = 0.0
    #: lifetime engine: "des" (flat-array DES) or "bulk" (vectorized
    #: window-overlap model, see :mod:`repro.reliability.bulk`).
    engine: str = "des"


@dataclass(frozen=True)
class _BulkBatchTask:
    """A contiguous chunk of one bulk point's runs, shipped as one task.

    A bulk lifetime costs well under a millisecond, so per-run task
    dispatch would be dominated by pool overhead; chunking amortizes it
    while the per-run seeds keep every lifetime independent of how the
    chunk boundaries fall.
    """

    point: int
    start: int
    config: SystemConfig
    seeds: tuple[int, ...]


#: Runs per bulk pool task (see :class:`_BulkBatchTask`).  At ~0.5 ms a
#: run, 32 runs amortize submission/pickle overhead to noise while still
#: feeding even a wide pool promptly.
_BULK_CHUNK = 32


def _run_bulk_chunk(task: _BulkBatchTask
                    ) -> tuple[int, int, list[RecoveryStats], float]:
    """Execute one bulk chunk; returns ``(point, start, stats, secs)``."""
    t0 = _WALL_CLOCK()
    from .bulk import run_bulk_batch
    stats = run_bulk_batch(task.config, list(task.seeds))
    return (task.point, task.start, stats, _WALL_CLOCK() - t0)


def _run_lifetime(task: _LifetimeTask
                  ) -> tuple[int, int, RecoveryStats, int, float,
                             dict | None]:
    """Execute one lifetime.

    Returns ``(point, index, stats, events, secs, snapshot)`` where
    ``snapshot`` is the run's telemetry snapshot (a plain dict, so it
    pickles across the pool boundary) or ``None`` when unobserved.
    """
    t0 = _WALL_CLOCK()
    if task.engine == "bulk":
        from .bulk import BulkLifetime
        stats = BulkLifetime(task.config, seed=task.seed).run()
        return (task.point, task.index, stats, 0, _WALL_CLOCK() - t0, None)
    telemetry = (Telemetry(task.telemetry)
                 if task.telemetry is not None else None)
    failure_draw = None
    if task.tilt != 0.0:
        from .rare import TiltedFailureDraw
        failure_draw = TiltedFailureDraw(
            task.config.vintage.failure_model, task.tilt)
    sim = ReliabilitySimulation(task.config, seed=task.seed,
                                telemetry=telemetry,
                                failure_draw=failure_draw)
    stats = sim.run()
    snapshot = telemetry.snapshot() if telemetry is not None else None
    return (task.point, task.index, stats, sim.sim.events_fired,
            _WALL_CLOCK() - t0, snapshot)


# --------------------------------------------------------------------- #
# Persistent pool
# --------------------------------------------------------------------- #
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS: int = 0


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide executor, (re)built only when the size changes."""
    global _POOL, _POOL_WORKERS
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if _POOL is None or _POOL_WORKERS != workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear the shared pool down (tests, or explicit cleanup)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


# --------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PointSpec:
    """One labelled sweep point."""

    label: str
    config: SystemConfig
    #: importance-sampling hazard tilt for this point (0.0 = naive MC).
    tilt: float = 0.0
    #: lifetime engine for this point ("des" or "bulk").
    engine: str = "des"


@dataclass
class PointOutcome:
    """Aggregated result of one sweep point."""

    label: str
    config: SystemConfig
    n_runs: int
    aggregate: StatsAggregate
    run_stats: list[RecoveryStats] = field(repr=False, default_factory=list)
    #: Host seconds from sweep start until this point's last run folded.
    completed_at_s: float = 0.0
    #: Runs that raised and were dropped (``on_error="skip"``).
    runs_failed: int = 0
    #: Merged telemetry snapshot over the point's completed runs, folded
    #: in run-index order (``None`` when telemetry is disabled).
    telemetry: dict | None = field(repr=False, default=None)
    #: the tilt the point ran under (0.0 = naive MC).
    tilt: float = 0.0
    #: the lifetime engine the point ran on ("des" or "bulk").
    engine: str = "des"


class SweepRunner:
    """Executes labelled sweep points over a persistent process pool.

    Parameters
    ----------
    n_jobs:
        ``None``/1 runs serially in-process; 0 uses all cores; ``k`` uses
        ``k`` worker processes.  Aggregates are bit-identical either way.
    bench_path:
        Where to write the ``BENCH_sweep.json`` perf record after each
        :meth:`run_points` invocation; ``None`` disables the record.
    telemetry:
        A :class:`~repro.telemetry.handle.TelemetryConfig` (or ``True``
        for the defaults) enables in-sim telemetry on every lifetime;
        per-point snapshots are merged in run-index order onto
        :attr:`PointOutcome.telemetry`, bit-identical however many
        workers executed the runs.
    telemetry_path:
        Append one ``repro.telemetry.v1`` JSONL record per point after
        each :meth:`run_points` invocation (implies ``telemetry=True``
        when no config was given).  Defaults to ``REPRO_TELEMETRY_PATH``
        when that is set (the CLI's ``--telemetry`` flag); pass ``""``
        to disable explicitly.
    """

    def __init__(self, n_jobs: int | None = None,
                 bench_path: str | Path | None = None,
                 telemetry: TelemetryConfig | bool | None = None,
                 telemetry_path: str | Path | None = None) -> None:
        self.n_jobs = n_jobs
        self.workers = resolve_workers(n_jobs)
        self.bench_path = Path(bench_path) if bench_path else None
        if telemetry_path is None:
            telemetry_path = default_telemetry_path()
        self.telemetry_path = Path(telemetry_path) if telemetry_path \
            else None
        if telemetry is True or (telemetry is None
                                 and self.telemetry_path is not None):
            telemetry = TelemetryConfig()
        self.telemetry: TelemetryConfig | None = telemetry or None
        self.last_record: dict[str, Any] | None = None
        # Serializes run_points invocations arriving from different
        # threads (run_points_async): the reorder buffers are per-call,
        # but last_record and the bench/telemetry writers are not.
        self._run_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def run_points(self, points: Sequence[PointSpec], n_runs: int,
                   base_seed: int = 0, keep_run_stats: bool = False,
                   sweep_name: str = "sweep",
                   on_error: str = "raise") -> list[PointOutcome]:
        """Run ``n_runs`` lifetimes for every point; aggregate streamingly.

        Every point uses the same ``base_seed`` (hence the same per-run
        seed schedule), exactly like back-to-back ``estimate_p_loss``
        calls; results come back in point order.

        ``on_error="skip"`` drops a lifetime that raises (counted on
        :attr:`PointOutcome.runs_failed`) instead of propagating; the
        surviving runs still fold in run-index order, so the aggregate
        stays order-stable.  For a parallel bulk point the drop is
        chunk-granular: every run of the chunk containing the failing
        lifetime is skipped.
        """
        if n_runs <= 0:
            raise ValueError("n_runs must be positive")
        if not points:
            raise ValueError("at least one sweep point is required")
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', "
                             f"got {on_error!r}")
        for p in points:
            if p.engine not in ("des", "bulk"):
                raise ValueError(f"unknown engine {p.engine!r} for point "
                                 f"{p.label!r}; expected 'des' or 'bulk'")
            if p.engine == "bulk" and p.tilt != 0.0:
                raise ValueError(
                    f"point {p.label!r}: the bulk engine has no "
                    f"importance-sampling path (tilt={p.tilt}); use "
                    f"engine='des' for tilted runs")
            if p.engine == "bulk" and self.telemetry is not None:
                raise ValueError(
                    f"point {p.label!r}: the bulk engine is event-free "
                    f"and cannot drive telemetry probes; disable "
                    f"telemetry or use engine='des'")
        t0 = _WALL_CLOCK()
        seeds = seed_schedule(base_seed, n_runs)
        outcomes = [PointOutcome(label=p.label, config=p.config,
                                 n_runs=n_runs, aggregate=StatsAggregate(),
                                 tilt=p.tilt, engine=p.engine)
                    for p in points]
        if self.workers <= 1:
            self._run_serial(points, seeds, outcomes, keep_run_stats, t0,
                             on_error)
        else:
            self._run_parallel(points, seeds, outcomes, keep_run_stats, t0,
                               on_error)
        wall = _WALL_CLOCK() - t0
        self.last_record = self._bench_record(sweep_name, outcomes, n_runs,
                                              wall)
        self._write_bench(self.last_record)
        self._write_telemetry(sweep_name, outcomes)
        return outcomes

    async def run_points_async(self, points: Sequence[PointSpec],
                               n_runs: int, base_seed: int = 0,
                               keep_run_stats: bool = False,
                               sweep_name: str = "sweep",
                               on_error: str = "raise"
                               ) -> list[PointOutcome]:
        """:meth:`run_points` off the event loop.

        The forecast service (:mod:`repro.service`) answers HTTP requests
        from an asyncio loop but live estimation is CPU-bound blocking
        work; this awaitable runs it on a worker thread (the process pool
        underneath is thread-safe) so the loop keeps serving while
        lifetimes execute.  Concurrent invocations on one runner are
        serialized by an internal lock — the math is per-call, but the
        bench/telemetry side effects are not — and the determinism
        guarantee is untouched: same points, seed, and schedule as the
        synchronous path, bit for bit.
        """
        def _locked() -> list[PointOutcome]:
            with self._run_lock:
                return self.run_points(
                    points, n_runs, base_seed=base_seed,
                    keep_run_stats=keep_run_stats, sweep_name=sweep_name,
                    on_error=on_error)
        return await asyncio.to_thread(_locked)

    def map_tasks(self, fn: Callable[[Any], Any],
                  items: Iterable[Any]) -> list[Any]:
        """Ordered map over picklable items, on the shared pool when
        parallel (used by scenario-style experiment drivers)."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(shared_pool(self.workers).map(fn, items))

    # ------------------------------------------------------------------ #
    def _fold(self, outcome: PointOutcome, payload: tuple,
              keep_run_stats: bool) -> None:
        """Reduce one completed lifetime into its point's outcome."""
        _, _, stats, events, secs, snapshot = payload
        outcome.aggregate.fold(stats, events, secs)
        if keep_run_stats:
            outcome.run_stats.append(stats)
        if snapshot is not None:
            if outcome.telemetry is None:
                outcome.telemetry = empty_snapshot()
            merge_into(outcome.telemetry, snapshot)

    def _run_serial(self, points: Sequence[PointSpec], seeds: list[int],
                    outcomes: list[PointOutcome], keep_run_stats: bool,
                    t0: float, on_error: str) -> None:
        for p, point in enumerate(points):
            if point.engine == "bulk":
                # Same chunking as the parallel path: per-run dispatch
                # overhead is a measurable fraction of a sub-millisecond
                # bulk lifetime, and chunk boundaries cannot change the
                # fold (per-run seeds + run-index order).
                for lo in range(0, len(seeds), _BULK_CHUNK):
                    chunk = tuple(seeds[lo:lo + _BULK_CHUNK])
                    try:
                        _, start, chunk_stats, secs = _run_bulk_chunk(
                            _BulkBatchTask(p, lo, point.config, chunk))
                    except Exception:
                        if on_error != "skip":
                            raise
                        outcomes[p].runs_failed += len(chunk)
                        continue
                    per_run = secs / len(chunk_stats)
                    for k, stats in enumerate(chunk_stats):
                        self._fold(outcomes[p],
                                   (p, start + k, stats, 0, per_run, None),
                                   keep_run_stats)
                outcomes[p].completed_at_s = _WALL_CLOCK() - t0
                continue
            for i, seed in enumerate(seeds):
                try:
                    payload = _run_lifetime(
                        _LifetimeTask(p, i, point.config, seed,
                                      self.telemetry, point.tilt,
                                      point.engine))
                except Exception:
                    if on_error != "skip":
                        raise
                    outcomes[p].runs_failed += 1
                    continue
                self._fold(outcomes[p], payload, keep_run_stats)
            outcomes[p].completed_at_s = _WALL_CLOCK() - t0

    def _run_parallel(self, points: Sequence[PointSpec], seeds: list[int],
                      outcomes: list[PointOutcome], keep_run_stats: bool,
                      t0: float, on_error: str) -> None:
        pool = shared_pool(self.workers)
        # DES points submit one task per run; bulk points submit chunks
        # of _BULK_CHUNK runs (sub-millisecond lifetimes would otherwise
        # drown in task overhead).  The futures value is ``(point, first
        # run index, chunk length)`` with length 0 marking a single task.
        futures: dict[Future, tuple[int, int, int]] = {}
        for p, point in enumerate(points):
            if point.engine == "bulk":
                for lo in range(0, len(seeds), _BULK_CHUNK):
                    chunk = tuple(seeds[lo:lo + _BULK_CHUNK])
                    fut = pool.submit(
                        _run_bulk_chunk,
                        _BulkBatchTask(p, lo, point.config, chunk))
                    futures[fut] = (p, lo, len(chunk))
            else:
                for i, seed in enumerate(seeds):
                    fut = pool.submit(
                        _run_lifetime,
                        _LifetimeTask(p, i, point.config, seed,
                                      self.telemetry, point.tilt,
                                      point.engine))
                    futures[fut] = (p, i, 0)
        # Per-point reorder buffers: fold strictly in run-index order so
        # float reductions (and telemetry merges) are bit-identical to
        # the serial path.  ``None`` marks a run skipped after an error
        # (for a bulk chunk, every run the chunk covered).
        buffers: list[dict[int, tuple | None]] = [{} for _ in points]
        next_index = [0] * len(points)
        n_runs = len(seeds)
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for fut in done:
                p, i, count = futures.pop(fut)
                try:
                    result = fut.result()
                except Exception:
                    if on_error != "skip":
                        for pending in futures:
                            pending.cancel()
                        raise
                    for k in range(max(count, 1)):
                        buffers[p][i + k] = None
                    continue
                if count:
                    _, start, chunk_stats, secs = result
                    per_run = secs / len(chunk_stats)
                    for k, stats in enumerate(chunk_stats):
                        buffers[p][start + k] = (p, start + k, stats, 0,
                                                 per_run, None)
                else:
                    buffers[p][i] = result
            for p, buffer in enumerate(buffers):
                while next_index[p] in buffer:
                    payload = buffer.pop(next_index[p])
                    if payload is None:
                        outcomes[p].runs_failed += 1
                    else:
                        self._fold(outcomes[p], payload, keep_run_stats)
                    next_index[p] += 1
                    if next_index[p] == n_runs:
                        outcomes[p].completed_at_s = _WALL_CLOCK() - t0

    # ------------------------------------------------------------------ #
    def _bench_record(self, sweep_name: str,
                      outcomes: list[PointOutcome], n_runs: int,
                      wall: float) -> dict[str, Any]:
        total_runs = n_runs * len(outcomes)
        events = sum(o.aggregate.events_fired for o in outcomes)
        return {
            "schema": BENCH_SCHEMA,
            "sweep": sweep_name,
            "timestamp": bench_timestamp(),
            "run_id": bench_run_id(),
            "engines": sorted({o.engine for o in outcomes}),
            "n_jobs": self.n_jobs,
            "workers": self.workers,
            "n_points": len(outcomes),
            "n_runs_per_point": n_runs,
            "total_runs": total_runs,
            "wall_time_s": wall,
            "events_fired": events,
            "runs_per_s": total_runs / wall if wall > 0 else 0.0,
            "events_per_s": events / wall if wall > 0 else 0.0,
            "points": [
                {
                    "label": o.label,
                    "n_runs": o.n_runs,
                    "runs_failed": o.runs_failed,
                    "tilt": o.tilt,
                    "engine": o.engine,
                    "ess": o.aggregate.weighted.ess,
                    "losses": o.aggregate.losses,
                    "events_fired": o.aggregate.events_fired,
                    "run_seconds_total": o.aggregate.run_seconds_total,
                    "completed_at_s": o.completed_at_s,
                }
                for o in outcomes
            ],
        }

    def _write_bench(self, record: dict[str, Any]) -> None:
        if self.bench_path is None:
            return
        append_bench_record(self.bench_path, record)

    def _write_telemetry(self, sweep_name: str,
                         outcomes: list[PointOutcome]) -> None:
        if self.telemetry_path is None:
            return
        for o in outcomes:
            if o.telemetry is None:
                continue
            append_jsonl(self.telemetry_path, o.telemetry,
                         sweep=sweep_name, point=o.label,
                         n_runs=o.aggregate.n_runs,
                         runs_failed=o.runs_failed)
