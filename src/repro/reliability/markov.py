"""Continuous-time Markov chain for a single redundancy group.

Under constant per-disk failure rate λ and per-block repair rate μ, one
(m, n) group is a birth–death chain on the number of missing blocks
``i = 0 .. tol+1``, with the last state absorbing (data loss):

* failure transitions: ``i -> i+1`` at rate ``(n - i) λ``;
* repair transitions: ``i -> i-1`` at rate ``i μ`` when repairs run in
  parallel (FARM) or ``μ`` when they serialize at one target (traditional).

This is the classical disk-array reliability chain (Schwarz & Burkhard;
Chen et al.) and serves as an exact oracle for the simulators under
constant rates: ``tests/test_markov_vs_simulation.py`` pins them together.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from ..config import SystemConfig
from ..redundancy.schemes import RedundancyScheme


def group_generator(scheme: RedundancyScheme, fail_rate: float,
                    repair_rate: float, parallel_repair: bool = True
                    ) -> np.ndarray:
    """Generator matrix Q of the single-group chain (absorbing last state)."""
    if fail_rate < 0 or repair_rate < 0:
        raise ValueError("rates must be non-negative")
    tol = scheme.tolerance
    size = tol + 2
    q = np.zeros((size, size))
    for i in range(size - 1):
        up = (scheme.n - i) * fail_rate
        q[i, i + 1] = up
        if i > 0:
            down = (i * repair_rate) if parallel_repair else repair_rate
            q[i, i - 1] = down
        q[i, i] = -q[i].sum()
    return q


def p_group_loss(scheme: RedundancyScheme, fail_rate: float,
                 repair_rate: float, horizon: float,
                 parallel_repair: bool = True) -> float:
    """P(one group reaches the absorbing loss state within ``horizon``)."""
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    q = group_generator(scheme, fail_rate, repair_rate, parallel_repair)
    p0 = np.zeros(q.shape[0])
    p0[0] = 1.0
    pt = p0 @ expm(q * horizon)
    return float(pt[-1])


def lazy_group_generator(scheme: RedundancyScheme, fail_rate: float,
                         repair_rate: float, threshold: int,
                         parallel_repair: bool = True) -> np.ndarray:
    """Generator of the *lazy-recovery* chain (repairs gated below r).

    Identical to :func:`group_generator` except that repair transitions
    from states ``0 < i < threshold`` are removed: a lazy policy with
    ``recovery_threshold = r`` starts no rebuild until the group has at
    least ``r`` missing blocks.  This slightly over-penalizes the policy
    (the real engines keep repairing a group back to health once the
    trigger has fired, while the chain re-gates whenever ``i`` drops
    below ``r``), making it a conservative upper bound on the simulated
    lazy p_loss — the bracket the conformance tests assert.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if threshold > max(1, scheme.tolerance):
        raise ValueError(f"threshold {threshold} exceeds the scheme's "
                         f"fault tolerance ({scheme.tolerance})")
    q = group_generator(scheme, fail_rate, repair_rate, parallel_repair)
    for i in range(1, min(threshold, q.shape[0] - 1)):
        q[i, i] += q[i, i - 1]
        q[i, i - 1] = 0.0
    return q


def p_group_loss_lazy(scheme: RedundancyScheme, fail_rate: float,
                      repair_rate: float, horizon: float, threshold: int,
                      parallel_repair: bool = True) -> float:
    """P(loss within ``horizon``) for one group under lazy recovery."""
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    q = lazy_group_generator(scheme, fail_rate, repair_rate, threshold,
                             parallel_repair)
    p0 = np.zeros(q.shape[0])
    p0[0] = 1.0
    pt = p0 @ expm(q * horizon)
    return float(pt[-1])


def p_system_loss(scheme: RedundancyScheme, n_groups: int, fail_rate: float,
                  repair_rate: float, horizon: float,
                  parallel_repair: bool = True) -> float:
    """P(any of ``n_groups`` independent groups is lost within horizon).

    Group independence is the idealization the paper's earlier study [37]
    uses; it is slightly pessimistic for declustered systems (failures are
    shared across groups) but accurate at first order.
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    p1 = p_group_loss(scheme, fail_rate, repair_rate, horizon,
                      parallel_repair)
    return float(1.0 - (1.0 - p1) ** n_groups)


def mttdl(scheme: RedundancyScheme, fail_rate: float,
          repair_rate: float, parallel_repair: bool = True) -> float:
    """Mean time to data loss of one group (expected absorption time).

    Solves ``Q_t m = -1`` on the transient states, the standard absorbing-
    chain identity.
    """
    q = group_generator(scheme, fail_rate, repair_rate, parallel_repair)
    qt = q[:-1, :-1]
    m = np.linalg.solve(qt, -np.ones(qt.shape[0]))
    return float(m[0])


# --------------------------------------------------------------------- #
# Validity envelope and config-mapped forms
# --------------------------------------------------------------------- #
def unsupported_reasons(cfg: SystemConfig) -> tuple[str, ...]:
    """Why the chain is *not* an exact model of ``cfg`` (empty = valid).

    The chain is exact only under constant rates and independent groups;
    the forecast service (:mod:`repro.service.cascade`) consults this
    predicate before trusting the closed form.  Shared structural
    restrictions (topology, placement, SMART, replacement, workload,
    scheme family) are delegated to the window model's envelope — both
    closed forms break on exactly those features — and the constant-rate
    requirement is the chain's own.
    """
    from . import analytic
    reasons = [r for r in analytic.unsupported_reasons(cfg)
               if "hazard-window" not in r]
    fm = cfg.vintage.failure_model
    if len(fm.periods) != 1:
        reasons.append(f"bathtub hazard with {len(fm.periods)} rate "
                       f"periods (the chain needs one constant rate)")
    return tuple(reasons)


def supports(cfg: SystemConfig) -> bool:
    """True when the chain is exact for ``cfg`` (constant-rate, flat)."""
    return not unsupported_reasons(cfg)


def _config_rates(cfg: SystemConfig) -> tuple[float, float]:
    """(fail_rate, repair_rate) per block implied by a constant-rate cfg."""
    fail_rate = float(cfg.vintage.failure_model.hazard(0.0))
    repair_rate = 1.0 / (cfg.detection_latency
                         + cfg.rebuild_seconds_per_block)
    return fail_rate, repair_rate


def p_loss_config(cfg: SystemConfig) -> float:
    """P(system data loss over the configured duration), chain-exact.

    Maps a (constant-rate) :class:`SystemConfig` onto the chain: per-block
    failure rate from the flat hazard, repair rate from detection plus one
    block rebuild, FARM as parallel repair, independence across the
    config's groups.  Callers should gate on :func:`supports`.
    """
    fail_rate, repair_rate = _config_rates(cfg)
    return p_system_loss(cfg.scheme, cfg.n_groups, fail_rate, repair_rate,
                         cfg.duration, parallel_repair=cfg.use_farm)


def mttdl_config(cfg: SystemConfig) -> float:
    """System MTTDL (seconds) for a constant-rate config.

    One group's expected absorption time divided by the group count —
    exact for independent exponential competing groups at first order.
    """
    fail_rate, repair_rate = _config_rates(cfg)
    return mttdl(cfg.scheme, fail_rate, repair_rate,
                 parallel_repair=cfg.use_farm) / cfg.n_groups
