"""Continuous-time Markov chain for a single redundancy group.

Under constant per-disk failure rate λ and per-block repair rate μ, one
(m, n) group is a birth–death chain on the number of missing blocks
``i = 0 .. tol+1``, with the last state absorbing (data loss):

* failure transitions: ``i -> i+1`` at rate ``(n - i) λ``;
* repair transitions: ``i -> i-1`` at rate ``i μ`` when repairs run in
  parallel (FARM) or ``μ`` when they serialize at one target (traditional).

This is the classical disk-array reliability chain (Schwarz & Burkhard;
Chen et al.) and serves as an exact oracle for the simulators under
constant rates: ``tests/test_markov_vs_simulation.py`` pins them together.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from ..redundancy.schemes import RedundancyScheme


def group_generator(scheme: RedundancyScheme, fail_rate: float,
                    repair_rate: float, parallel_repair: bool = True
                    ) -> np.ndarray:
    """Generator matrix Q of the single-group chain (absorbing last state)."""
    if fail_rate < 0 or repair_rate < 0:
        raise ValueError("rates must be non-negative")
    tol = scheme.tolerance
    size = tol + 2
    q = np.zeros((size, size))
    for i in range(size - 1):
        up = (scheme.n - i) * fail_rate
        q[i, i + 1] = up
        if i > 0:
            down = (i * repair_rate) if parallel_repair else repair_rate
            q[i, i - 1] = down
        q[i, i] = -q[i].sum()
    return q


def p_group_loss(scheme: RedundancyScheme, fail_rate: float,
                 repair_rate: float, horizon: float,
                 parallel_repair: bool = True) -> float:
    """P(one group reaches the absorbing loss state within ``horizon``)."""
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    q = group_generator(scheme, fail_rate, repair_rate, parallel_repair)
    p0 = np.zeros(q.shape[0])
    p0[0] = 1.0
    pt = p0 @ expm(q * horizon)
    return float(pt[-1])


def p_system_loss(scheme: RedundancyScheme, n_groups: int, fail_rate: float,
                  repair_rate: float, horizon: float,
                  parallel_repair: bool = True) -> float:
    """P(any of ``n_groups`` independent groups is lost within horizon).

    Group independence is the idealization the paper's earlier study [37]
    uses; it is slightly pessimistic for declustered systems (failures are
    shared across groups) but accurate at first order.
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    p1 = p_group_loss(scheme, fail_rate, repair_rate, horizon,
                      parallel_repair)
    return float(1.0 - (1.0 - p1) ** n_groups)


def mttdl(scheme: RedundancyScheme, fail_rate: float,
          repair_rate: float, parallel_repair: bool = True) -> float:
    """Mean time to data loss of one group (expected absorption time).

    Solves ``Q_t m = -1`` on the transient states, the standard absorbing-
    chain identity.
    """
    q = group_generator(scheme, fail_rate, repair_rate, parallel_repair)
    qt = q[:-1, :-1]
    m = np.linalg.solve(qt, -np.ones(qt.shape[0]))
    return float(m[0])
