"""Deterministic failure scenarios: what-if studies and post-mortems.

The Monte-Carlo engines sample failures stochastically; this module lets an
operator *script* them — "disk 17 dies at t=100 s, its recovery target dies
40 s later, a whole shelf of 12 disks goes at t=1 h" — and observe exactly
how FARM (or the traditional baseline) responds: windows, redirections,
which groups were lost and when.

Scenarios run on the object engine so the full timeline is inspectable, and
random background failures are disabled (every failure is injected), which
makes the outcome exactly reproducible.

Beyond whole-disk deaths a scenario can script *transient outages*
(:meth:`Scenario.outage`) and *latent sector errors*
(:meth:`Scenario.latent`), and arm any stochastic
:class:`~repro.faults.base.FaultInjector` (:meth:`Scenario.inject_faults`)
— those draw from their own named streams, so the scripted part of the
timeline stays exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.system import StorageSystem
from ..config import SystemConfig
from ..core.policy import PolicyConfig
from ..core.runner import build_manager
from ..faults.base import FaultContext, FaultInjector, FaultStats, arm_all
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import TraceRecorder
from ..telemetry.handle import Telemetry


@dataclass(frozen=True)
class Injection:
    """One scripted disk failure."""

    time: float
    disk_id: int


@dataclass
class ScenarioOutcome:
    """Everything observable after a scenario runs."""

    config: SystemConfig
    injections: list[Injection]
    stats: object                       # RecoveryStats
    system: StorageSystem
    trace: TraceRecorder
    lost_groups: list[int]
    fault_stats: FaultStats = field(default_factory=FaultStats)
    #: rebuilds still parked in the deferred queue at the horizon.
    deferred_outstanding: int = 0
    #: rebuilds still held by the lazy-recovery trigger at the horizon.
    held_outstanding: int = 0

    @property
    def data_survived(self) -> bool:
        return not self.lost_groups

    def summary(self) -> str:
        s = self.stats
        mode = "FARM" if self.config.use_farm else "traditional"
        lines = [
            f"scenario under {mode} recovery: "
            f"{len(self.injections)} injected failures",
            f"  rebuilds: {s.rebuilds_completed}/{s.rebuilds_started} "
            f"completed, mean window {s.mean_window:,.0f} s, "
            f"max {s.window_max:,.0f} s",
            f"  redirections: {s.target_redirections} target, "
            f"{s.source_redirections} source",
        ]
        if s.rebuilds_deferred:
            lines.append(
                f"  degraded: {s.rebuilds_deferred} rebuilds deferred, "
                f"{s.retries} retries, "
                f"{self.deferred_outstanding} still parked")
        if s.latent_errors_discovered or s.transient_outages:
            lines.append(
                f"  faults: {s.latent_errors_discovered} latent errors "
                f"discovered (mean latency {s.mean_latent_window:,.0f} s), "
                f"{s.transient_outages} transient outages")
        if self.lost_groups:
            lines.append(f"  DATA LOST: groups {self.lost_groups} "
                         f"(first at t={s.first_loss_time:,.0f} s)")
        else:
            lines.append("  no data lost")
        return "\n".join(lines)


class Scenario:
    """Builder for scripted-failure studies.

    >>> from repro.units import TB, GB
    >>> cfg = SystemConfig(total_user_bytes=4 * TB,
    ...                    group_user_bytes=10 * GB)
    >>> out = (Scenario(cfg)
    ...        .fail(disk=0, at=100.0)
    ...        .fail(disk=1, at=200.0)
    ...        .run(horizon=86400.0))
    >>> isinstance(out.data_survived, bool)
    True
    """

    def __init__(self, config: SystemConfig, seed: int = 0,
                 policy: PolicyConfig | None = None,
                 telemetry: "Telemetry | None" = None) -> None:
        self.config = config
        self.seed = seed
        self.policy = policy
        self.telemetry = telemetry
        self._injections: list[Injection] = []
        #: (time, disk, count) partner failures resolved once the system
        #: is built (partner identity depends on placement).
        self._partner_injections: list[tuple[float, int, int]] = []
        #: (start, disk, duration) scripted transient outages.
        self._outages: list[tuple[float, int, float]] = []
        #: (time, disk) scripted latent-error injections.
        self._latents: list[tuple[float, int]] = []
        self._injectors: list[FaultInjector] = []

    # -- scripting ------------------------------------------------------- #
    def fail(self, disk: int, at: float) -> "Scenario":
        """Schedule disk ``disk`` to fail at time ``at`` (seconds)."""
        if at < 0:
            raise ValueError("injection time must be non-negative")
        self._injections.append(Injection(time=float(at), disk_id=disk))
        return self

    def fail_batch(self, disks: list[int], at: float) -> "Scenario":
        """A correlated failure (shelf / rack / cooling-zone loss)."""
        for d in disks:
            self.fail(d, at)
        return self

    def fail_partners_of(self, disk: int, at: float,
                         count: int = 1) -> "Scenario":
        """Fail ``count`` disks that share a redundancy group with
        ``disk`` — the adversarial case for the window of vulnerability.

        Partner identity depends on the placement, so resolution happens in
        :meth:`run` once the system is built.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if at < 0:
            raise ValueError("injection time must be non-negative")
        self._partner_injections.append((float(at), disk, count))
        return self

    def outage(self, disk: int, at: float, duration: float) -> "Scenario":
        """Take ``disk`` offline at ``at`` and bring it back after
        ``duration`` seconds — a transient outage, not a failure."""
        if at < 0 or duration <= 0:
            raise ValueError("outage needs at >= 0 and duration > 0")
        self._outages.append((float(at), disk, float(duration)))
        return self

    def latent(self, disk: int, at: float) -> "Scenario":
        """Silently corrupt one block on ``disk`` at time ``at``; nothing
        notices until a scrub or rebuild read discovers it."""
        if at < 0:
            raise ValueError("injection time must be non-negative")
        self._latents.append((float(at), disk))
        return self

    def inject_faults(self, *injectors: FaultInjector) -> "Scenario":
        """Arm stochastic fault injectors (see :mod:`repro.faults`)."""
        self._injectors.extend(injectors)
        return self

    # -- execution -------------------------------------------------------- #
    def run(self, horizon: float | None = None) -> ScenarioOutcome:
        """Build the system, inject the script, simulate to the horizon."""
        # Scenario runs are fully scripted: no stochastic failures, not
        # even for spares provisioned mid-run.
        streams = RandomStreams(self.seed)
        system = StorageSystem(self.config, streams,
                               deterministic_failures=True)

        trace = TraceRecorder()
        sim = Simulator(trace=trace)
        manager = build_manager(system, sim, policy=self.policy,
                                telemetry=self.telemetry)
        end = horizon if horizon is not None else self.config.duration
        if self.telemetry is not None:
            self.telemetry.attach_probes(sim, manager.telemetry_sample,
                                         until=end)
        ctx = FaultContext(system=system, sim=sim, manager=manager,
                           streams=streams, horizon=end,
                           telemetry=self.telemetry)
        arm_all(self._injectors, ctx)

        resolved: list[Injection] = list(self._injections)
        for at, disk, count in self._partner_injections:
            partners: list[int] = []
            for group in system.groups_on_disk(disk):
                for d in group.disks:
                    if d != disk and d not in partners:
                        partners.append(d)
                if len(partners) >= count:
                    break
            for d in partners[:count]:
                resolved.append(Injection(time=at, disk_id=d))
        resolved.sort(key=lambda i: i.time)

        for inj in resolved:
            if inj.disk_id >= len(system.disks):
                raise ValueError(f"no such disk {inj.disk_id}")
            sim.schedule_at(inj.time, manager.on_disk_failure, inj.disk_id,
                            name="injected-failure")
        for at, disk, duration in self._outages:
            if disk >= len(system.disks):
                raise ValueError(f"no such disk {disk}")
            sim.schedule_at(at, manager.on_disk_offline, disk,
                            name="injected-outage")
            sim.schedule_at(at + duration, manager.on_disk_online, disk,
                            name="injected-restore")
        latent_rng = streams.get("faults-latent") if self._latents else None
        for at, disk in sorted(self._latents):
            if disk >= len(system.disks):
                raise ValueError(f"no such disk {disk}")
            sim.schedule_at(at, self._inject_latent, ctx, latent_rng, disk,
                            name="injected-latent")
        sim.run(until=end)
        manager.finalize(end)

        lost = [g.grp_id for g in system.groups if g.lost]
        return ScenarioOutcome(config=self.config, injections=resolved,
                               stats=manager.stats, system=system,
                               trace=trace, lost_groups=lost,
                               fault_stats=ctx.stats,
                               deferred_outstanding=(
                                   manager.deferred_outstanding),
                               held_outstanding=manager.held_outstanding)

    @staticmethod
    def _inject_latent(ctx: FaultContext, rng, disk: int) -> None:
        disk_obj = ctx.system.disks[disk]
        if disk_obj.dead or not disk_obj.online:
            return      # can't corrupt what can't be written
        if ctx.system.inject_latent_error(disk, rng, ctx.sim.now):
            ctx.stats.latent_injected += 1
