"""Deterministic failure scenarios: what-if studies and post-mortems.

The Monte-Carlo engines sample failures stochastically; this module lets an
operator *script* them — "disk 17 dies at t=100 s, its recovery target dies
40 s later, a whole shelf of 12 disks goes at t=1 h" — and observe exactly
how FARM (or the traditional baseline) responds: windows, redirections,
which groups were lost and when.

Scenarios run on the object engine so the full timeline is inspectable, and
random background failures are disabled (every failure is injected), which
makes the outcome exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.system import StorageSystem
from ..config import SystemConfig
from ..core.policy import PolicyConfig
from ..core.runner import build_manager
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import TraceRecorder


@dataclass(frozen=True)
class Injection:
    """One scripted disk failure."""

    time: float
    disk_id: int


@dataclass
class ScenarioOutcome:
    """Everything observable after a scenario runs."""

    config: SystemConfig
    injections: list[Injection]
    stats: object                       # RecoveryStats
    system: StorageSystem
    trace: TraceRecorder
    lost_groups: list[int]

    @property
    def data_survived(self) -> bool:
        return not self.lost_groups

    def summary(self) -> str:
        s = self.stats
        mode = "FARM" if self.config.use_farm else "traditional"
        lines = [
            f"scenario under {mode} recovery: "
            f"{len(self.injections)} injected failures",
            f"  rebuilds: {s.rebuilds_completed}/{s.rebuilds_started} "
            f"completed, mean window {s.mean_window:,.0f} s, "
            f"max {s.window_max:,.0f} s",
            f"  redirections: {s.target_redirections} target, "
            f"{s.source_redirections} source",
        ]
        if self.lost_groups:
            lines.append(f"  DATA LOST: groups {self.lost_groups} "
                         f"(first at t={s.first_loss_time:,.0f} s)")
        else:
            lines.append("  no data lost")
        return "\n".join(lines)


class Scenario:
    """Builder for scripted-failure studies.

    >>> from repro.units import TB, GB
    >>> cfg = SystemConfig(total_user_bytes=4 * TB,
    ...                    group_user_bytes=10 * GB)
    >>> out = (Scenario(cfg)
    ...        .fail(disk=0, at=100.0)
    ...        .fail(disk=1, at=200.0)
    ...        .run(horizon=86400.0))
    >>> isinstance(out.data_survived, bool)
    True
    """

    def __init__(self, config: SystemConfig, seed: int = 0,
                 policy: PolicyConfig | None = None) -> None:
        self.config = config
        self.seed = seed
        self.policy = policy
        self._injections: list[Injection] = []
        #: (time, disk, count) partner failures resolved once the system
        #: is built (partner identity depends on placement).
        self._partner_injections: list[tuple[float, int, int]] = []

    # -- scripting ------------------------------------------------------- #
    def fail(self, disk: int, at: float) -> "Scenario":
        """Schedule disk ``disk`` to fail at time ``at`` (seconds)."""
        if at < 0:
            raise ValueError("injection time must be non-negative")
        self._injections.append(Injection(time=float(at), disk_id=disk))
        return self

    def fail_batch(self, disks: list[int], at: float) -> "Scenario":
        """A correlated failure (shelf / rack / cooling-zone loss)."""
        for d in disks:
            self.fail(d, at)
        return self

    def fail_partners_of(self, disk: int, at: float,
                         count: int = 1) -> "Scenario":
        """Fail ``count`` disks that share a redundancy group with
        ``disk`` — the adversarial case for the window of vulnerability.

        Partner identity depends on the placement, so resolution happens in
        :meth:`run` once the system is built.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if at < 0:
            raise ValueError("injection time must be non-negative")
        self._partner_injections.append((float(at), disk, count))
        return self

    # -- execution -------------------------------------------------------- #
    def run(self, horizon: float | None = None) -> ScenarioOutcome:
        """Build the system, inject the script, simulate to the horizon."""
        # Scenario runs are fully scripted: no stochastic failures, not
        # even for spares provisioned mid-run.
        system = StorageSystem(self.config, RandomStreams(self.seed),
                               deterministic_failures=True)

        trace = TraceRecorder()
        sim = Simulator(trace=trace)
        manager = build_manager(system, sim, policy=self.policy)

        resolved: list[Injection] = list(self._injections)
        for at, disk, count in self._partner_injections:
            partners: list[int] = []
            for group in system.groups_on_disk(disk):
                for d in group.disks:
                    if d != disk and d not in partners:
                        partners.append(d)
                if len(partners) >= count:
                    break
            for d in partners[:count]:
                resolved.append(Injection(time=at, disk_id=d))
        resolved.sort(key=lambda i: i.time)

        for inj in resolved:
            if inj.disk_id >= len(system.disks):
                raise ValueError(f"no such disk {inj.disk_id}")
            sim.schedule_at(inj.time, manager.on_disk_failure, inj.disk_id,
                            name="injected-failure")
        end = horizon if horizon is not None else self.config.duration
        sim.run(until=end)

        lost = [g.grp_id for g in system.groups if g.lost]
        return ScenarioOutcome(config=self.config, injections=resolved,
                               stats=manager.stats, system=system,
                               trace=trace, lost_groups=lost)
