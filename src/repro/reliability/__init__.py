"""Reliability analysis: fast Monte-Carlo engine, analytic cross-checks."""

from .analytic import (WindowModel, expected_disk_failures, mean_window,
                       p_loss, p_loss_window_model)
from .markov import group_generator, mttdl, p_group_loss, p_system_loss
from .montecarlo import (MonteCarloResult, estimate_p_loss,
                         loss_probability_series, run_seed, sweep)
from .rare import (SplittingResult, TiltedFailureDraw, estimate_p_loss_is,
                   splitting_p_loss, sweep_splitting)
from .runner import (PointOutcome, PointSpec, RunningMoments,
                     StatsAggregate, SweepRunner, default_bench_path,
                     seed_schedule, shutdown_pool)
from .scenarios import Injection, Scenario, ScenarioOutcome
from .sensitivity import (SensitivityRow, elasticity, render_tornado,
                          tornado)
from .simulation import ReliabilitySimulation
from .stats import (ExactSum, Proportion, WeightedAggregate,
                    bootstrap_mean, empty_proportion,
                    weighted_clt_interval, weighted_wilson_interval,
                    wilson_interval)

__all__ = [
    "ReliabilitySimulation",
    "MonteCarloResult", "estimate_p_loss", "sweep",
    "loss_probability_series", "run_seed",
    "SweepRunner", "PointSpec", "PointOutcome", "StatsAggregate",
    "RunningMoments", "seed_schedule", "shutdown_pool",
    "default_bench_path",
    "Proportion", "wilson_interval", "empty_proportion", "bootstrap_mean",
    "ExactSum", "WeightedAggregate",
    "weighted_clt_interval", "weighted_wilson_interval",
    "TiltedFailureDraw", "SplittingResult", "estimate_p_loss_is",
    "splitting_p_loss", "sweep_splitting",
    "p_loss", "p_loss_window_model", "WindowModel",
    "mean_window", "expected_disk_failures",
    "p_group_loss", "p_system_loss", "mttdl", "group_generator",
    "Scenario", "ScenarioOutcome", "Injection",
    "elasticity", "tornado", "render_tornado", "SensitivityRow",
]
