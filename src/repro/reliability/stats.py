"""Statistics for Monte-Carlo reliability estimates.

Probability of data loss is a Bernoulli proportion over runs; we report it
with Wilson score intervals (well-behaved near 0 and 1, where reliability
estimates live) and provide a bootstrap helper for non-Bernoulli outputs
(e.g. mean windows of vulnerability).

The weighted half of this module supports the rare-event estimators in
:mod:`repro.reliability.rare`: importance-sampled runs carry a
likelihood-ratio weight, and :class:`WeightedAggregate` is the one
sanctioned place those weights are combined (lint rule RPR012 rejects
ad-hoc weight arithmetic in experiment code).  Its sums are *exact*
(Shewchuk partials), so folding runs in any chunking — serial, the sweep
runner's reorder buffers, a merge of per-worker partials — produces
bit-identical aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Proportion:
    """A Bernoulli estimate with its confidence interval."""

    successes: int
    trials: int
    estimate: float
    lo: float
    hi: float
    confidence: float

    @property
    def width(self) -> float:
        """Confidence-interval width ``hi - lo``.

        The forecast service's refinement queue orders cached estimates
        by this: the widest interval is the most informative place to
        spend the next batch of background trials.
        """
        return self.hi - self.lo

    @property
    def zero_hit(self) -> bool:
        """True when a positive budget observed no successes at all.

        A (0, upper) interval from ``k = 0`` looks reassuring but mostly
        measures budget inadequacy; callers should surface
        :attr:`rule_of_three_upper` alongside it.
        """
        return self.trials > 0 and self.successes == 0

    @property
    def rule_of_three_upper(self) -> float:
        """'Rule of three' 95% upper bound for a zero-hit estimate.

        With n trials and no successes, p <= 3/n at ~95% confidence —
        the standard budget-adequacy yardstick for rare events.
        """
        if self.trials <= 0:
            return 1.0
        return min(1.0, 3.0 / self.trials)

    def __str__(self) -> str:
        base = (f"{100 * self.estimate:.2f}% "
                f"[{100 * self.lo:.2f}, {100 * self.hi:.2f}] "
                f"({self.successes}/{self.trials})")
        if self.zero_hit:
            base += (f" zero-hit: p<={100 * self.rule_of_three_upper:.3g}%"
                     f" (rule of 3)")
        return base


def _wilson_bounds(p: float, n_eff: float, z: float) -> tuple[float, float]:
    """Wilson score bounds for proportion ``p`` over ``n_eff`` trials.

    ``n_eff`` may be fractional (the weighted interval passes an
    effective sample size).
    """
    denom = 1.0 + z * z / n_eff
    center = (p + z * z / (2 * n_eff)) / denom
    half = (z / denom) * math.sqrt(
        p * (1 - p) / n_eff + z * z / (4 * n_eff * n_eff))
    return center - half, center + half


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Proportion:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    # two-sided normal quantile
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    lo, hi = _wilson_bounds(p, trials, z)
    # Clamp to [0, 1] and to the estimate itself: at k = 0 (or k = n) the
    # exact bound coincides with p, and rounding can push it past it by
    # ~1 ulp, yielding lo > estimate (or hi < estimate).
    return Proportion(successes=successes, trials=trials, estimate=p,
                      lo=min(p, max(0.0, lo)),
                      hi=max(p, min(1.0, hi)),
                      confidence=confidence)


def wilson_from_rate(rate: float, n_eff: float,
                     confidence: float = 0.95) -> Proportion:
    """Wilson interval at a *fractional* success rate and effective n.

    For estimates that are not integer hit counts — an interpolated
    surrogate value standing on a grid built from ``n_eff`` runs per
    point — the Wilson score still applies with the rate taken at face
    value.  The reported ``successes``/``trials`` are the nearest
    integers (display only; the bounds use the exact inputs).
    """
    if n_eff <= 0:
        raise ValueError("n_eff must be positive")
    if not 0 <= rate <= 1:
        raise ValueError("rate must be in [0, 1]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    z = math.sqrt(2.0) * _erfinv(confidence)
    lo, hi = _wilson_bounds(rate, n_eff, z)
    return Proportion(successes=int(round(rate * n_eff)),
                      trials=int(round(n_eff)), estimate=rate,
                      lo=min(rate, max(0.0, lo)),
                      hi=max(rate, min(1.0, hi)),
                      confidence=confidence)


def empty_proportion(confidence: float = 0.95) -> Proportion:
    """The degenerate estimate for zero completed trials.

    :func:`wilson_interval` requires at least one trial; a Monte-Carlo
    point whose every run failed (``on_error="skip"``) still needs a
    well-formed :class:`Proportion`, and with no evidence the interval
    is the whole unit line.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    return Proportion(successes=0, trials=0, estimate=0.0,
                      lo=0.0, hi=1.0, confidence=confidence)


def _erfinv(x: float) -> float:
    """Inverse error function (scipy wrapped to keep the import local)."""
    from scipy.special import erfinv
    return float(erfinv(x))


# --------------------------------------------------------------------- #
# Weighted (importance-sampled) estimates
# --------------------------------------------------------------------- #
class ExactSum:
    """Error-free float accumulator (Shewchuk partials, as in math.fsum).

    The partials list represents the running sum *exactly*, so adding the
    same multiset of values in any order — or merging two accumulators
    built from disjoint chunks — yields the same :attr:`value` to the
    last bit.  This is what lets weighted sweep aggregates stay
    bit-identical across serial, parallel, and re-chunked execution
    without relying on the runner's fold order.
    """

    __slots__ = ("_partials",)

    def __init__(self, value: float = 0.0) -> None:
        self._partials: list[float] = [float(value)] if value else []

    def add(self, x: float) -> None:
        """Accumulate ``x`` exactly (two-sum cascade over the partials)."""
        x = float(x)
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in (exact, order-insensitive)."""
        for p in other._partials:
            self.add(p)

    @property
    def value(self) -> float:
        """The correctly-rounded float value of the exact sum."""
        return math.fsum(self._partials)

    def __repr__(self) -> str:
        return f"ExactSum({self.value!r})"


@dataclass
class WeightedAggregate:
    """Streaming reduction of weighted Bernoulli outcomes.

    One entry per Monte-Carlo run: a strictly positive likelihood-ratio
    weight ``w`` and a hit indicator ``x`` (data loss).  All four sums are
    :class:`ExactSum`, so :meth:`add`/:meth:`merge` commute exactly and
    any chunking of the runs reproduces the same aggregate bit for bit —
    the property the sweep runner's serial-vs-parallel parity gate
    asserts, and the Hypothesis suite fuzzes.

    With every weight equal to 1 the unnormalized estimate degenerates to
    the naive proportion ``hits / n`` exactly and ``ess == n``.
    """

    n: int = 0
    hits: int = 0
    w_sum: ExactSum = field(default_factory=ExactSum)
    w_sq_sum: ExactSum = field(default_factory=ExactSum)
    wx_sum: ExactSum = field(default_factory=ExactSum)
    wx_sq_sum: ExactSum = field(default_factory=ExactSum)

    def add(self, weight: float, hit: bool) -> None:
        """Fold one run's (weight, loss-indicator) pair in.

        A weight of exactly 0.0 is accepted: under extreme tilt the
        likelihood ratio ``exp(log_weight)`` underflows, and such a run
        legitimately carries (vanishingly little) evidence — it counts as
        a trial but contributes nothing to the weighted sums.  Negative
        or non-finite weights are still programming errors.
        """
        w = float(weight)
        if not math.isfinite(w) or w < 0.0:
            raise ValueError(
                f"likelihood-ratio weights must be finite and "
                f"non-negative, got {weight!r}")
        self.n += 1
        self.w_sum.add(w)
        self.w_sq_sum.add(w * w)
        if hit:
            self.hits += 1
            self.wx_sum.add(w)
            self.wx_sq_sum.add(w * w)

    def merge(self, other: "WeightedAggregate") -> None:
        """Fold another aggregate in (exact, order-insensitive)."""
        self.n += other.n
        self.hits += other.hits
        self.w_sum.merge(other.w_sum)
        self.w_sq_sum.merge(other.w_sq_sum)
        self.wx_sum.merge(other.wx_sum)
        self.wx_sq_sum.merge(other.wx_sq_sum)

    @property
    def estimate(self) -> float:
        """Unbiased (unnormalized) IS estimate: (1/n) sum w_i x_i."""
        if self.n == 0:
            return 0.0
        return self.wx_sum.value / self.n

    @property
    def estimate_normalized(self) -> float:
        """Self-normalized estimate: sum w_i x_i / sum w_i.

        A batch with zero total weight (empty, or every run's likelihood
        ratio underflowed) carries no usable evidence: the documented
        uninformative value is 0.0, mirroring :func:`empty_proportion`
        (callers see the degeneracy through ``ess == 0``).
        """
        sw = self.w_sum.value
        if self.n == 0 or sw == 0.0:
            return 0.0
        return self.wx_sum.value / sw

    @property
    def mean_weight(self) -> float:
        """Average weight (1.0 under zero tilt; a diagnostic otherwise)."""
        if self.n == 0:
            return 0.0
        return self.w_sum.value / self.n

    @property
    def ess(self) -> float:
        """Kish effective sample size: (sum w)^2 / sum w^2, in [0, n].

        0.0 both for the empty aggregate and for an all-zero-weight
        batch — either way the weighted estimate rests on no effective
        samples, and interval builders degrade to the uninformative
        whole-line answer instead of dividing by zero.
        """
        sw_sq = self.w_sq_sum.value
        if self.n == 0 or sw_sq == 0.0:
            return 0.0
        sw = self.w_sum.value
        return sw * sw / sw_sq


def weighted_clt_interval(agg: WeightedAggregate,
                          confidence: float = 0.95) -> Proportion:
    """CLT interval for the unbiased IS estimate (1/n) sum w_i x_i.

    The standard error comes from the sample variance of the per-run
    products ``y_i = w_i x_i``; with all weights 1 this is the usual
    normal-approximation binomial interval.  ``successes`` counts *hit
    runs* (so :attr:`Proportion.zero_hit` keeps its meaning under IS).
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if agg.n == 0:
        return empty_proportion(confidence)
    if agg.w_sum.value == 0.0:
        # Every weight underflowed: a zero sample variance here would
        # claim certainty the data cannot support, so keep the trial
        # counts but return the uninformative whole-line interval.
        return Proportion(successes=agg.hits, trials=agg.n, estimate=0.0,
                          lo=0.0, hi=1.0, confidence=confidence)
    n = agg.n
    p = agg.estimate
    z = math.sqrt(2.0) * _erfinv(confidence)
    if n > 1:
        s2 = max(0.0, (agg.wx_sq_sum.value - n * p * p) / (n - 1))
    else:
        s2 = 0.0
    half = z * math.sqrt(s2 / n)
    return Proportion(successes=agg.hits, trials=n, estimate=p,
                      lo=min(p, max(0.0, p - half)),
                      hi=max(p, min(1.0, p + half)),
                      confidence=confidence)


def weighted_wilson_interval(agg: WeightedAggregate,
                             confidence: float = 0.95) -> Proportion:
    """Wilson interval for the self-normalized estimate at ESS trials.

    The self-normalized estimate is a proportion of the weight mass, so
    the Wilson score applies with the effective sample size standing in
    for the trial count; with unit weights this is exactly
    :func:`wilson_interval`.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if agg.n == 0:
        return empty_proportion(confidence)
    n_eff = agg.ess
    if n_eff == 0.0:
        # All-zero-weight batch: no effective samples, so the Wilson
        # machinery (which divides by n_eff) degrades to the documented
        # uninformative interval with the raw trial counts preserved.
        return Proportion(successes=agg.hits, trials=agg.n, estimate=0.0,
                          lo=0.0, hi=1.0, confidence=confidence)
    p = min(1.0, max(0.0, agg.estimate_normalized))
    z = math.sqrt(2.0) * _erfinv(confidence)
    lo, hi = _wilson_bounds(p, n_eff, z)
    return Proportion(successes=agg.hits, trials=agg.n, estimate=p,
                      lo=min(p, max(0.0, lo)),
                      hi=max(p, min(1.0, hi)),
                      confidence=confidence)


def bootstrap_mean(values: np.ndarray, confidence: float = 0.95,
                   n_resamples: int = 2000,
                   rng: np.random.Generator | None = None
                   ) -> tuple[float, float, float]:
    """Bootstrap CI of the mean; returns (mean, lo, hi)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("need at least one value")
    rng = rng or np.random.default_rng(0)
    means = rng.choice(values, size=(n_resamples, values.size),
                       replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(lo), float(hi)
