"""Statistics for Monte-Carlo reliability estimates.

Probability of data loss is a Bernoulli proportion over runs; we report it
with Wilson score intervals (well-behaved near 0 and 1, where reliability
estimates live) and provide a bootstrap helper for non-Bernoulli outputs
(e.g. mean windows of vulnerability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Proportion:
    """A Bernoulli estimate with its confidence interval."""

    successes: int
    trials: int
    estimate: float
    lo: float
    hi: float
    confidence: float

    def __str__(self) -> str:
        return (f"{100 * self.estimate:.2f}% "
                f"[{100 * self.lo:.2f}, {100 * self.hi:.2f}] "
                f"({self.successes}/{self.trials})")


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Proportion:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    # two-sided normal quantile
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    # Clamp to [0, 1] and to the estimate itself: at k = 0 (or k = n) the
    # exact bound coincides with p, and rounding can push it past it by
    # ~1 ulp, yielding lo > estimate (or hi < estimate).
    return Proportion(successes=successes, trials=trials, estimate=p,
                      lo=min(p, max(0.0, center - half)),
                      hi=max(p, min(1.0, center + half)),
                      confidence=confidence)


def empty_proportion(confidence: float = 0.95) -> Proportion:
    """The degenerate estimate for zero completed trials.

    :func:`wilson_interval` requires at least one trial; a Monte-Carlo
    point whose every run failed (``on_error="skip"``) still needs a
    well-formed :class:`Proportion`, and with no evidence the interval
    is the whole unit line.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    return Proportion(successes=0, trials=0, estimate=0.0,
                      lo=0.0, hi=1.0, confidence=confidence)


def _erfinv(x: float) -> float:
    """Inverse error function (scipy wrapped to keep the import local)."""
    from scipy.special import erfinv
    return float(erfinv(x))


def bootstrap_mean(values: np.ndarray, confidence: float = 0.95,
                   n_resamples: int = 2000,
                   rng: np.random.Generator | None = None
                   ) -> tuple[float, float, float]:
    """Bootstrap CI of the mean; returns (mean, lo, hi)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("need at least one value")
    rng = rng or np.random.default_rng(0)
    means = rng.choice(values, size=(n_resamples, values.size),
                       replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(lo), float(hi)
