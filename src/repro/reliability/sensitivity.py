"""Sensitivity of P(data loss) to design parameters.

For designers, the interesting question after "how reliable is this
configuration?" is "which knob moves reliability the most per unit of
cost?".  This module computes elasticities — ``d ln P / d ln x`` — of the
probability of data loss with respect to each tunable parameter, using the
closed-form window model (instant) or the Monte-Carlo engine (accurate),
and renders a tornado-style ranking.

An elasticity of 1 means a 1% change in the parameter moves the loss
rate by about 1%.  The window model predicts, for example, elasticity ≈ +2
for the drive failure rate under single-fault tolerance (two failures must
overlap — the paper's Figure 8(b)), ≈ +1 for system scale (Figure 8(a)),
and ≈ −1 for recovery bandwidth; for Figure 5's contrast the *absolute*
sensitivity ``dp_dlnx`` is the number to read — an order of magnitude
larger without FARM, because FARM has already collapsed the loss
probability the bandwidth acts on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..config import SystemConfig
from .analytic import p_loss


@dataclass(frozen=True)
class SensitivityRow:
    """Sensitivity of P(loss) with respect to one parameter.

    ``elasticity`` is computed on the expected-loss (event-rate) scale
    ``lam = -ln(1 - P)``, which is linear in the underlying loss rate and
    therefore unsaturated even when P is large; for small P it coincides
    with ``d ln P / d ln x``.  ``dp_dlnx`` is the *absolute* change in P
    per unit relative parameter change — the quantity behind the paper's
    Figure 5 observation that recovery bandwidth barely moves FARM's loss
    (its P is an order of magnitude smaller to begin with).
    """

    parameter: str
    base_value: float
    elasticity: float     # d ln lam / d ln x at the base point
    dp_dlnx: float        # dP / d ln x (absolute, probability units)
    p_minus: float        # P at x * (1 - step)
    p_base: float
    p_plus: float         # P at x * (1 + step)


#: Parameters the analysis sweeps, with accessors for their base value.
#: Accessors resolve defaults (e.g. recovery bandwidth comes from the
#: vintage's 20% cap when the config field is None).
PARAMETERS: dict[str, Callable[[SystemConfig], float]] = {
    "failure_rate": lambda c: c.vintage.failure_model.rate_multiplier,
    "recovery_bandwidth_bps": lambda c: c.recovery_bandwidth,
    "detection_latency": lambda c: c.detection_latency,
    "group_user_bytes": lambda c: c.group_user_bytes,
    "total_user_bytes": lambda c: c.total_user_bytes,
}


def _perturb(cfg: SystemConfig, parameter: str, factor: float
             ) -> SystemConfig:
    if parameter == "failure_rate":
        return cfg.with_(vintage=cfg.vintage.with_rate_multiplier(factor))
    value = PARAMETERS[parameter](cfg)
    return cfg.with_(**{parameter: value * factor})


def elasticity(cfg: SystemConfig, parameter: str, step: float = 0.25,
               estimator: Callable[[SystemConfig], float] = p_loss
               ) -> SensitivityRow:
    """Central-difference elasticity of P(loss) w.r.t. one parameter.

    ``estimator`` maps a config to P(loss); the default is the analytic
    window model.  Pass a Monte-Carlo lambda for simulation-backed numbers.
    """
    if parameter not in PARAMETERS:
        raise ValueError(f"unknown parameter {parameter!r}; "
                         f"choose from {sorted(PARAMETERS)}")
    if not 0 < step < 1:
        raise ValueError("step must be in (0, 1)")
    base_value = PARAMETERS[parameter](cfg)
    if parameter == "detection_latency" and base_value == 0.0:
        # log-derivative undefined at zero; report the one-sided slope
        # against a reference of one second.
        cfg = cfg.with_(detection_latency=1.0)
        base_value = 1.0
    p_base = estimator(cfg)
    p_minus = estimator(_perturb(cfg, parameter, 1.0 - step))
    p_plus = estimator(_perturb(cfg, parameter, 1.0 + step))
    dlnx = math.log(1.0 + step) - math.log(1.0 - step)
    if p_base <= 0 or p_minus <= 0 or p_plus <= 0 or \
            p_minus >= 1 or p_plus >= 1:
        elast = 0.0
    else:
        lam_plus = -math.log1p(-p_plus)
        lam_minus = -math.log1p(-p_minus)
        elast = (math.log(lam_plus) - math.log(lam_minus)) / dlnx
    return SensitivityRow(parameter=parameter, base_value=base_value,
                          elasticity=elast,
                          dp_dlnx=(p_plus - p_minus) / dlnx,
                          p_minus=p_minus, p_base=p_base, p_plus=p_plus)


def tornado(cfg: SystemConfig, step: float = 0.25,
            estimator: Callable[[SystemConfig], float] = p_loss
            ) -> list[SensitivityRow]:
    """Elasticities for every parameter, sorted by influence."""
    rows = [elasticity(cfg, p, step, estimator) for p in PARAMETERS]
    rows.sort(key=lambda r: abs(r.elasticity), reverse=True)
    return rows


def render_tornado(rows: list[SensitivityRow], width: int = 30) -> str:
    """ASCII tornado chart of elasticities."""
    if not rows:
        return "(no parameters)"
    peak = max(abs(r.elasticity) for r in rows) or 1.0
    lines = []
    for r in rows:
        bar_len = round(abs(r.elasticity) / peak * width)
        bar = ("+" if r.elasticity >= 0 else "-") * max(bar_len, 1)
        lines.append(f"{r.parameter:>24}  {r.elasticity:+7.2f}  {bar}")
    return "\n".join(lines)
