"""Closed-form approximations of the probability of data loss.

Two independent models cross-check the simulators:

* :func:`p_loss_window_model` — the window-of-vulnerability argument the
  paper makes informally: each disk failure exposes its blocks for a window
  (detection + rebuild, or detection + queue position for the traditional
  baseline); loss occurs when enough of a group's other disks fail inside
  the window.  First-order in the hazard, accurate when windows are short
  compared to drive lifetimes (always true here).
* :mod:`repro.reliability.markov` — an exact continuous-time Markov chain
  for a single group under constant rates.

Both reproduce the key scaling facts the paper reports: P(loss) is linear
in system scale, FARM is insensitive to group size (blocks/disk times
window is invariant), and the traditional baseline degrades with smaller
groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SystemConfig


@dataclass(frozen=True)
class WindowModel:
    """Intermediate quantities of the window-of-vulnerability estimate."""

    expected_disk_failures: float
    blocks_per_disk: float
    mean_window: float
    per_block_loss: float
    per_failure_loss: float
    p_loss: float


def mean_hazard(cfg: SystemConfig) -> float:
    """Average per-second failure hazard of a drive over the horizon."""
    fm = cfg.vintage.failure_model
    return float(fm.cumulative_hazard(cfg.duration)) / cfg.duration


def expected_disk_failures(cfg: SystemConfig) -> float:
    """Expected number of drive failures over the horizon (no replacement)."""
    fm = cfg.vintage.failure_model
    return cfg.n_disks * float(1.0 - fm.survival(cfg.duration))


def mean_window(cfg: SystemConfig) -> float:
    """Mean window of vulnerability per lost block.

    FARM: detection latency plus one block rebuild.  Traditional: detection
    latency plus the mean queue position on the single spare, i.e.
    ``(B+1)/2`` block rebuilds for ``B`` blocks per disk.
    """
    t_block = cfg.rebuild_seconds_per_block
    if cfg.use_farm:
        return cfg.detection_latency + t_block
    blocks = cfg.blocks_per_disk
    return cfg.detection_latency + 0.5 * (blocks + 1.0) * t_block


def p_loss_window_model(cfg: SystemConfig) -> WindowModel:
    """First-order window-of-vulnerability estimate of P(data loss).

    For a block with window W, the group is lost if at least ``tol`` of the
    group's other ``n - 1`` disks fail within W; with per-disk hazard h and
    hW << 1 the leading term is ``C(n-1, tol) * (h W)^tol``.
    """
    h = mean_hazard(cfg)
    w = mean_window(cfg)
    n = cfg.scheme.n
    tol = cfg.scheme.tolerance
    hw = h * w
    per_block = math.comb(n - 1, tol) * hw ** tol
    blocks = cfg.blocks_per_disk
    per_failure = blocks * per_block
    failures = expected_disk_failures(cfg)
    p = 1.0 - math.exp(-failures * per_failure)
    return WindowModel(expected_disk_failures=failures,
                       blocks_per_disk=blocks, mean_window=w,
                       per_block_loss=per_block,
                       per_failure_loss=per_failure, p_loss=p)


def p_loss(cfg: SystemConfig) -> float:
    """Shorthand for the window-model estimate of P(data loss)."""
    return p_loss_window_model(cfg).p_loss


# --------------------------------------------------------------------- #
# Validity envelope
# --------------------------------------------------------------------- #
#: First-order cutoff: the window model drops O((hW)^2) terms, so it is
#: only trusted while the per-window hazard mass stays small.  0.05 keeps
#: the neglected terms ~an order of magnitude under typical Monte-Carlo
#: CI half-widths; configs outside fall through to simulation tiers.
MAX_HAZARD_WINDOW = 0.05


def unsupported_reasons(cfg: SystemConfig) -> tuple[str, ...]:
    """Why the window model does *not* apply to ``cfg`` (empty = valid).

    The forecast service's tier-1 routing
    (:mod:`repro.service.cascade`) is driven by this predicate — the
    envelope is data, not scattered heuristics.  Everything listed has a
    first-order effect the closed form cannot express; the quantitative
    last entry bounds the model's own truncation error.
    """
    from ..redundancy.composite import is_threshold_scheme
    reasons = []
    if not is_threshold_scheme(cfg.scheme):
        reasons.append("set-based survival schemes (needs a plain "
                       "m-of-n loss count)")
    if cfg.racks != 1 or cfg.machines_per_rack != 1:
        reasons.append("non-flat topology (correlated domain exposure)")
    if cfg.max_chunks_per_domain is not None:
        reasons.append("domain placement caps (placement is no longer "
                       "uniform)")
    if cfg.placement != "random":
        reasons.append(f"placement={cfg.placement!r} (model assumes "
                       f"uniform random placement)")
    if cfg.use_smart:
        reasons.append("SMART steering (windows are no longer "
                       "detection + rebuild)")
    if cfg.replacement_threshold is not None:
        reasons.append("replacement batches (population age is not a "
                       "single cohort)")
    if cfg.workload_peak_load > 0:
        reasons.append("diurnal workload (recovery bandwidth varies "
                       "over the day)")
    if cfg.recovery_threshold > 1:
        reasons.append("lazy recovery (recovery_threshold > 1): windows "
                       "are no longer detection + rebuild per failure)")
    hw = mean_hazard(cfg) * mean_window(cfg)
    if hw > MAX_HAZARD_WINDOW:
        reasons.append(f"hazard-window product {hw:.3g} exceeds the "
                       f"first-order envelope ({MAX_HAZARD_WINDOW:g})")
    return tuple(reasons)


def supports(cfg: SystemConfig) -> bool:
    """True when the window model's validity envelope covers ``cfg``."""
    return not unsupported_reasons(cfg)


def mttdl_estimate(cfg: SystemConfig) -> float:
    """First-order mean time to (system) data loss, in seconds.

    Loss events arrive as a thinned failure process at rate
    ``expected_disk_failures * per_failure_loss / duration``; the MTTDL
    is its reciprocal (``inf`` when the model predicts no loss at all).
    """
    model = p_loss_window_model(cfg)
    rate = model.expected_disk_failures * model.per_failure_loss \
        / cfg.duration
    if rate <= 0.0:
        return float("inf")
    return 1.0 / rate
