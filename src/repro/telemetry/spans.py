"""Sim-time span tracking: windows of vulnerability as distributions.

A :class:`SpanTracker` follows each redundancy-group rebuild from the
instant a block becomes unavailable to the instant its re-replication
completes — the paper's *window of vulnerability* — and feeds the elapsed
sim-time into per-group-size histograms (Figs. 3–5 as distributions, not
just means).

The tracker accumulates the exact float arithmetic the engines use for
``RecoveryStats.window_total`` (``duration = now - begin``; ``sum +=
duration`` in completion order), so its ``*_seconds_total`` counter equals
the engine's window aggregate to float equality — asserted by
``tests/test_telemetry.py``.
"""

from __future__ import annotations

from ..units import MONTH, SECOND
from .metrics import Gauge, MetricRegistry, log_bounds

#: Span keys are (grp_id, rep_id): one span per missing block replica.
SpanKey = tuple[int, int]


class SpanTracker:
    """Open-span table feeding duration histograms bucketed by group size.

    Parameters
    ----------
    registry:
        The registry the derived metrics live in.
    name:
        Base metric name; the duration histogram is ``name`` itself
        (labelled ``n=<group size>``), with ``<name>_sum_total``,
        ``<name>_spans_started_total`` / ``_completed_total`` /
        ``_aborted_total`` counters and an ``<name>_spans_open`` gauge
        alongside.
    bounds:
        Histogram bucket upper bounds (fixed; see
        :func:`~repro.telemetry.metrics.log_bounds`).
    """

    def __init__(self, registry: MetricRegistry, name: str,
                 bounds: tuple[float, ...] | None = None,
                 help: str = "") -> None:
        self.registry = registry
        self.name = name
        self.bounds = (bounds if bounds is not None
                       else log_bounds(SECOND, MONTH))
        self.help = help
        self._open: dict[SpanKey, tuple[float, int]] = {}
        self.started = registry.counter(
            f"{name}_spans_started_total",
            help="spans opened (block failures observed)")
        self.completed = registry.counter(
            f"{name}_spans_completed_total",
            help="spans closed by a completed re-replication")
        self.aborted = registry.counter(
            f"{name}_spans_aborted_total",
            help="spans abandoned (group lost before re-replication)")
        self.duration_sum = registry.counter(
            f"{name}_sum_total",
            help="sum of completed span durations (seconds); equals the "
                 "engine's RecoveryStats.window_total")
        self.open_gauge: Gauge = registry.gauge(
            f"{name}_spans_open",
            help="spans open at snapshot time (still-degraded blocks)")

    # ------------------------------------------------------------------ #
    def begin(self, key: SpanKey, now: float, group_size: int) -> None:
        """Open a span: block ``key`` became unavailable at ``now``."""
        if key in self._open:
            return      # duplicate begin (defensive); keep the original
        self._open[key] = (now, group_size)
        self.started.inc()

    def end(self, key: SpanKey, now: float) -> float | None:
        """Close a span; returns its duration (None if never opened)."""
        entry = self._open.pop(key, None)
        if entry is None:
            return None
        begin, group_size = entry
        duration = now - begin
        self._histogram(group_size).observe(duration)
        self.duration_sum.inc(duration)
        self.completed.inc()
        return duration

    def abort(self, key: SpanKey) -> None:
        """Drop a span without observing it (its group was lost)."""
        if self._open.pop(key, None) is not None:
            self.aborted.inc()

    def abort_group(self, grp_id: int) -> None:
        """Abort every open span of one group (on group loss)."""
        for key in [k for k in self._open if k[0] == grp_id]:
            self.abort(key)

    # ------------------------------------------------------------------ #
    @property
    def open_count(self) -> int:
        return len(self._open)

    def sync_open_gauge(self) -> None:
        """Record the current open-span count (called at snapshot time)."""
        self.open_gauge.set(len(self._open))

    def _histogram(self, group_size: int):
        return self.registry.histogram(self.name, self.bounds,
                                       help=self.help,
                                       labels={"n": str(group_size)})
