"""In-sim metrics, probes, and span observability (deterministic).

The paper's central quantities — window of vulnerability, recovery
bandwidth under the 20%-of-80 MB/s cap, degraded-mode load — are
*time-varying* cluster properties; this package makes them observable
while a simulation runs, without perturbing it:

* :mod:`~repro.telemetry.metrics` — ``Counter`` / ``Gauge`` /
  ``Histogram`` instruments in a :class:`MetricRegistry`; snapshots are
  plain dicts and merge associatively, bit-identically across any worker
  count (the sweep runner folds them in run-index order).
* :mod:`~repro.telemetry.probes` — periodic read-only cluster samplers
  on the simulator's timers.
* :mod:`~repro.telemetry.spans` — per-block failure→re-replication span
  tracking feeding window-of-vulnerability histograms per group size.
* :mod:`~repro.telemetry.export` — JSONL (schema ``repro.telemetry.v1``),
  CSV, and Prometheus text-format exporters.

Both engines accept a nullable ``telemetry=`` :class:`Telemetry` handle;
when absent every instrumentation site is a single ``is not None`` test.
See ``docs/OBSERVABILITY.md`` for the full API and schema.
"""

from .export import (append_jsonl, canonical_json, default_telemetry_path,
                     read_jsonl, render_summary, snapshot_record,
                     to_prometheus, write_csv)
from .handle import Telemetry, TelemetryConfig
from .metrics import (TELEMETRY_SCHEMA, Counter, Gauge, Histogram,
                      MetricRegistry, empty_snapshot, log_bounds,
                      merge_into, merge_snapshots)
from .probes import ClusterProbes, ProbeSample
from .spans import SpanTracker

__all__ = [
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "TelemetryConfig",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_bounds",
    "empty_snapshot",
    "merge_into",
    "merge_snapshots",
    "ClusterProbes",
    "ProbeSample",
    "SpanTracker",
    "append_jsonl",
    "canonical_json",
    "default_telemetry_path",
    "read_jsonl",
    "render_summary",
    "snapshot_record",
    "to_prometheus",
    "write_csv",
]
