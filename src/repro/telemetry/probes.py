"""Periodic cluster-state probes driven by the simulator's timers.

A :class:`ClusterProbes` instance owns the gauges for the time-varying
quantities the paper reasons about — recovery bandwidth in use vs. the
configured cap (the 20%-of-80 MB/s rule), disk counts by
:class:`~repro.disks.disk.DiskState`, degraded-group count, the
deferred-rebuild queue depth, and per-disk rebuild-load imbalance — and
samples them on a :class:`~repro.sim.engine.PeriodicTimer`
(``sim.every``), so a probe at interval ``T`` over horizon ``H`` observes
exactly ``floor(H / T)`` samples.

Probes are strictly read-only: the sampler an engine provides computes a
:class:`ProbeSample` from current state, draws no randomness, and mutates
nothing, so arming probes cannot perturb simulation results (probe events
only shift the global event sequence counter uniformly, which preserves
the relative order of all other events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from ..sim.engine import PeriodicTimer, Simulator
    from .handle import Telemetry


@dataclass(frozen=True)
class ProbeSample:
    """One read-only observation of cluster state, in base units."""

    #: Aggregate recovery bandwidth in use right now (sum over disks with
    #: an active rebuild write), bytes/second.
    bandwidth_in_use_bps: float
    #: Largest per-disk recovery bandwidth in use, bytes/second.  The
    #: paper's cap is per disk, so this is the gauge checked against it.
    disk_bandwidth_max_bps: float
    #: The configured per-disk recovery cap, bytes/second.
    bandwidth_cap_bps: float
    #: Disk population by DiskState name ("online", "failed", ...).
    disks_by_state: dict[str, int] = field(default_factory=dict)
    #: Groups currently missing at least one block (and not lost).
    degraded_groups: int = 0
    #: Rebuilds parked in the deferred queue right now.
    deferred_rebuilds: int = 0
    #: Max / mean completed-rebuild-writes per live disk (imbalance).
    rebuild_load_max: float = 0.0
    rebuild_load_mean: float = 0.0
    #: Recovery bandwidth in use per rack (rack id -> bytes/s); populated
    #: only under a non-flat failure-domain topology.
    bandwidth_by_rack: dict[str, float] = field(default_factory=dict)


class ClusterProbes:
    """Gauge bank + timer wiring for periodic :class:`ProbeSample` s."""

    def __init__(self, telemetry: "Telemetry") -> None:
        registry = telemetry.registry
        self.samples = registry.counter(
            "repro_probe_samples_total", help="periodic probe firings")
        self.bandwidth_in_use = registry.gauge(
            "repro_recovery_bandwidth_in_use_bps",
            help="aggregate recovery bandwidth in use (bytes/s)")
        self.disk_bandwidth_max = registry.gauge(
            "repro_recovery_disk_bandwidth_bps",
            help="largest per-disk recovery bandwidth in use (bytes/s); "
                 "never exceeds the configured cap")
        self.bandwidth_cap = registry.gauge(
            "repro_recovery_bandwidth_cap_bps",
            help="configured per-disk recovery cap (bytes/s)")
        self.degraded_groups = registry.gauge(
            "repro_degraded_groups",
            help="groups missing at least one block (not lost)")
        self.deferred_rebuilds = registry.gauge(
            "repro_deferred_rebuilds",
            help="rebuilds parked in the deferred queue")
        self.rebuild_load_max = registry.gauge(
            "repro_rebuild_load_max",
            help="max completed rebuild writes on any live disk")
        self.rebuild_load_mean = registry.gauge(
            "repro_rebuild_load_mean",
            help="mean completed rebuild writes per live disk")
        self.rebuild_load_imbalance = registry.gauge(
            "repro_rebuild_load_imbalance",
            help="max/mean ratio of per-disk rebuild writes (1.0 = even)")
        self._state_gauges: dict[str, object] = {}
        self._rack_gauges: dict[str, object] = {}
        self._registry = registry
        self._timer: "PeriodicTimer | None" = None

    # ------------------------------------------------------------------ #
    def attach(self, sim: "Simulator",
               sampler: Callable[[], ProbeSample],
               interval_s: float, until: float) -> "PeriodicTimer":
        """Arm the periodic probe; ``sampler`` must be read-only."""
        self._timer = sim.every(interval_s, self._tick, sampler,
                                until=until, name="telemetry-probe")
        return self._timer

    def _tick(self, sampler: Callable[[], ProbeSample]) -> None:
        self.record(sampler())

    def record(self, s: ProbeSample) -> None:
        """Fold one observation into the gauges."""
        self.samples.inc()
        self.bandwidth_in_use.set(s.bandwidth_in_use_bps)
        self.disk_bandwidth_max.set(s.disk_bandwidth_max_bps)
        self.bandwidth_cap.set(s.bandwidth_cap_bps)
        self.degraded_groups.set(s.degraded_groups)
        self.deferred_rebuilds.set(s.deferred_rebuilds)
        self.rebuild_load_max.set(s.rebuild_load_max)
        self.rebuild_load_mean.set(s.rebuild_load_mean)
        if s.rebuild_load_mean > 0:
            imbalance = s.rebuild_load_max / s.rebuild_load_mean
        else:
            imbalance = 1.0
        self.rebuild_load_imbalance.set(imbalance)
        for state in sorted(s.disks_by_state):
            gauge = self._state_gauges.get(state)
            if gauge is None:
                gauge = self._registry.gauge(
                    "repro_disks", help="disk population by state",
                    labels={"state": state})
                self._state_gauges[state] = gauge
            gauge.set(s.disks_by_state[state])
        for rack in sorted(s.bandwidth_by_rack):
            gauge = self._rack_gauges.get(rack)
            if gauge is None:
                gauge = self._registry.gauge(
                    "repro_recovery_bandwidth_by_rack_bps",
                    help="recovery bandwidth in use per rack (bytes/s)",
                    labels={"rack": rack})
                self._rack_gauges[rack] = gauge
            gauge.set(s.bandwidth_by_rack[rack])
