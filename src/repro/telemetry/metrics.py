"""Deterministic, merge-able metric primitives.

A :class:`MetricRegistry` holds :class:`Counter`, :class:`Gauge` and
:class:`Histogram` instruments keyed by ``name`` plus a sorted label set.
Everything here is designed around one property the rest of the repository
already guarantees for :class:`~repro.reliability.runner.StatsAggregate`:
**bit-identical parallel aggregation**.  A registry snapshots to a plain
dict (JSON-safe, picklable) and snapshots :func:`merge_into` one another;
integer fields are order-free sums, float fields are folded by the sweep
runner strictly in run-index order, so the merged snapshot of a parallel
sweep is byte-identical to the serial one.

Histograms use *fixed* bucket bounds (log-spaced via :func:`log_bounds`)
chosen at construction from the config — never from the data — so any two
snapshots of the same metric are mergeable by plain element-wise addition.

No instrument reads the wall clock or draws randomness: telemetry observes
simulated time only (lint rule RPR011 enforces this for the package).
"""

from __future__ import annotations

from typing import Sequence

#: Schema tag stamped on every snapshot and JSONL record.
TELEMETRY_SCHEMA = "repro.telemetry.v1"


def log_bounds(lo: float, hi: float, per_decade: int = 4) -> tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds covering [lo, hi].

    Returns ``per_decade`` bounds per power of ten starting at ``lo``,
    extended until a bound reaches ``hi``.  The terminal +inf bucket is
    implicit (histograms count overflows in their last slot).  Bounds are
    a pure function of the arguments, so two histograms configured alike
    are always mergeable.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds: list[float] = []
    i = 0
    while True:
        b = lo * 10.0 ** (i / per_decade)
        bounds.append(b)
        if b >= hi:
            return tuple(bounds)
        i += 1


def _label_key(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class Metric:
    """Shared identity: name, help text, sorted labels."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.key = name + _label_key(self.labels)

    def _base(self) -> dict:
        return {"name": self.name, "kind": self.kind, "help": self.help,
                "labels": dict(self.labels)}


class Counter(Metric):
    """Monotonically increasing sum (int stays int, float stays float)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict:
        d = self._base()
        d["value"] = self.value
        return d


class Gauge(Metric):
    """Point-in-time samples: last / min / max / sum / count."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self.last: float = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.total: float = 0.0
        self.samples: int = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        self.total += value
        self.samples += 1

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def to_dict(self) -> dict:
        d = self._base()
        d.update(last=self.last, min=self.vmin, max=self.vmax,
                 sum=self.total, samples=self.samples)
        return d


class Histogram(Metric):
    """Fixed-bound histogram with non-cumulative per-bucket counts.

    ``counts[i]`` counts observations ``<= bounds[i]`` (exclusive of the
    previous bound); ``counts[-1]`` is the +inf overflow bucket, so
    ``len(counts) == len(bounds) + 1``.  Exporters derive the cumulative
    Prometheus form; keeping raw counts makes merging element-wise.
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float], help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0
        self.vmin: float | None = None
        self.vmax: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        # Linear scan is fine: bucket lists are short and observation
        # happens once per completed rebuild, not per event.
        for i, b in enumerate(self.bounds):
            if value <= b:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        d = self._base()
        d.update(bounds=list(self.bounds), counts=list(self.counts),
                 sum=self.total, count=self.count, min=self.vmin,
                 max=self.vmax)
        return d


class MetricRegistry:
    """Get-or-create store of instruments, snapshot-able to a plain dict."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def _get_or_create(self, cls, name: str, help: str,
                       labels: dict[str, str] | None, **kwargs) -> Metric:
        key = name + _label_key(labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(f"{key} already registered as "
                                f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, help=help, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: dict[str, str] | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, bounds: Sequence[float],
                  help: str = "",
                  labels: dict[str, str] | None = None) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labels,
                                     bounds=bounds)
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"{metric.key} re-registered with different "
                             f"bucket bounds")
        return metric

    def snapshot(self) -> dict:
        """Plain-dict snapshot, keys in sorted order (canonical layout)."""
        return {"schema": TELEMETRY_SCHEMA,
                "metrics": {key: self._metrics[key].to_dict()
                            for key in sorted(self._metrics)}}


# --------------------------------------------------------------------- #
# Snapshot merging
# --------------------------------------------------------------------- #
def empty_snapshot() -> dict:
    """A neutral element for :func:`merge_into` folds."""
    return {"schema": TELEMETRY_SCHEMA, "metrics": {}}


def _merged_min(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _merged_max(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def merge_into(acc: dict, snap: dict) -> dict:
    """Fold snapshot ``snap`` into accumulator ``acc`` (mutates, returns it).

    Integer fields (counts, samples) are order-free; float sums are exact
    only for a *fixed* fold order — the sweep runner folds in run-index
    order, which is what makes parallel merges byte-identical to serial.
    A gauge's ``last`` after a merge is the last-folded run's value
    (deterministic for the same reason).
    """
    for schema in (acc.get("schema"), snap.get("schema")):
        if schema != TELEMETRY_SCHEMA:
            raise ValueError(f"cannot merge snapshot with schema {schema!r}")
    out = acc["metrics"]
    for key, entry in snap["metrics"].items():
        mine = out.get(key)
        if mine is None:
            out[key] = {k: (list(v) if isinstance(v, list) else
                            dict(v) if isinstance(v, dict) else v)
                        for k, v in entry.items()}
            continue
        if mine["kind"] != entry["kind"]:
            raise ValueError(f"{key}: kind {mine['kind']} != "
                             f"{entry['kind']}")
        kind = entry["kind"]
        if kind == "counter":
            mine["value"] += entry["value"]
        elif kind == "gauge":
            mine["last"] = entry["last"]
            mine["min"] = _merged_min(mine["min"], entry["min"])
            mine["max"] = _merged_max(mine["max"], entry["max"])
            mine["sum"] += entry["sum"]
            mine["samples"] += entry["samples"]
        elif kind == "histogram":
            if mine["bounds"] != entry["bounds"]:
                raise ValueError(f"{key}: mismatched histogram bounds")
            mine["counts"] = [a + b for a, b in zip(mine["counts"],
                                                    entry["counts"])]
            mine["sum"] += entry["sum"]
            mine["count"] += entry["count"]
            mine["min"] = _merged_min(mine["min"], entry["min"])
            mine["max"] = _merged_max(mine["max"], entry["max"])
        else:
            raise ValueError(f"{key}: unknown metric kind {kind!r}")
    # Keep canonical (sorted) key order however merges interleaved.
    acc["metrics"] = {k: out[k] for k in sorted(out)}
    return acc


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Left fold of :func:`merge_into` over ``snapshots``, in order."""
    acc = empty_snapshot()
    for snap in snapshots:
        merge_into(acc, snap)
    return acc
