"""The `Telemetry` facade the engines instrument against.

Both engines take a nullable ``telemetry=`` handle; every instrumentation
site is ``if self.telemetry is not None: ...`` so the disabled path costs
one attribute test per event (pinned <= 3% by
``benchmarks/bench_telemetry_overhead.py``).  A :class:`TelemetryConfig`
is a small frozen dataclass — picklable, so the sweep runner can ship it
to worker processes, which construct their own :class:`Telemetry` per run
and return the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..units import DAY, MONTH, SECOND
from .metrics import MetricRegistry, log_bounds
from .probes import ClusterProbes, ProbeSample
from .spans import SpanTracker

if TYPE_CHECKING:
    from ..sim.engine import Simulator

#: (attribute, metric name, help) for the engine-hook counters.
_COUNTER_SPECS: tuple[tuple[str, str, str], ...] = (
    ("disk_failures", "repro_disk_failures_total",
     "whole-disk failures processed"),
    ("rebuilds_started", "repro_rebuilds_started_total",
     "block rebuilds started"),
    ("rebuilds_completed", "repro_rebuilds_completed_total",
     "block rebuilds completed"),
    ("target_redirections", "repro_target_redirections_total",
     "rebuilds restarted because their target died/vanished"),
    ("source_redirections", "repro_source_redirections_total",
     "rebuilds that swapped in an alternative source"),
    ("rebuilds_deferred", "repro_rebuilds_deferred_total",
     "rebuilds parked in the deferred queue"),
    ("rebuild_retries", "repro_rebuild_retries_total",
     "deferred-rebuild retry attempts"),
    ("rebuilds_unplaced", "repro_rebuilds_unplaced_total",
     "rebuilds with no admissible target right now (fast engine; "
     "parked in the deferred queue for retry)"),
    ("rebuilds_deferred_constraint",
     "repro_rebuilds_deferred_constraint_total",
     "rebuilds deferred because the failure-domain placement cap vetoed "
     "every otherwise admissible target"),
    ("domain_colocated_losses", "repro_domain_colocated_losses_total",
     "block losses whose group kept another live block in the failing "
     "disk's rack (domain co-vulnerability)"),
    ("groups_lost", "repro_groups_lost_total",
     "redundancy groups that lost more blocks than the scheme tolerates"),
    ("latent_discovered", "repro_latent_discovered_total",
     "latent sector errors surfaced by a scrub or rebuild read"),
    ("latent_injected", "repro_latent_injected_total",
     "latent sector errors injected by fault processes"),
    ("scrubs", "repro_scrubs_total", "per-disk scrub passes"),
    ("scrub_discoveries", "repro_scrub_discoveries_total",
     "latent errors found by scrubbing"),
    ("transient_outages", "repro_transient_outages_total",
     "transient disk outages processed"),
    ("replacement_batches", "repro_replacement_batches_total",
     "batch replacements triggered"),
    ("blocks_migrated", "repro_blocks_migrated_total",
     "blocks rebalanced onto replacement batches"),
    ("spares_provisioned", "repro_spares_provisioned_total",
     "dedicated spares provisioned (traditional recovery)"),
    ("index_entries_compacted", "repro_index_entries_compacted_total",
     "stale disk->group index entries swept by compaction"),
    ("rebuilds_held", "repro_rebuilds_held_total",
     "rebuilds held back by the lazy recovery_threshold trigger"),
    ("held_released", "repro_held_released_total",
     "held rebuilds released once a group crossed its lazy threshold"),
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for one telemetry-enabled run (picklable; worker-safe)."""

    #: Period of the cluster-state probe (seconds of simulated time).
    probe_interval_s: float = DAY
    #: Window-of-vulnerability histogram bucket range (seconds) and
    #: log-spaced resolution.
    window_bucket_lo_s: float = SECOND
    window_bucket_hi_s: float = MONTH
    window_buckets_per_decade: int = 4
    #: Heartbeat detection-latency histogram bucket range (seconds).
    detection_bucket_lo_s: float = SECOND
    detection_bucket_hi_s: float = DAY
    detection_buckets_per_decade: int = 4

    def window_bounds(self) -> tuple[float, ...]:
        return log_bounds(self.window_bucket_lo_s, self.window_bucket_hi_s,
                          self.window_buckets_per_decade)

    def detection_bounds(self) -> tuple[float, ...]:
        return log_bounds(self.detection_bucket_lo_s,
                          self.detection_bucket_hi_s,
                          self.detection_buckets_per_decade)


class Telemetry:
    """One run's worth of instruments: counters, probes, window spans."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.registry = MetricRegistry()
        for attr, name, help_text in _COUNTER_SPECS:
            setattr(self, attr, self.registry.counter(name, help=help_text))
        self.latent_window_seconds = self.registry.counter(
            "repro_latent_window_seconds_total",
            help="sum of (discovery - corruption) over latent errors")
        self.windows = SpanTracker(
            self.registry, "repro_window_of_vulnerability_seconds",
            bounds=self.config.window_bounds(),
            help="window of vulnerability per completed rebuild (seconds), "
                 "bucketed by redundancy-group size n")
        self.group_unavailability = SpanTracker(
            self.registry, "repro_group_unavailability_seconds",
            bounds=self.config.window_bounds(),
            help="per-group degraded (unavailable) span: first block "
                 "failure to full redundancy restored (seconds), bucketed "
                 "by redundancy-group size n")
        # Fixed bounds from the config (never from the data), so parallel
        # sweep snapshots merge element-wise exactly like the span
        # histograms, in run-index order.
        self.detection_latencies = self.registry.histogram(
            "repro_detection_latency_seconds",
            bounds=self.config.detection_bounds(),
            help="heartbeat failure-detection latency per declared disk "
                 "(seconds)")
        self.probes = ClusterProbes(self)

    # -- span convenience hooks (names match the engine call sites) ------ #
    def block_failed(self, grp_id: int, rep_id: int, now: float,
                     group_size: int) -> None:
        """A block became unavailable: open its vulnerability span."""
        self.windows.begin((grp_id, rep_id), now, group_size)

    def block_rebuilt(self, grp_id: int, rep_id: int, now: float) -> None:
        """Its re-replication completed: close the span."""
        self.windows.end((grp_id, rep_id), now)

    def group_degraded(self, grp_id: int, now: float,
                       group_size: int) -> None:
        """First block of the group went missing: open its span."""
        self.group_unavailability.begin((grp_id, -1), now, group_size)

    def group_restored(self, grp_id: int, now: float) -> None:
        """Full redundancy restored: close the unavailability span."""
        self.group_unavailability.end((grp_id, -1), now)

    def group_lost(self, grp_id: int) -> None:
        """The group died: abort its open spans, count the loss."""
        self.groups_lost.inc()
        self.windows.abort_group(grp_id)
        self.group_unavailability.abort_group(grp_id)

    def detection_latency(self, latency_s: float) -> None:
        """A heartbeat monitor declared a disk failed after ``latency_s``."""
        self.detection_latencies.observe(latency_s)

    # -- probes ---------------------------------------------------------- #
    def attach_probes(self, sim: "Simulator",
                      sampler: Callable[[], ProbeSample],
                      until: float) -> None:
        """Arm the periodic cluster-state probe on ``sim``."""
        self.probes.attach(sim, sampler, self.config.probe_interval_s,
                           until)

    # -- output ---------------------------------------------------------- #
    def snapshot(self) -> dict:
        """Plain-dict snapshot of every instrument (schema
        ``repro.telemetry.v1``); safe to pickle, merge, and export."""
        self.windows.sync_open_gauge()
        self.group_unavailability.sync_open_gauge()
        return self.registry.snapshot()
