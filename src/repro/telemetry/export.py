"""Telemetry snapshot exporters: JSONL, CSV, Prometheus text format.

The canonical on-disk form is JSON Lines, one merged snapshot per sweep
point::

    {"schema": "repro.telemetry.v1", "sweep": "...", "point": "farm",
     "n_runs": 100, "metrics": {...}}

``canonical_json`` (sorted keys, compact separators) is the byte-level
identity the ``sweep-check`` CLI asserts between serial and parallel runs.
The CSV form flattens every metric field to ``(name, labels, field,
value)`` rows; the Prometheus form follows the text exposition format
(``# HELP`` / ``# TYPE``, cumulative ``_bucket{le=...}`` histograms) so a
snapshot can be dropped behind any scrape endpoint.

The sink path mirrors the sweep runner's ``REPRO_BENCH_PATH`` convention:
``REPRO_TELEMETRY_PATH`` names the JSONL file (empty string disables; no
default — telemetry is opt-in).
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Iterable, TextIO

from .metrics import TELEMETRY_SCHEMA


def default_telemetry_path() -> Path | None:
    """Where merged sweep snapshots go (None = telemetry sink disabled)."""
    env = os.environ.get("REPRO_TELEMETRY_PATH")
    if env:
        return Path(env)
    return None


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


# --------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------- #
def snapshot_record(snapshot: dict, **meta: Any) -> dict:
    """Wrap a snapshot with metadata (sweep/point/n_runs) for JSONL."""
    if snapshot.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(f"not a telemetry snapshot: "
                         f"{snapshot.get('schema')!r}")
    record = {"schema": TELEMETRY_SCHEMA}
    record.update(meta)
    record["metrics"] = snapshot["metrics"]
    return record


def append_jsonl(path: str | Path, snapshot: dict, **meta: Any) -> None:
    """Append one snapshot record to a JSONL file (creating parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(canonical_json(snapshot_record(snapshot, **meta)) + "\n")


def read_jsonl(path: str | Path) -> list[dict]:
    """Load every snapshot record from a JSONL file (schema-checked)."""
    records = []
    with Path(path).open(encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema") != TELEMETRY_SCHEMA:
                raise ValueError(f"{path}:{line_no}: schema "
                                 f"{record.get('schema')!r} is not "
                                 f"{TELEMETRY_SCHEMA}")
            records.append(record)
    return records


# --------------------------------------------------------------------- #
# CSV
# --------------------------------------------------------------------- #
def _flat_fields(entry: dict) -> Iterable[tuple[str, Any]]:
    kind = entry["kind"]
    if kind == "counter":
        yield "value", entry["value"]
    elif kind == "gauge":
        for f in ("last", "min", "max", "sum", "samples"):
            yield f, entry[f]
    elif kind == "histogram":
        for f in ("sum", "count", "min", "max"):
            yield f, entry[f]
        for bound, n in zip(entry["bounds"] + [float("inf")],
                            entry["counts"]):
            yield f"bucket_le_{bound}", n


def write_csv(snapshot: dict, file: TextIO) -> int:
    """Flatten a snapshot to ``name,labels,kind,field,value`` rows."""
    writer = csv.writer(file)
    writer.writerow(["name", "labels", "kind", "field", "value"])
    rows = 0
    for key in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][key]
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(entry["labels"].items()))
        for field_name, value in _flat_fields(entry):
            writer.writerow([entry["name"], labels, entry["kind"],
                             field_name, value])
            rows += 1
    return rows


# --------------------------------------------------------------------- #
# Prometheus text exposition format
# --------------------------------------------------------------------- #
def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    return repr(v) if isinstance(v, float) else str(v)


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for key in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][key]
        name, kind = entry["name"], entry["kind"]
        if name not in seen_headers:
            seen_headers.add(name)
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {kind}")
        labels = entry["labels"]
        if kind == "counter":
            lines.append(f"{name}{_prom_labels(labels)} "
                         f"{_prom_number(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"{name}{_prom_labels(labels)} "
                         f"{_prom_number(entry['last'])}")
        elif kind == "histogram":
            cumulative = 0
            for bound, n in zip(entry["bounds"] + [float("inf")],
                                entry["counts"]):
                cumulative += n
                le = _prom_labels(labels,
                                  f'le="{_prom_number(float(bound))}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_prom_number(entry['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# Human summary (the `telemetry-summary` CLI)
# --------------------------------------------------------------------- #
def render_summary(records: list[dict]) -> str:
    """One compact block per JSONL record: headline counters + windows."""
    if not records:
        return "no telemetry records"
    out: list[str] = []
    for record in records:
        title = record.get("point", "snapshot")
        sweep = record.get("sweep")
        n_runs = record.get("n_runs")
        header = f"{sweep}/{title}" if sweep else str(title)
        if n_runs:
            header += f" ({n_runs} runs)"
        out.append(header)
        metrics = record["metrics"]

        def val(name: str, field: str = "value") -> Any:
            entry = metrics.get(name)
            return entry[field] if entry is not None else 0

        lost = val('repro_groups_lost_total')
        out.append(f"  disk failures {val('repro_disk_failures_total')}, "
                   f"rebuilds {val('repro_rebuilds_completed_total')}/"
                   f"{val('repro_rebuilds_started_total')} completed, "
                   f"groups lost {lost}")
        if n_runs and not lost:
            # Zero observed losses mostly measures budget, not safety:
            # surface the rule-of-three bound next to the zero.
            bound = min(1.0, 3.0 / n_runs)
            out.append(f"  zero-hit: no losses in {n_runs} runs; "
                       f"p_loss <= {bound:.3g} (rule of 3)")
        completed = val(
            "repro_window_of_vulnerability_seconds_spans_completed_total")
        span_sum = val("repro_window_of_vulnerability_seconds_sum_total")
        mean = span_sum / completed if completed else 0.0
        out.append(f"  windows: {completed} spans, mean {mean:,.1f} s")
        bw = metrics.get("repro_recovery_disk_bandwidth_bps")
        cap = metrics.get("repro_recovery_bandwidth_cap_bps")
        if bw is not None and bw["samples"]:
            cap_s = f" (cap {cap['last']:,.0f})" if cap is not None else ""
            out.append(f"  per-disk recovery bandwidth max "
                       f"{bw['max']:,.0f} B/s{cap_s}, "
                       f"{bw['samples']} probe samples")
    return "\n".join(out)
