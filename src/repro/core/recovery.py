"""Shared recovery machinery: jobs, statistics, and the manager base class.

A :class:`RecoveryManager` reacts to disk-failure events on the DES: it
updates group state, schedules rebuild jobs, redirects jobs whose target or
source dies mid-flight, and accounts for data loss.  The two concrete
managers are :class:`~repro.core.farm.FarmRecovery` (the paper's
contribution) and :class:`~repro.core.traditional.TraditionalRecovery` (the
RAID baseline).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..cluster.system import StorageSystem
from ..redundancy.group import RedundancyGroup
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.resources import SerialServer


@dataclass
class RecoveryStats:
    """Aggregate outcome of one simulated system lifetime."""

    rebuilds_started: int = 0
    rebuilds_completed: int = 0
    target_redirections: int = 0
    source_redirections: int = 0
    groups_lost: int = 0
    bytes_lost: float = 0.0
    first_loss_time: float | None = None
    disk_failures: int = 0
    window_total: float = 0.0     # sum of (rebuild completion - failure time)
    window_max: float = 0.0
    replacement_batches: int = 0
    blocks_migrated: int = 0

    @property
    def any_loss(self) -> bool:
        return self.groups_lost > 0

    @property
    def mean_window(self) -> float:
        """Mean window of vulnerability over completed rebuilds."""
        if self.rebuilds_completed == 0:
            return 0.0
        return self.window_total / self.rebuilds_completed

    def record_loss(self, group: RedundancyGroup, now: float) -> None:
        self.groups_lost += 1
        self.bytes_lost += group.user_bytes
        if self.first_loss_time is None:
            self.first_loss_time = now


@dataclass(eq=False)     # identity semantics: jobs live in hash sets
class RebuildJob:
    """One in-flight block reconstruction."""

    group: RedundancyGroup
    rep_id: int
    target: int
    failed_at: float           # when the block became unavailable
    sources: tuple[int, ...] = ()
    event: Event | None = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class RecoveryManager(ABC):
    """Base class wiring a recovery scheme into the simulator."""

    def __init__(self, system: StorageSystem, sim: Simulator) -> None:
        self.system = system
        self.sim = sim
        self.config = system.config
        self.stats = RecoveryStats()
        # Per-disk FCFS queues for recovery writes.
        self._servers: dict[int, SerialServer] = {}
        # In-flight indexes.
        self._jobs_by_target: dict[int, set[RebuildJob]] = {}
        self._jobs_by_group: dict[int, set[RebuildJob]] = {}
        self._jobs_by_source: dict[int, set[RebuildJob]] = {}
        # Bytes promised to in-flight rebuilds, per target disk: selection
        # must treat reserved space as used or concurrent jobs could
        # collectively overflow a target.
        self._reserved: dict[int, float] = {}

    # -- queues ------------------------------------------------------------ #
    def server(self, disk_id: int) -> SerialServer:
        srv = self._servers.get(disk_id)
        if srv is None:
            srv = SerialServer()
            self._servers[disk_id] = srv
        return srv

    def busy_until(self, disk_id: int) -> float:
        srv = self._servers.get(disk_id)
        return srv.free_at if srv is not None else 0.0

    # -- job bookkeeping --------------------------------------------------- #
    def reserved_bytes(self, disk_id: int) -> float:
        """Space promised to in-flight rebuilds targeting ``disk_id``."""
        return self._reserved.get(disk_id, 0.0)

    def _register(self, job: RebuildJob) -> None:
        self._jobs_by_target.setdefault(job.target, set()).add(job)
        self._jobs_by_group.setdefault(job.group.grp_id, set()).add(job)
        for s in job.sources:
            self._jobs_by_source.setdefault(s, set()).add(job)
        self._reserved[job.target] = (self._reserved.get(job.target, 0.0)
                                      + self.config.block_bytes)

    def _unregister(self, job: RebuildJob) -> None:
        if job in self._jobs_by_target.get(job.target, set()):
            self._reserved[job.target] = max(
                0.0, self._reserved.get(job.target, 0.0)
                - self.config.block_bytes)
        self._jobs_by_target.get(job.target, set()).discard(job)
        self._jobs_by_group.get(job.group.grp_id, set()).discard(job)
        for s in job.sources:
            self._jobs_by_source.get(s, set()).discard(job)

    # -- the common failure path -------------------------------------------- #
    def on_disk_failure(self, disk_id: int) -> None:
        """DES callback: disk ``disk_id`` fails now."""
        now = self.sim.now
        if not self.system.disks[disk_id].online:
            return      # already failed/retired (stale event)
        self.stats.disk_failures += 1
        affected = self.system.fail_disk(disk_id, now)

        # Jobs whose *target* just died: pick another target (paper §2.3,
        # "we merely choose an alternative target") — recovery redirection.
        for job in list(self._jobs_by_target.get(disk_id, ())):
            self._unregister(job)
            job.cancel()
            if job.group.lost:
                continue
            self.stats.target_redirections += 1
            self._reschedule(job, now)

        # Jobs that were *reading* from the dead disk but whose group still
        # has enough survivors: swap in an alternative source at no cost.
        for job in list(self._jobs_by_source.get(disk_id, ())):
            if job.cancelled or job.group.lost:
                continue
            self.stats.source_redirections += 1
            job.sources = tuple(s for s in job.sources if s != disk_id)

        # New block losses.
        newly_lost: list[tuple[RedundancyGroup, int]] = []
        for group, reps in affected:
            if group.lost and group.loss_time == now:
                self.stats.record_loss(group, now)
                for job in list(self._jobs_by_group.get(group.grp_id, ())):
                    self._unregister(job)
                    job.cancel()
                continue
            if group.lost:
                continue
            for rep in reps:
                newly_lost.append((group, rep))
        if newly_lost:
            self._schedule_rebuilds(disk_id, newly_lost, now)
        self._after_failure(disk_id, now)

    # -- completion path ---------------------------------------------------- #
    def _complete(self, job: RebuildJob) -> None:
        if job.cancelled or job.group.lost:
            return
        now = self.sim.now
        target = self.system.disks[job.target]
        if not target.online:
            # Defensive: a redirect should already have happened.
            self._unregister(job)
            self.stats.target_redirections += 1
            self._reschedule(job, now)
            return
        self._unregister(job)
        job.group.complete_rebuild(job.rep_id, job.target,
                                   allow_buddy=self._allows_buddy())
        target.allocate(self.config.block_bytes)
        self.system.note_block_moved(job.group.grp_id, job.target)
        self.stats.rebuilds_completed += 1
        window = now - job.failed_at
        self.stats.window_total += window
        self.stats.window_max = max(self.stats.window_max, window)

    # -- scheme-specific hooks ---------------------------------------------- #
    @abstractmethod
    def _schedule_rebuilds(self, failed_disk: int,
                           losses: list[tuple[RedundancyGroup, int]],
                           now: float) -> None:
        """Schedule reconstruction of the given (group, rep) losses."""

    @abstractmethod
    def _reschedule(self, job: RebuildJob, now: float) -> None:
        """Restart a job whose target died mid-rebuild."""

    def _after_failure(self, disk_id: int, now: float) -> None:
        """Hook for replacement policies; default does nothing."""

    def _allows_buddy(self) -> bool:
        """Whether this manager's policy permits buddy co-location (only
        true in ablation studies with forbid_buddy disabled)."""
        return False
