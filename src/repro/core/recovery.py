"""Shared recovery machinery: jobs, statistics, and the manager base class.

A :class:`RecoveryManager` reacts to disk-failure events on the DES: it
updates group state, schedules rebuild jobs, redirects jobs whose target or
source dies mid-flight, and accounts for data loss.  The two concrete
managers are :class:`~repro.core.farm.FarmRecovery` (the paper's
contribution) and :class:`~repro.core.traditional.TraditionalRecovery` (the
RAID baseline).

Graceful degradation.  A rebuild that cannot start right now — every
admissible target is full, or every source replica is transiently offline —
is never dropped: it lands in a *deferred-rebuild queue* and retries with
exponential backoff (capped), re-armed immediately by events that change
the answer (a replacement batch, a provisioned spare, a disk returning from
an outage).  Deferrals and retries are counted in :class:`RecoveryStats`
and emitted as ``rebuild-deferred`` trace markers, so a degraded group is
always visible in the stats and the timeline.

The manager also understands two fault kinds beyond whole-disk death (see
:mod:`repro.faults`): *transient outages* (:meth:`on_disk_offline` /
:meth:`on_disk_online` redirect in-flight work instead of counting losses)
and *latent sector errors* (:meth:`discover_latent` turns a scrub or
rebuild-read discovery into an ordinary per-block rebuild).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..availability.luby import check_repair_lane
from ..availability.queue import RepairPriority, RepairPriorityQueue
from ..cluster.system import StorageSystem
from ..redundancy.group import RedundancyGroup
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.resources import SerialServer
from ..telemetry.handle import Telemetry
from ..telemetry.probes import ProbeSample
from ..units import MINUTE


@dataclass
class RecoveryStats:
    """Aggregate outcome of one simulated system lifetime."""

    rebuilds_started: int = 0
    rebuilds_completed: int = 0
    target_redirections: int = 0
    source_redirections: int = 0
    groups_lost: int = 0
    bytes_lost: float = 0.0
    first_loss_time: float | None = None
    disk_failures: int = 0
    window_total: float = 0.0     # sum of (rebuild completion - failure time)
    window_max: float = 0.0
    replacement_batches: int = 0
    blocks_migrated: int = 0
    #: Rebuilds that could not start (no target / no readable source) and
    #: were parked in the deferred-rebuild queue instead of being dropped.
    rebuilds_deferred: int = 0
    #: Subset of ``rebuilds_deferred`` parked because every otherwise
    #: admissible target was vetoed by the failure-domain placement cap
    #: (``max_chunks_per_domain``): the policy defers, never violates.
    rebuilds_deferred_constraint: int = 0
    #: Block losses where the group still held another live block in the
    #: failing disk's *rack* — placement left the group co-vulnerable to
    #: that domain.  Only counted under a non-flat topology.
    domain_colocated_losses: int = 0
    #: Deferred-rebuild retry attempts (backoff or re-arm firings).
    retries: int = 0
    #: Latent sector errors surfaced by a scrub or a rebuild read.
    latent_errors_discovered: int = 0
    #: Sum over discoveries of (discovery time - corruption time).
    latent_window_total: float = 0.0
    #: Transient outages processed (disk went offline and work redirected).
    transient_outages: int = 0
    #: Seconds of per-group *unavailability*: summed over closed degraded
    #: spans (first block failure -> full redundancy restored).  Spans
    #: still open at the horizon are closed by :meth:`RecoveryManager.
    #: finalize`; spans ended by data loss are dropped — loss belongs to
    #: durability's ledger, not availability's (the telemetry span
    #: tracker aborts the same spans, keeping ``*_sum_total`` exactly
    #: equal to this field).
    unavail_group_seconds: float = 0.0
    #: Closed unavailability spans (horizon closures included).
    unavail_spans: int = 0
    #: Longest single unavailability span.
    unavail_max: float = 0.0
    #: Rebuilds parked by the lazy-recovery trigger
    #: (``recovery_threshold`` > 1), awaiting further failures.
    rebuilds_held: int = 0
    #: Log likelihood-ratio weight of this run under an importance-sampled
    #: estimator (0.0 — i.e. weight 1 — for ordinary runs).  Weights are
    #: only ever *applied* through
    #: :class:`repro.reliability.stats.WeightedAggregate`; lint rule
    #: RPR012 rejects ad-hoc weight arithmetic in experiment code.
    log_weight: float = 0.0

    @property
    def weight(self) -> float:
        """The run's likelihood-ratio weight, exp(log_weight)."""
        return math.exp(self.log_weight)

    @property
    def any_loss(self) -> bool:
        return self.groups_lost > 0

    @property
    def mean_window(self) -> float:
        """Mean window of vulnerability over completed rebuilds."""
        if self.rebuilds_completed == 0:
            return 0.0
        return self.window_total / self.rebuilds_completed

    @property
    def mean_latent_window(self) -> float:
        """Mean time a latent error stayed undiscovered (0 if none found)."""
        if self.latent_errors_discovered == 0:
            return 0.0
        return self.latent_window_total / self.latent_errors_discovered

    def availability(self, n_groups: int, duration: float) -> float:
        """Fraction of group-seconds spent fully redundant, in [0, 1]."""
        from ..availability.metrics import availability_fraction
        return availability_fraction(self.unavail_group_seconds, n_groups,
                                     duration)

    def nines(self, n_groups: int, duration: float) -> float:
        """The run's availability as "nines" (inf for a clean run)."""
        from ..availability.metrics import availability_nines
        return availability_nines(self.availability(n_groups, duration))

    def record_loss(self, group: RedundancyGroup, now: float) -> None:
        self.groups_lost += 1
        self.bytes_lost += group.user_bytes
        if self.first_loss_time is None:
            self.first_loss_time = now


@dataclass(eq=False)     # identity semantics: jobs live in hash sets
class RebuildJob:
    """One in-flight block reconstruction."""

    group: RedundancyGroup
    rep_id: int
    target: int
    failed_at: float           # when the block became unavailable
    sources: tuple[int, ...] = ()
    event: Event | None = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


@dataclass(eq=False)     # identity semantics, like RebuildJob
class DeferredRebuild:
    """A rebuild that could not start; parked for retry with backoff."""

    group: RedundancyGroup
    rep_id: int
    failed_at: float
    attempts: int = 0
    event: Event | None = None


def _marker() -> None:
    """No-op event callback: exists only to appear in the trace timeline."""


class RecoveryManager(ABC):
    """Base class wiring a recovery scheme into the simulator."""

    #: Deferred-rebuild backoff: ``base * 2**attempt`` seconds.  The
    #: doubling is uncapped (exponent clamped) because
    #: :meth:`rearm_deferred` already retries promptly whenever the world
    #: improves (batch arrived, disk back online); a fixed hourly cap
    #: would instead let thousands of hopelessly parked blocks — e.g. a
    #: dead rack under the failure-domain cap — retry-spin for simulated
    #: months and dominate the event loop.
    retry_base_s: float = MINUTE
    retry_max_doublings: int = 16

    def __init__(self, system: StorageSystem, sim: Simulator,
                 telemetry: Telemetry | None = None) -> None:
        self.system = system
        self.sim = sim
        self.config = system.config
        self.stats = RecoveryStats()
        #: Nullable observability handle; every instrumentation site is a
        #: single `is not None` test, so the disabled path stays free.
        self.telemetry = telemetry
        if telemetry is not None:
            system.telemetry = telemetry
        # Per-disk FCFS queues for recovery writes.
        self._servers: dict[int, SerialServer] = {}
        # In-flight indexes.
        self._jobs_by_target: dict[int, set[RebuildJob]] = {}
        self._jobs_by_group: dict[int, set[RebuildJob]] = {}
        self._jobs_by_source: dict[int, set[RebuildJob]] = {}
        # Bytes promised to in-flight rebuilds, per target disk: selection
        # must treat reserved space as used or concurrent jobs could
        # collectively overflow a target.
        self._reserved: dict[int, float] = {}
        # Rebuilds awaiting a viable target/source, keyed (grp_id, rep_id).
        self._deferred: dict[tuple[int, int], DeferredRebuild] = {}
        # Lazy-recovery policy (recovery_threshold > 1): rebuilds held
        # back until the group accumulates >= r missing blocks, keyed
        # (grp_id, rep_id) -> failure time.  Empty forever at the default
        # threshold of 1, where dispatch short-circuits to the eager path.
        self._held: dict[tuple[int, int], float] = {}
        # Open per-group unavailability spans: grp_id -> degraded-since.
        self._degraded_since: dict[int, float] = {}
        # A rate-limited repair lane too narrow for its own failure
        # inflow is a modelling error: reject it up front, exactly like
        # the forecast service's 422 rail.
        check_repair_lane(self.config)

    # -- queues ------------------------------------------------------------ #
    def server(self, disk_id: int) -> SerialServer:
        srv = self._servers.get(disk_id)
        if srv is None:
            srv = SerialServer()
            self._servers[disk_id] = srv
        return srv

    def busy_until(self, disk_id: int) -> float:
        srv = self._servers.get(disk_id)
        return srv.free_at if srv is not None else 0.0

    # -- job bookkeeping --------------------------------------------------- #
    def reserved_bytes(self, disk_id: int) -> float:
        """Space promised to in-flight rebuilds targeting ``disk_id``."""
        return self._reserved.get(disk_id, 0.0)

    def _register(self, job: RebuildJob) -> None:
        self._jobs_by_target.setdefault(job.target, set()).add(job)
        self._jobs_by_group.setdefault(job.group.grp_id, set()).add(job)
        for s in job.sources:
            self._jobs_by_source.setdefault(s, set()).add(job)
        self._reserved[job.target] = (self._reserved.get(job.target, 0.0)
                                      + self.config.block_bytes)

    def _unregister(self, job: RebuildJob) -> None:
        if job in self._jobs_by_target.get(job.target, set()):
            self._reserved[job.target] = max(
                0.0, self._reserved.get(job.target, 0.0)
                - self.config.block_bytes)
        self._jobs_by_target.get(job.target, set()).discard(job)
        self._jobs_by_group.get(job.group.grp_id, set()).discard(job)
        for s in job.sources:
            self._jobs_by_source.get(s, set()).discard(job)

    # -- the common failure path -------------------------------------------- #
    def on_disk_failure(self, disk_id: int) -> None:
        """DES callback: disk ``disk_id`` fails now."""
        now = self.sim.now
        if self.system.disks[disk_id].dead:
            return      # already failed/retired (stale event)
        self.stats.disk_failures += 1
        tele = self.telemetry
        if tele is not None:
            tele.disk_failures.inc()
        affected = self.system.fail_disk(disk_id, now)

        # Domain co-location accounting: a block loss whose group still
        # keeps another live block in the failing disk's rack means the
        # placement left the group doubly exposed to that rack.
        topo = self.system.topology
        if topo.racks > 1:
            rack = topo.rack_of(disk_id)
            for group, reps in affected:
                if not reps:
                    continue
                if any(r not in group.failed and d >= 0
                       and topo.rack_of(d) == rack
                       for r, d in enumerate(group.disks)):
                    self.stats.domain_colocated_losses += len(reps)
                    if tele is not None:
                        tele.domain_colocated_losses.inc(len(reps))

        # Jobs whose *target* just died: pick another target (paper §2.3,
        # "we merely choose an alternative target") — recovery redirection.
        for job in list(self._jobs_by_target.get(disk_id, ())):
            self._unregister(job)
            job.cancel()
            if job.group.lost:
                continue
            self.stats.target_redirections += 1
            if tele is not None:
                tele.target_redirections.inc()
            self._reschedule(job, now)

        # Jobs that were *reading* from the dead disk but whose group still
        # has enough survivors: swap in an alternative source at no cost.
        for job in list(self._jobs_by_source.get(disk_id, ())):
            if job.cancelled or job.group.lost:
                continue
            self.stats.source_redirections += 1
            if tele is not None:
                tele.source_redirections.inc()
            job.sources = tuple(s for s in job.sources if s != disk_id)

        # New block losses.
        newly_lost: list[tuple[RedundancyGroup, int]] = []
        for group, reps in affected:
            if group.lost and group.loss_time == now:
                self.stats.record_loss(group, now)
                self._degraded_since.pop(group.grp_id, None)
                self._drop_held(group.grp_id)
                if tele is not None:
                    tele.group_lost(group.grp_id)
                for job in list(self._jobs_by_group.get(group.grp_id, ())):
                    self._unregister(job)
                    job.cancel()
                continue
            if group.lost:
                continue
            if reps:
                self._note_degraded(group, now)
            for rep in reps:
                newly_lost.append((group, rep))
                if tele is not None:
                    tele.block_failed(group.grp_id, rep, now,
                                      group.scheme.n)
        if newly_lost:
            self._dispatch_rebuilds(disk_id, newly_lost, now)
        self._after_failure(disk_id, now)

    # -- completion path ---------------------------------------------------- #
    def _complete(self, job: RebuildJob) -> None:
        if job.cancelled or job.group.lost:
            return
        now = self.sim.now
        target = self.system.disks[job.target]
        if not target.online:
            # Defensive: a redirect should already have happened.
            self._unregister(job)
            self.stats.target_redirections += 1
            if self.telemetry is not None:
                self.telemetry.target_redirections.inc()
            self._reschedule(job, now)
            return
        self._unregister(job)
        job.group.complete_rebuild(job.rep_id, job.target,
                                   allow_buddy=self._allows_buddy())
        target.allocate(self.config.block_bytes)
        self.system.note_block_moved(job.group.grp_id, job.target)
        self.stats.rebuilds_completed += 1
        window = now - job.failed_at
        self.stats.window_total += window
        self.stats.window_max = max(self.stats.window_max, window)
        if self.telemetry is not None:
            self.telemetry.rebuilds_completed.inc()
            self.telemetry.block_rebuilt(job.group.grp_id, job.rep_id, now)
        if not job.group.failed:
            self._note_repaired(job.group.grp_id, now)

    # -- lazy recovery (recovery_threshold > 1) ------------------------------ #
    def _missing_count(self, group: RedundancyGroup) -> int:
        """Blocks of ``group`` without a live, *reachable* replica right
        now: failed blocks plus live replicas on transiently offline
        disks — both count toward the lazy trigger."""
        missing = len(group.failed)
        disks = self.system.disks
        for rep, disk_id in enumerate(group.disks):
            if rep in group.failed or disk_id < 0:
                continue
            if not disks[disk_id].online:
                missing += 1
        return missing

    def _dispatch_rebuilds(self, failed_disk: int,
                           losses: list[tuple[RedundancyGroup, int]],
                           now: float) -> None:
        """Route new block losses through the lazy-recovery policy.

        At the default ``recovery_threshold`` of 1 this is a verbatim
        delegation to :meth:`_schedule_rebuilds` — no extra events, no
        reordering, bit-identical to the eager path (the golden-pin
        conformance contract).  Above 1, losses are parked in the held
        map until their group reaches ``r`` missing blocks, then every
        held rebuild of the group is released most-at-risk-first.
        """
        if self.config.recovery_threshold <= 1:
            self._schedule_rebuilds(failed_disk, losses, now)
            return
        fresh: dict[int, RedundancyGroup] = {}
        for group, rep in losses:
            self._held[(group.grp_id, rep)] = now
            fresh.setdefault(group.grp_id, group)
        queue: RepairPriorityQueue = RepairPriorityQueue()
        released: set[int] = set()
        for group in fresh.values():
            if self._missing_count(group) >= self.config.recovery_threshold:
                released.add(group.grp_id)
                self._collect_held(group, queue)
        n_held = sum(1 for g, _ in losses if g.grp_id not in released)
        if n_held:
            self.stats.rebuilds_held += n_held
            if self.telemetry is not None:
                self.telemetry.rebuilds_held.inc(n_held)
            self._trace_marker("rebuild-held")
        self._release_queue(queue, now)

    def _collect_held(self, group: RedundancyGroup,
                      queue: RepairPriorityQueue) -> None:
        """Move every held rebuild of ``group`` into the release queue,
        keyed most-at-risk-first (surviving redundancy, then age)."""
        grp_id = group.grp_id
        surviving = max(0, group.scheme.tolerance
                        - self._missing_count(group))
        for key in sorted(k for k in self._held if k[0] == grp_id):
            failed_at = self._held.pop(key)
            queue.push(RepairPriority(surviving, failed_at, grp_id, key[1]),
                       (group, key[1], failed_at))

    def _release_queue(self, queue: RepairPriorityQueue,
                       now: float) -> None:
        """Schedule released rebuilds in priority order."""
        tele = self.telemetry
        for _prio, (group, rep_id, failed_at) in queue.drain():
            if group.lost or rep_id not in group.failed:
                continue
            if tele is not None:
                tele.held_released.inc()
            self._schedule_one(group, rep_id, failed_at, now)

    def _drop_held(self, grp_id: int) -> None:
        """Forget held rebuilds of a group that just lost data."""
        for key in [k for k in self._held if k[0] == grp_id]:
            del self._held[key]

    @property
    def held_outstanding(self) -> int:
        """Rebuilds currently parked by the lazy-recovery trigger."""
        return len(self._held)

    # -- unavailability spans ------------------------------------------------ #
    def _note_degraded(self, group: RedundancyGroup, now: float) -> None:
        """First missing block of the group: open its degraded span."""
        grp_id = group.grp_id
        if grp_id in self._degraded_since:
            return
        self._degraded_since[grp_id] = now
        if self.telemetry is not None:
            self.telemetry.group_degraded(grp_id, now, group.scheme.n)

    def _note_repaired(self, grp_id: int, now: float) -> None:
        """Full redundancy restored: close the span, account it."""
        since = self._degraded_since.pop(grp_id, None)
        if since is None:
            return
        duration = now - since
        self.stats.unavail_group_seconds += duration
        self.stats.unavail_spans += 1
        self.stats.unavail_max = max(self.stats.unavail_max, duration)
        if self.telemetry is not None:
            self.telemetry.group_restored(grp_id, now)

    def finalize(self, now: float) -> None:
        """Close accounting still open at the simulation horizon.

        Groups degraded at the end contribute their partial span in
        ascending group-id order — deterministic, and identical between
        the two engines so span totals stay float-exact."""
        for grp_id in sorted(self._degraded_since):
            self._note_repaired(grp_id, now)

    # -- deferred-rebuild retry queue ---------------------------------------- #
    @property
    def deferred_outstanding(self) -> int:
        """Rebuilds currently parked awaiting a viable target/source."""
        return len(self._deferred)

    def _trace_marker(self, name: str) -> None:
        """Make ``name`` visible in the simulation trace at the current
        time (the trace hook only sees fired events)."""
        self.sim.schedule(0.0, _marker, name=name)

    def defer_rebuild(self, group: RedundancyGroup, rep_id: int,
                      failed_at: float, now: float,
                      constrained: bool = False) -> None:
        """Park a rebuild that cannot start; retry with capped backoff.

        Replaces the old silent-drop behaviour: the group stays visibly
        degraded (``stats.rebuilds_deferred``, a ``rebuild-deferred`` trace
        marker) and the rebuild is retried until it starts, the group is
        lost, or the simulation ends.  ``constrained`` marks a deferral
        forced solely by the failure-domain placement cap.
        """
        key = (group.grp_id, rep_id)
        entry = self._deferred.get(key)
        if entry is None:
            entry = DeferredRebuild(group=group, rep_id=rep_id,
                                    failed_at=failed_at)
            self._deferred[key] = entry
            self.stats.rebuilds_deferred += 1
            if constrained:
                self.stats.rebuilds_deferred_constraint += 1
            if self.telemetry is not None:
                self.telemetry.rebuilds_deferred.inc()
                if constrained:
                    self.telemetry.rebuilds_deferred_constraint.inc()
            self._trace_marker("rebuild-deferred")
        self._arm_retry(key, entry)

    def _arm_retry(self, key: tuple[int, int],
                   entry: DeferredRebuild) -> None:
        if entry.event is not None:
            entry.event.cancel()
        delay = self.retry_base_s * (2.0 ** min(entry.attempts,
                                                self.retry_max_doublings))
        entry.attempts += 1
        entry.event = self.sim.schedule(delay, self._retry_deferred, key,
                                        name="rebuild-retry")

    def _retry_deferred(self, key: tuple[int, int]) -> None:
        entry = self._deferred.get(key)
        if entry is None:
            return
        group = entry.group
        if group.lost or entry.rep_id not in group.failed:
            del self._deferred[key]     # resolved (or lost) in the meantime
            return
        self.stats.retries += 1
        if self.telemetry is not None:
            self.telemetry.rebuild_retries.inc()
        del self._deferred[key]
        if not self._try_start(group, entry.rep_id, entry.failed_at,
                               self.sim.now):
            self._deferred[key] = entry     # keep the attempt count: the
            self._arm_retry(key, entry)     # backoff must keep growing

    def rearm_deferred(self) -> int:
        """Retry every parked rebuild now, with a fresh backoff.

        Called when the world changed in recovery's favour: a replacement
        batch or spare arrived (space freed), or a disk returned from a
        transient outage (sources readable again).
        """
        entries = list(self._deferred.items())
        if self.config.recovery_threshold > 1:
            # Lazy policies re-arm most-at-risk-first (the same order the
            # release queue uses); the default path keeps insertion order
            # so the eager trajectory stays bit-identical.
            entries.sort(key=lambda kv: (
                max(0, kv[1].group.scheme.tolerance
                    - self._missing_count(kv[1].group)),
                kv[1].failed_at, kv[0]))
        for key, entry in entries:
            if entry.event is not None:
                entry.event.cancel()
            entry.attempts = 0
            entry.event = self.sim.schedule(0.0, self._retry_deferred, key,
                                            name="rebuild-retry")
        return len(self._deferred)

    # -- latent sector errors ------------------------------------------------ #
    def discover_latent(self, disk_id: int, grp_id: int, rep_id: int) -> bool:
        """A scrub or rebuild read found a latent error: fail the block and
        enqueue an ordinary per-group rebuild.  Returns True if the call
        discovered a (still relevant) error."""
        corrupted_at = self.system.clear_latent_error(disk_id, grp_id,
                                                      rep_id)
        if corrupted_at is None:
            return False
        group = self.system.groups[grp_id]
        if group.lost or rep_id in group.failed:
            return False    # superseded by a whole-disk failure
        now = self.sim.now
        group.fail_block(rep_id, now)
        disk = self.system.disks[disk_id]
        if not disk.dead:
            disk.release(self.config.block_bytes)
        self.stats.latent_errors_discovered += 1
        self.stats.latent_window_total += now - corrupted_at
        tele = self.telemetry
        if tele is not None:
            tele.latent_discovered.inc()
            tele.latent_window_seconds.inc(now - corrupted_at)
        self._trace_marker("latent-discovered")
        if group.lost and group.loss_time == now:
            # The corrupt block defeated what redundancy remained.
            self.stats.record_loss(group, now)
            self._degraded_since.pop(grp_id, None)
            self._drop_held(grp_id)
            if tele is not None:
                tele.group_lost(grp_id)
            for job in list(self._jobs_by_group.get(grp_id, ())):
                self._unregister(job)
                job.cancel()
            return True
        self._note_degraded(group, now)
        if tele is not None:
            tele.block_failed(grp_id, rep_id, now, group.scheme.n)
        self._dispatch_rebuilds(disk_id, [(group, rep_id)], now)
        return True

    def _discover_latent_partners(self, group: RedundancyGroup,
                                  rep_id: int) -> None:
        """Rebuild-read discovery: reconstructing ``rep_id`` reads the
        group's other live blocks, surfacing any latent errors in them."""
        for rep, disk_id in enumerate(list(group.disks)):
            if rep == rep_id or rep in group.failed or disk_id < 0:
                continue
            if self.system.has_latent_error(disk_id, group.grp_id, rep):
                self.discover_latent(disk_id, group.grp_id, rep)

    # -- transient outages --------------------------------------------------- #
    def on_disk_offline(self, disk_id: int) -> None:
        """DES callback: ``disk_id`` becomes temporarily unreachable.

        Unlike a failure, no data is lost and no group state changes;
        in-flight rebuilds writing to the disk restart elsewhere (a target
        redirection) and rebuilds reading from it swap sources, or are
        deferred when no readable replica remains.
        """
        now = self.sim.now
        if not self.system.disks[disk_id].online:
            return      # already offline or dead (stale event)
        self.system.take_offline(disk_id, now)
        self.stats.transient_outages += 1
        tele = self.telemetry
        if tele is not None:
            tele.transient_outages.inc()
        self._trace_marker("disk-offline")

        for job in list(self._jobs_by_target.get(disk_id, ())):
            self._unregister(job)
            job.cancel()
            if job.group.lost:
                continue
            self.stats.target_redirections += 1
            if tele is not None:
                tele.target_redirections.inc()
            self._reschedule(job, now)

        for job in list(self._jobs_by_source.get(disk_id, ())):
            if job.cancelled or job.group.lost:
                continue
            online = [d for d in job.group.buddies_of(job.rep_id)
                      if self.system.disks[d].online]
            if len(online) >= job.group.scheme.m:
                self.stats.source_redirections += 1
                if tele is not None:
                    tele.source_redirections.inc()
                for s in job.sources:
                    self._jobs_by_source.get(s, set()).discard(job)
                job.sources = tuple(online[:job.group.scheme.m])
                for s in job.sources:
                    self._jobs_by_source.setdefault(s, set()).add(job)
            else:
                # No readable replica until the outage ends: park it.
                self._unregister(job)
                job.cancel()
                self.defer_rebuild(job.group, job.rep_id, job.failed_at,
                                   now)

        # Transient outages count toward the lazy trigger: a group whose
        # held rebuilds plus now-unreachable replicas reach the threshold
        # releases immediately (the rebuilds themselves may still defer
        # until a readable source returns — the retry queue drains them).
        if self.config.recovery_threshold > 1 and self._held:
            queue: RepairPriorityQueue = RepairPriorityQueue()
            touched: dict[int, RedundancyGroup] = {}
            for grp_id, _rep in self._held:
                touched.setdefault(grp_id, self.system.groups[grp_id])
            for group in touched.values():
                if (self._missing_count(group)
                        >= self.config.recovery_threshold):
                    self._collect_held(group, queue)
            self._release_queue(queue, now)

    def on_disk_online(self, disk_id: int) -> None:
        """DES callback: a transient outage ends; the disk's data is back.

        Stale if the disk permanently failed during the outage.  Parked
        rebuilds are re-armed: the returning disk may hold the only
        readable source, or be an acceptable target again.
        """
        now = self.sim.now
        if not self.system.bring_online(disk_id, now):
            return
        self._trace_marker("disk-online")
        self.rearm_deferred()

    # -- shared helpers ------------------------------------------------------ #
    def _bandwidth_factor(self, target: int, sources: tuple[int, ...]
                          ) -> float:
        """Effective bandwidth multiplier of a rebuild: the slowest
        participating disk (straggler model) bounds the transfer."""
        disks = self.system.disks
        factor = disks[target].bandwidth_factor
        for s in sources:
            factor = min(factor, disks[s].bandwidth_factor)
        return max(factor, 1e-3)

    def _online_sources(self, group: RedundancyGroup,
                        rep_id: int) -> tuple[int, ...]:
        """The m reachable disks a rebuild of ``rep_id`` would read from
        (empty tuple when too few replicas are currently online)."""
        online = [d for d in group.buddies_of(rep_id)
                  if self.system.disks[d].online]
        if len(online) < group.scheme.m:
            return ()
        return tuple(online[:group.scheme.m])

    # -- telemetry probe ----------------------------------------------------- #
    def telemetry_sample(self) -> ProbeSample:
        """Read-only cluster observation for the periodic telemetry probe.

        Per-disk recovery writes serialize on a :class:`SerialServer`, so
        a disk's in-use recovery bandwidth is at most the configured cap
        (``config.recovery_bandwidth``, the paper's 20%-of-80 MB/s rule);
        the sample reports the cap for each busy disk, which is an exact
        bound and — for non-straggler disks — the actual rate.
        """
        now = self.sim.now
        cap = self.config.recovery_bandwidth
        topo = self.system.topology
        per_rack = topo.racks > 1
        busy = 0
        loads: list[int] = []
        states: dict[str, int] = {}
        by_rack: dict[str, float] = {}
        for disk in self.system.disks:
            state = disk.state.name.lower()
            states[state] = states.get(state, 0) + 1
            if not disk.online:
                continue
            srv = self._servers.get(disk.disk_id)
            loads.append(srv.jobs_served if srv is not None else 0)
            if srv is not None and srv.free_at > now:
                busy += 1
                if per_rack:
                    key = str(topo.rack_of(disk.disk_id))
                    by_rack[key] = by_rack.get(key, 0.0) + cap
        degraded = sum(1 for g in self.system.groups
                       if g.failed and not g.lost)
        return ProbeSample(
            bandwidth_in_use_bps=busy * cap,
            disk_bandwidth_max_bps=cap if busy else 0.0,
            bandwidth_cap_bps=cap,
            disks_by_state=states,
            degraded_groups=degraded,
            deferred_rebuilds=len(self._deferred),
            rebuild_load_max=float(max(loads, default=0)),
            rebuild_load_mean=(sum(loads) / len(loads)) if loads else 0.0,
            bandwidth_by_rack=by_rack)

    # -- scheme-specific hooks ---------------------------------------------- #
    @abstractmethod
    def _schedule_rebuilds(self, failed_disk: int,
                           losses: list[tuple[RedundancyGroup, int]],
                           now: float) -> None:
        """Schedule reconstruction of the given (group, rep) losses."""

    @abstractmethod
    def _schedule_one(self, group: RedundancyGroup, rep_id: int,
                      failed_at: float, now: float) -> None:
        """Schedule one rebuild released by the lazy-recovery trigger.

        ``failed_at`` is the block's *original* failure time (windows of
        vulnerability measure true exposure); detection/queueing starts
        from ``now``, the release time.
        """

    @abstractmethod
    def _reschedule(self, job: RebuildJob, now: float) -> None:
        """Restart a job whose target died mid-rebuild."""

    @abstractmethod
    def _try_start(self, group: RedundancyGroup, rep_id: int,
                   failed_at: float, now: float) -> bool:
        """Attempt to start (or re-start) one block rebuild.

        Returns True when the rebuild was started or is moot (group lost /
        block already rebuilt); False when it cannot run right now and
        should be deferred.  Must never raise for want of a target.
        """

    def _after_failure(self, disk_id: int, now: float) -> None:
        """Hook for replacement policies; default does nothing."""

    def _allows_buddy(self) -> bool:
        """Whether this manager's policy permits buddy co-location (only
        true in ablation studies with forbid_buddy disabled)."""
        return False
