"""FARM — FAst Recovery Mechanism (the paper's contribution, §2).

On a disk failure, FARM re-creates every lost block on a *different* disk
drawn from the group's placement candidate list, so reconstruction of the
failed disk's contents proceeds in parallel across the cluster: "the window
of vulnerability [shrinks] from the time needed to rebuild an entire disk to
the time needed to create one or two replicas of a redundancy group."

Mechanics implemented here:

* per-group parallel rebuild, FCFS-queued at each recovery target;
* target selection via :class:`~repro.core.policy.TargetSelector`
  (alive / no-buddy / space hard constraints; bandwidth / SMART soft);
* *recovery redirection* when a target dies mid-rebuild (restart on a new
  target) or a source dies with survivors remaining (free source swap);
* optional workload-aware transfer times (paper §2.4);
* optional batch replacement with data migration (paper §3.6).
"""

from __future__ import annotations

import numpy as np

from ..cluster.replacement import BatchReplacementPolicy
from ..cluster.system import StorageSystem
from ..cluster.workload import ConstantWorkload, DiurnalWorkload
from ..redundancy.group import RedundancyGroup
from ..sim.engine import Simulator
from ..telemetry.handle import Telemetry
from .policy import NoTargetError, PolicyConfig, TargetSelector
from .recovery import RebuildJob, RecoveryManager


class FarmRecovery(RecoveryManager):
    """Distributed declustered recovery."""

    def __init__(self, system: StorageSystem, sim: Simulator,
                 policy: PolicyConfig | None = None,
                 replacement: BatchReplacementPolicy | None = None,
                 telemetry: "Telemetry | None" = None) -> None:
        super().__init__(system, sim, telemetry=telemetry)
        self.selector = TargetSelector(system, policy)
        cfg = system.config
        if replacement is None and cfg.replacement_threshold is not None:
            replacement = BatchReplacementPolicy(cfg.replacement_threshold)
        self.replacement = replacement
        self._unreplaced_failures = 0
        #: Whether the most recent failed _try_start was blocked solely by
        #: the failure-domain placement cap (drives constrained-deferral
        #: accounting in _start_if_alive).
        self._defer_constrained = False
        if cfg.workload_peak_load > 0:
            self.workload = DiurnalWorkload(peak_load=cfg.workload_peak_load)
        else:
            self.workload = ConstantWorkload(0.0)

    # ------------------------------------------------------------------ #
    def _allows_buddy(self) -> bool:
        return not self.selector.policy.forbid_buddy

    def _try_start(self, group: RedundancyGroup, rep_id: int,
                   failed_at: float, now: float) -> bool:
        """Start one block rebuild; False defers it (never a silent drop).

        Cannot-start cases: every admissible target is full
        (:class:`NoTargetError`) or too few source replicas are online
        (transient outages).  Reading the sources also surfaces any latent
        errors in them first — which can reveal the group as already dead.
        """
        self._defer_constrained = False
        self._discover_latent_partners(group, rep_id)
        if group.lost or rep_id not in group.failed:
            return True     # moot: resolved or lost while we looked
        sources = self._online_sources(group, rep_id)
        if not sources:
            return False    # no readable replica until an outage ends
        cfg = self.config
        # A group may have several rebuilds in flight (m/n schemes); their
        # targets must stay pairwise distinct or two buddies would end up
        # co-located when both complete.
        inflight = frozenset(
            j.target for j in self._jobs_by_group.get(group.grp_id, ()))
        try:
            target = self.selector.select(
                group, cfg.block_bytes, now, self.busy_until,
                exclude=inflight, reserved=self.reserved_bytes)
        except NoTargetError as err:
            # System too full — or every otherwise admissible target vetoed
            # by the domain cap: defer, never violate the constraint.
            self._defer_constrained = err.constrained
            return False
        job = RebuildJob(group=group, rep_id=rep_id, target=target,
                         failed_at=failed_at, sources=sources)
        factor = self._bandwidth_factor(target, sources)
        duration = self.workload.time_to_transfer(
            cfg.block_bytes, cfg.recovery_bandwidth * factor, now)
        completion = self.server(target).submit(now, duration)
        job.event = self.sim.schedule_at(completion, self._complete, job,
                                         name="farm-rebuild")
        self._register(job)
        self.stats.rebuilds_started += 1
        if self.telemetry is not None:
            self.telemetry.rebuilds_started.inc()
        return True

    # -- RecoveryManager hooks -------------------------------------------- #
    def _schedule_rebuilds(self, failed_disk: int,
                           losses: list[tuple[RedundancyGroup, int]],
                           now: float) -> None:
        start = now + self.config.detection_latency
        for group, rep in losses:
            self.sim.schedule_at(start, self._start_if_alive, group, rep,
                                 now, name="farm-detect")

    def _schedule_one(self, group: RedundancyGroup, rep_id: int,
                      failed_at: float, now: float) -> None:
        """A lazy-trigger release: detection runs from the release time,
        but the window of vulnerability keeps the original failure time."""
        self.sim.schedule_at(now + self.config.detection_latency,
                             self._start_if_alive, group, rep_id, failed_at,
                             name="farm-detect")

    def _start_if_alive(self, group: RedundancyGroup, rep: int,
                        failed_at: float) -> None:
        """Detection fired: begin the rebuild unless the group died since."""
        if group.lost or rep not in group.failed:
            return
        now = self.sim.now
        if not self._try_start(group, rep, failed_at, now):
            self.defer_rebuild(group, rep, failed_at, now,
                               constrained=self._defer_constrained)

    def _reschedule(self, job: RebuildJob, now: float) -> None:
        start = now + self.config.detection_latency
        self.sim.schedule_at(start, self._start_if_alive, job.group,
                             job.rep_id, job.failed_at, name="farm-redirect")

    # -- replacement -------------------------------------------------------- #
    def _after_failure(self, disk_id: int, now: float) -> None:
        self._unreplaced_failures += 1
        pol = self.replacement
        if pol is None or not pol.should_trigger(
                self._unreplaced_failures, self.system.initial_population):
            return
        count = pol.batch_size(self._unreplaced_failures)
        if count <= 0:
            return
        new_ids = self.system.add_batch(count, now, weight=pol.weight)
        self._unreplaced_failures = 0
        self.stats.replacement_batches += 1
        if self.telemetry is not None:
            self.telemetry.replacement_batches.inc()
        # Schedule the new drives' (infant-mortality-prone) failures.
        for d in new_ids:
            t = self.system.failure_times[d]
            if t <= self.config.duration:
                self.sim.schedule_at(t, self.on_disk_failure, d,
                                     name="disk-failure")
        rng: np.random.Generator = self.system.streams.get("migration")
        self.stats.blocks_migrated += self.system.migrate_to_batch(
            new_ids, now, rng)
        # Migration leaves superseded entries behind; sweep them so the
        # disk -> groups index stays tight across many batches.
        self.system.compact_index()
        # Fresh capacity arrived: rebuilds deferred for want of target
        # space can run immediately instead of waiting out their backoff.
        self.rearm_deferred()
