"""Recovery-target selection (paper §2.3).

"Our data placement algorithm, RUSH, provides a list of locations where
replicated data blocks can go.  After a failure, we select the disk on which
the new replica is going to reside from these locations. ... The recovery
target chosen from the candidate list (a) must be alive, (b) should not
contain already a buddy from the same group, and (c) must have sufficient
space.  Additionally, it should currently have sufficient bandwidth, though
if there is no better alternative, we will stick to it.  If we use
S.M.A.R.T. ... we are able to avoid unreliable disks."

The hard constraints (a)–(c) are always enforced; bandwidth and SMART advice
are *soft* — applied in a first pass and dropped in a second pass if no
candidate survives, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cluster.system import StorageSystem
from ..placement.base import PlacementError
from ..redundancy.group import RedundancyGroup


@dataclass(frozen=True)
class PolicyConfig:
    """Tunable constraints for target selection (ablation knobs)."""

    forbid_buddy: bool = True       # constraint (b)
    require_space: bool = True      # constraint (c)
    prefer_idle: bool = True        # soft bandwidth preference
    use_smart: bool = True          # soft SMART veto (needs a monitor)
    candidate_window: int = 32      # how deep into the candidate list to look


class NoTargetError(RuntimeError):
    """No disk in the system can accept the new replica.

    ``constrained`` is True when at least one disk satisfied the paper's
    hard constraints (a)-(c) but was vetoed solely by the failure-domain
    placement cap (``SystemConfig.max_chunks_per_domain``): the caller
    then *defers* the rebuild rather than violating the constraint.
    """

    def __init__(self, message: str, constrained: bool = False) -> None:
        super().__init__(message)
        self.constrained = constrained


class TargetSelector:
    """Chooses FARM recovery targets from the placement candidate list."""

    def __init__(self, system: StorageSystem,
                 policy: PolicyConfig | None = None) -> None:
        self.system = system
        self.policy = policy or PolicyConfig()

    # ------------------------------------------------------------------ #
    def _admissible(self, disk_id: int, group: RedundancyGroup,
                    nbytes: float, exclude: frozenset[int],
                    reserved: Callable[[int], float]) -> bool:
        """Hard constraints (a)-(c), plus caller-supplied exclusions
        (targets of the group's other in-flight rebuilds) and space already
        promised to in-flight rebuilds."""
        if disk_id in exclude:
            return False
        disk = self.system.disks[disk_id]
        if not disk.online:
            return False
        if self.policy.forbid_buddy and group.holds_buddy(disk_id):
            return False
        if self.policy.require_space and \
                disk.free_bytes - reserved(disk_id) < nbytes:
            return False
        return True

    def _domain_ok(self, disk_id: int, group: RedundancyGroup,
                   exclude: frozenset[int]) -> bool:
        """Failure-domain cap: blocks of one group per rack, counting the
        targets of the group's other in-flight rebuilds (``exclude``) as
        already placed.  Always True when the constraint is disabled."""
        limit = self.system.config.max_chunks_per_domain
        if limit is None:
            return True
        topo = self.system.topology
        rack = topo.rack_of(disk_id)
        count = 0
        for rep, d in enumerate(group.disks):
            if rep in group.failed or d < 0:
                continue
            if topo.rack_of(d) == rack:
                count += 1
        for d in exclude:
            if topo.rack_of(d) == rack:
                count += 1
        return count < limit

    def _preferred(self, disk_id: int, now: float,
                   busy_until: Callable[[int], float]) -> bool:
        """Soft constraints: bandwidth headroom and SMART health."""
        if self.policy.prefer_idle and busy_until(disk_id) > now:
            return False
        if self.policy.use_smart and self.system.is_suspect(disk_id, now):
            return False
        return True

    def select(self, group: RedundancyGroup, nbytes: float, now: float,
               busy_until: Callable[[int], float] = lambda d: 0.0,
               exclude: frozenset[int] = frozenset(),
               reserved: Callable[[int], float] = lambda d: 0.0) -> int:
        """Pick the recovery target for a lost block of ``group``.

        Walks the group's candidate list beyond its current n locations,
        first honouring the soft constraints, then relaxing them ("if there
        is no better alternative, we will stick to it").  Raises
        :class:`NoTargetError` only if no disk in the entire system
        satisfies the hard constraints.
        """
        window = group.scheme.n + self.policy.candidate_window
        try:
            candidates = self.system.placement.candidates(
                group.grp_id, min(window, self.system.placement.n_disks))
        except PlacementError:
            candidates = self.system.placement.candidates(
                group.grp_id, self.system.placement.n_disks)
        blocked_by_domain = False
        admissible = []
        for d in candidates:
            if not self._admissible(d, group, nbytes, exclude, reserved):
                continue
            if not self._domain_ok(d, group, exclude):
                blocked_by_domain = True
                continue
            admissible.append(d)
        for disk_id in admissible:
            if self._preferred(disk_id, now, busy_until):
                return disk_id
        if admissible:
            return admissible[0]
        # Candidate list exhausted (possible in small or very full systems):
        # fall back to a linear scan so recovery degrades gracefully instead
        # of dropping redundancy.
        for disk in self.system.disks:
            if not self._admissible(disk.disk_id, group, nbytes, exclude,
                                    reserved):
                continue
            if not self._domain_ok(disk.disk_id, group, exclude):
                blocked_by_domain = True
                continue
            return disk.disk_id
        raise NoTargetError(
            f"no admissible recovery target for group {group.grp_id}",
            constrained=blocked_by_domain)
