"""Traditional RAID recovery: the baseline FARM is compared against.

"The traditional recovery approach in RAID architectures replicates data on
a failed disk to one dedicated spare disk upon disk failure. ... Without
FARM, reconstruction requests queue up at the single recovery target."

On each disk failure this manager provisions a fresh dedicated spare and
serializes the reconstruction of every lost block onto it.  The k-th block
is vulnerable until its queued rebuild completes, so the window of
vulnerability stretches up to the whole-disk rebuild time (hours), versus
FARM's single-block time (seconds to minutes).  If the spare itself dies
mid-rebuild, a new spare is provisioned and the unfinished work restarts
(counted as target redirections).
"""

from __future__ import annotations

from ..cluster.system import StorageSystem
from ..redundancy.group import RedundancyGroup
from ..sim.engine import Simulator
from ..telemetry.handle import Telemetry
from .recovery import RebuildJob, RecoveryManager


class TraditionalRecovery(RecoveryManager):
    """Whole-disk rebuild onto a single dedicated spare."""

    def __init__(self, system: StorageSystem, sim: Simulator,
                 telemetry: Telemetry | None = None) -> None:
        super().__init__(system, sim, telemetry=telemetry)
        #: failed disk -> its spare (so late losses of the same disk's data
        #: keep queueing on the same spare).
        self._spare_for: dict[int, int] = {}
        self.spares_provisioned = 0

    # ------------------------------------------------------------------ #
    def _provision_spare(self, now: float,
                         slot: int | None = None) -> int:
        spare = self.system.add_spare(now, slot=slot)
        self.spares_provisioned += 1
        # The spare is a real drive: it can fail too.
        t = self.system.failure_times[spare]
        if t <= self.config.duration:
            self.sim.schedule_at(t, self.on_disk_failure, spare,
                                 name="spare-failure")
        return spare

    def _enqueue(self, group: RedundancyGroup, rep: int, spare: int,
                 failed_at: float, start: float,
                 sources: tuple[int, ...]) -> None:
        job = RebuildJob(group=group, rep_id=rep, target=spare,
                         failed_at=failed_at, sources=sources)
        factor = self._bandwidth_factor(spare, sources)
        duration = self.config.rebuild_seconds_per_block / factor
        completion = self.server(spare).submit(start, duration)
        job.event = self.sim.schedule_at(completion, self._complete, job,
                                         name="raid-rebuild")
        self._register(job)
        self.stats.rebuilds_started += 1
        if self.telemetry is not None:
            self.telemetry.rebuilds_started.inc()

    def _spare_disk_for(self, failed_disk: int, group: RedundancyGroup,
                        now: float) -> int:
        """The (possibly provisioned-on-demand) spare for ``failed_disk``,
        or a secondary spare when the primary already holds a buddy."""
        spare = self._spare_for.get(failed_disk)
        if spare is None or not self.system.disks[spare].online:
            # The spare goes into the failed disk's bay, inheriting its
            # failure domain — so rebuilding onto it never changes the
            # group's per-rack block counts.
            spare = self._provision_spare(now, slot=failed_disk)
            self._spare_for[failed_disk] = spare
        if not group.holds_buddy(spare):
            return spare
        # The spare must not hold two blocks of one group; recover this
        # block onto a second spare (rare).
        alt = self._spare_for.get(-spare - 1)
        if alt is None or not self.system.disks[alt].online or \
                group.holds_buddy(alt):
            alt = self._provision_spare(now, slot=failed_disk)
            self._spare_for[-spare - 1] = alt
        return alt

    # -- RecoveryManager hooks -------------------------------------------- #
    def _try_start(self, group: RedundancyGroup, rep_id: int,
                   failed_at: float, now: float) -> bool:
        """Queue one block onto the failed disk's spare; False defers it.

        The spare is provisioned on demand so a target always exists; the
        only cannot-start case is that too few source replicas are online
        (transient outages).  Reading the sources surfaces latent errors.
        """
        self._discover_latent_partners(group, rep_id)
        if group.lost or rep_id not in group.failed:
            return True     # moot: resolved or lost while we looked
        sources = self._online_sources(group, rep_id)
        if not sources:
            return False    # no readable replica until an outage ends
        # The block's recorded location is still the disk it failed on, so
        # late losses of one disk's data share that disk's spare queue.
        failed_disk = group.disks[rep_id]
        spare = self._spare_disk_for(failed_disk, group, now)
        start = now + self.config.detection_latency
        self._enqueue(group, rep_id, spare, failed_at, start, sources)
        return True

    def _schedule_rebuilds(self, failed_disk: int,
                           losses: list[tuple[RedundancyGroup, int]],
                           now: float) -> None:
        for group, rep in losses:
            if not self._try_start(group, rep, now, now):
                self.defer_rebuild(group, rep, now, now)

    def _schedule_one(self, group: RedundancyGroup, rep_id: int,
                      failed_at: float, now: float) -> None:
        """A lazy-trigger release: queue on the spare now, keeping the
        block's original failure time for window accounting."""
        if not self._try_start(group, rep_id, failed_at, now):
            self.defer_rebuild(group, rep_id, failed_at, now)

    def _reschedule(self, job: RebuildJob, now: float) -> None:
        """The spare died or went offline: restart the block elsewhere.

        The failed disk's ``_spare_for`` entry still names the dead spare,
        so the first rescheduled job provisions a replacement and the rest
        share it via :meth:`_spare_disk_for`.
        """
        if job.group.lost or job.rep_id not in job.group.failed:
            return
        if not self._try_start(job.group, job.rep_id, job.failed_at, now):
            self.defer_rebuild(job.group, job.rep_id, job.failed_at, now)
