"""Traditional RAID recovery: the baseline FARM is compared against.

"The traditional recovery approach in RAID architectures replicates data on
a failed disk to one dedicated spare disk upon disk failure. ... Without
FARM, reconstruction requests queue up at the single recovery target."

On each disk failure this manager provisions a fresh dedicated spare and
serializes the reconstruction of every lost block onto it.  The k-th block
is vulnerable until its queued rebuild completes, so the window of
vulnerability stretches up to the whole-disk rebuild time (hours), versus
FARM's single-block time (seconds to minutes).  If the spare itself dies
mid-rebuild, a new spare is provisioned and the unfinished work restarts
(counted as target redirections).
"""

from __future__ import annotations

from ..cluster.system import StorageSystem
from ..redundancy.group import RedundancyGroup
from ..sim.engine import Simulator
from .recovery import RebuildJob, RecoveryManager


class TraditionalRecovery(RecoveryManager):
    """Whole-disk rebuild onto a single dedicated spare."""

    def __init__(self, system: StorageSystem, sim: Simulator) -> None:
        super().__init__(system, sim)
        #: failed disk -> its spare (so late losses of the same disk's data
        #: keep queueing on the same spare).
        self._spare_for: dict[int, int] = {}
        self.spares_provisioned = 0

    # ------------------------------------------------------------------ #
    def _provision_spare(self, now: float) -> int:
        spare = self.system.add_spare(now)
        self.spares_provisioned += 1
        # The spare is a real drive: it can fail too.
        t = self.system.failure_times[spare]
        if t <= self.config.duration:
            self.sim.schedule_at(t, self.on_disk_failure, spare,
                                 name="spare-failure")
        return spare

    def _enqueue(self, group: RedundancyGroup, rep: int, spare: int,
                 failed_at: float, start: float) -> None:
        job = RebuildJob(group=group, rep_id=rep, target=spare,
                         failed_at=failed_at,
                         sources=tuple(group.buddies_of(rep)[:group.scheme.m]))
        duration = self.config.rebuild_seconds_per_block
        completion = self.server(spare).submit(start, duration)
        job.event = self.sim.schedule_at(completion, self._complete, job,
                                         name="raid-rebuild")
        self._register(job)
        self.stats.rebuilds_started += 1

    # -- RecoveryManager hooks -------------------------------------------- #
    def _schedule_rebuilds(self, failed_disk: int,
                           losses: list[tuple[RedundancyGroup, int]],
                           now: float) -> None:
        spare = self._spare_for.get(failed_disk)
        if spare is None or not self.system.disks[spare].online:
            spare = self._provision_spare(now)
            self._spare_for[failed_disk] = spare
        start = now + self.config.detection_latency
        for group, rep in losses:
            if group.holds_buddy(spare):
                # The spare must not hold two blocks of one group; recover
                # this block onto a second spare (rare).
                alt = self._spare_for.get(-spare - 1)
                if alt is None or not self.system.disks[alt].online or \
                        group.holds_buddy(alt):
                    alt = self._provision_spare(now)
                    self._spare_for[-spare - 1] = alt
                self._enqueue(group, rep, alt, now, start)
            else:
                self._enqueue(group, rep, spare, now, start)

    def _reschedule(self, job: RebuildJob, now: float) -> None:
        """The spare died: restart this block on a replacement spare."""
        if job.group.lost or job.rep_id not in job.group.failed:
            return
        # All jobs of the dead spare land here one by one; they share the
        # replacement spare via _spare_for keyed on the dead target.
        spare = self._spare_for.get(job.target)
        if spare is None or not self.system.disks[spare].online:
            spare = self._provision_spare(now)
            self._spare_for[job.target] = spare
        start = now + self.config.detection_latency
        self._enqueue(job.group, job.rep_id, spare, job.failed_at, start)
