"""FARM and the traditional-RAID baseline (the paper's core)."""

from .farm import FarmRecovery
from .policy import NoTargetError, PolicyConfig, TargetSelector
from .recovery import RebuildJob, RecoveryManager, RecoveryStats
from .runner import RunResult, build_manager, simulate_run
from .traditional import TraditionalRecovery

__all__ = [
    "FarmRecovery", "TraditionalRecovery",
    "RecoveryManager", "RecoveryStats", "RebuildJob",
    "PolicyConfig", "TargetSelector", "NoTargetError",
    "RunResult", "simulate_run", "build_manager",
]
