"""Object-level simulation driver: one system lifetime end to end.

This is the *reference* engine: explicit disks, groups, and recovery
managers on the discrete-event simulator.  It is exact but allocates one
object per group, so it suits moderate scales (up to a few hundred thousand
groups).  The Monte-Carlo sweeps in :mod:`repro.reliability` use the
flat-array engine, which is cross-validated against this one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.system import StorageSystem
from ..config import SystemConfig
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..telemetry.handle import Telemetry
from .farm import FarmRecovery
from .policy import PolicyConfig
from .recovery import RecoveryManager, RecoveryStats
from .traditional import TraditionalRecovery


@dataclass
class RunResult:
    """Outcome of one simulated system lifetime."""

    config: SystemConfig
    seed: int
    stats: RecoveryStats
    system: StorageSystem | None = None

    @property
    def data_loss(self) -> bool:
        return self.stats.any_loss


def build_manager(system: StorageSystem, sim: Simulator,
                  policy: PolicyConfig | None = None,
                  telemetry: Telemetry | None = None) -> RecoveryManager:
    """Instantiate the recovery manager selected by the config."""
    if system.config.use_farm:
        return FarmRecovery(system, sim, policy=policy, telemetry=telemetry)
    return TraditionalRecovery(system, sim, telemetry=telemetry)


def simulate_run(config: SystemConfig, seed: int = 0,
                 keep_system: bool = False,
                 policy: PolicyConfig | None = None,
                 telemetry: Telemetry | None = None,
                 failure_draw=None) -> RunResult:
    """Simulate one system for ``config.duration`` seconds.

    Deterministic in ``(config, seed)``.  Set ``keep_system`` to inspect
    final disk/group state (used by the Table 3 utilization study).
    Passing a :class:`~repro.telemetry.Telemetry` handle arms the periodic
    cluster-state probe and instruments the run; probes are read-only, so
    the stats are unchanged by enabling them.  ``failure_draw`` installs
    an importance-sampling proposal (see :mod:`repro.reliability.rare`);
    the run's likelihood ratio lands on ``stats.log_weight``.
    """
    streams = RandomStreams(seed)
    system = StorageSystem(config, streams, failure_draw=failure_draw)
    sim = Simulator()
    manager = build_manager(system, sim, policy=policy, telemetry=telemetry)
    if telemetry is not None:
        telemetry.attach_probes(sim, manager.telemetry_sample,
                                until=config.duration)

    for disk_id, t in enumerate(system.failure_times):
        if t <= config.duration:
            sim.schedule_at(t, manager.on_disk_failure, disk_id,
                            name="disk-failure")
    sim.run(until=config.duration)
    manager.finalize(config.duration)
    if failure_draw is not None:
        manager.stats.log_weight = failure_draw.log_weight
    return RunResult(config=config, seed=seed, stats=manager.stats,
                     system=system if keep_system else None)
