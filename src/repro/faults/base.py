"""Fault-injection substrate: context, statistics, injector protocol.

The paper's reliability results assume disks fail whole and loudly.  Real
fleets also suffer *latent sector errors* (silent corruption found only on
read), *transient outages* (a disk vanishes and returns with its data),
*correlated bursts* (a shelf or batch dying together) and *stragglers*
(healthy disks with degraded bandwidth).  Each of those is a small,
composable :class:`FaultInjector`; a scenario arms any subset against one
simulated system and the recovery engines degrade gracefully (see
:mod:`repro.core.recovery`).

All stochastic choices draw from dedicated named streams
(``faults-latent``, ``faults-outages``, ...) so adding an injector never
perturbs the draw order of the base simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:       # import cycle: core.recovery imports nothing from
    from ..cluster.system import StorageSystem        # here, but managers
    from ..core.recovery import RecoveryManager       # appear in the ctx.
    from ..sim.engine import Simulator
    from ..sim.rng import RandomStreams
    from ..telemetry.handle import Telemetry


@dataclass
class FaultStats:
    """What the armed injectors actually did during one run."""

    latent_injected: int = 0
    outages_started: int = 0
    outages_ended: int = 0
    bursts: int = 0
    burst_failures: int = 0
    stragglers: int = 0
    scrubs: int = 0
    scrub_discoveries: int = 0
    # Failure-domain injectors (repro.faults.domains).
    domain_bursts: int = 0
    domain_burst_failures: int = 0
    domain_outages_started: int = 0
    domain_outages_ended: int = 0
    domain_stragglers: int = 0


@dataclass
class FaultContext:
    """Everything an injector needs to act on one simulated system."""

    system: "StorageSystem"
    sim: "Simulator"
    manager: "RecoveryManager"
    streams: "RandomStreams"
    horizon: float
    stats: FaultStats = field(default_factory=FaultStats)
    #: nullable observability handle (usually ``manager.telemetry``);
    #: injectors report through it when present.
    telemetry: "Telemetry | None" = None


class FaultInjector(ABC):
    """One composable fault process.

    Subclasses implement :meth:`arm`, which installs the injector's events
    and timers on ``ctx.sim``.  Injectors report through
    ``ctx.stats`` (their own bookkeeping) and act through
    ``ctx.manager`` / ``ctx.system`` so the recovery engine sees every
    fault through its normal callbacks — never by mutating group state
    behind its back.
    """

    #: short identifier used in trace-event names and reports.
    name: str = "fault"

    @abstractmethod
    def arm(self, ctx: FaultContext) -> None:
        """Install this injector's events on the simulator."""


def arm_all(injectors: Iterable[FaultInjector],
            ctx: FaultContext) -> FaultContext:
    """Arm several injectors against one context; returns the context."""
    for injector in injectors:
        injector.arm(ctx)
    return ctx
