"""Stragglers: healthy disks with persistently degraded bandwidth.

A sampled fraction of the population gets a ``bandwidth_factor`` below
1.0; every rebuild that reads from or writes to a straggler is bounded by
the slowest participant
(:meth:`~repro.core.recovery.RecoveryManager._bandwidth_factor`), which
stretches its window of vulnerability without changing any failure.
"""

from __future__ import annotations

from .base import FaultContext, FaultInjector


class Stragglers(FaultInjector):
    """Degrade a random fraction of disks at arm time.

    Parameters
    ----------
    fraction:
        Fraction of the current population to degrade, in (0, 1].
    factor_range:
        Uniform sampling range for the bandwidth multiplier, within
        (0, 1]; e.g. ``(0.1, 0.5)`` models disks at 10–50 % speed.
    """

    name = "stragglers"

    def __init__(self, fraction: float,
                 factor_range: tuple[float, float] = (0.1, 0.5)) -> None:
        if not 0 < fraction <= 1:
            raise ValueError("straggler fraction must be in (0, 1]")
        lo, hi = factor_range
        if not 0 < lo <= hi <= 1:
            raise ValueError("factor range must satisfy 0 < lo <= hi <= 1")
        self.fraction = fraction
        self.factor_range = (lo, hi)

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-stragglers")
        n = len(ctx.system.disks)
        count = int(round(self.fraction * n))
        if count <= 0:
            return
        chosen = rng.choice(n, size=count, replace=False)
        lo, hi = self.factor_range
        factors = rng.uniform(lo, hi, size=count)
        for disk_id, factor in zip(chosen, factors):
            ctx.system.disks[int(disk_id)].bandwidth_factor = float(factor)
            ctx.stats.stragglers += 1
