"""Correlated faults along the failure-domain hierarchy.

:class:`~repro.faults.correlated.CorrelatedFailures` models a shelf — a
run of consecutive disk ids.  These injectors act on the *topology*
(:class:`~repro.cluster.topology.Topology`): a whole rack losing power, a
machine rebooting and taking all its disks offline together, a machine
with a saturated uplink throttling every disk behind it.  Domain
membership comes from ``ctx.system.topology``, so replacement disks that
inherited a failed slot's bay are hit alongside their domain — no disk is
structurally immune.

Each injector draws from its own ``faults-domain-*`` stream, so arming
one never perturbs the base simulation's draw order (asserted by the
stream-ownership analyzer, RPR102).
"""

from __future__ import annotations

import numpy as np

from .base import FaultContext, FaultInjector


def _domain_of(ctx: FaultContext, level: str, domain: int) -> list[int]:
    return ctx.system.topology.domain_disks(level, domain)


class DomainBurst(FaultInjector):
    """Poisson bursts that permanently kill a whole rack or machine.

    Parameters
    ----------
    burst_rate_per_s:
        Poisson rate of burst arrivals (1/seconds).
    level:
        ``"rack"`` or ``"machine"`` — which domain a burst takes out.
    spread_s:
        Each domain disk dies at a uniform offset within this many
        seconds of the burst (0 = simultaneous).
    """

    name = "domain-burst"

    def __init__(self, burst_rate_per_s: float, level: str = "rack",
                 spread_s: float = 0.0) -> None:
        if burst_rate_per_s <= 0:
            raise ValueError("burst rate must be positive")
        if level not in ("rack", "machine"):
            raise ValueError("level must be 'rack' or 'machine'")
        if spread_s < 0:
            raise ValueError("spread must be non-negative")
        self.rate = burst_rate_per_s
        self.level = level
        self.spread_s = spread_s

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-domain-bursts")
        self._arm_next(ctx, rng)

    # ------------------------------------------------------------------ #
    def _arm_next(self, ctx: FaultContext,
                  rng: np.random.Generator) -> None:
        when = ctx.sim.now + float(rng.exponential(1.0 / self.rate))
        if when > ctx.horizon:
            return
        ctx.sim.schedule_at(when, self._burst, ctx, rng,
                            name="domain-burst")

    def _burst(self, ctx: FaultContext, rng: np.random.Generator) -> None:
        topo = ctx.system.topology
        domain = int(rng.integers(topo.n_domains(self.level)))
        ctx.stats.domain_bursts += 1
        for disk_id in _domain_of(ctx, self.level, domain):
            if ctx.system.disks[disk_id].dead:
                continue
            delay = float(rng.random()) * self.spread_s
            ctx.sim.schedule(delay, ctx.manager.on_disk_failure, disk_id,
                             name="domain-burst-failure")
            ctx.stats.domain_burst_failures += 1
        self._arm_next(ctx, rng)


class DomainOutages(FaultInjector):
    """Whole-domain transient outages: a machine reboots, its disks
    vanish together and return together with their data.

    Both edges go through the recovery manager's ordinary
    ``on_disk_offline`` / ``on_disk_online`` callbacks, so rebuilds whose
    sources went dark land in the deferred-rebuild queue and drain when
    the domain returns.

    Parameters
    ----------
    rate_per_domain_per_s:
        Poisson rate of outage onsets on each domain (1/seconds).
    mean_duration_s:
        Mean of the exponential outage duration.
    level:
        ``"machine"`` (default — a reboot) or ``"rack"`` (a switch).
    """

    name = "domain-outages"

    def __init__(self, rate_per_domain_per_s: float,
                 mean_duration_s: float, level: str = "machine") -> None:
        if rate_per_domain_per_s <= 0 or mean_duration_s <= 0:
            raise ValueError("outage rate and duration must be positive")
        if level not in ("rack", "machine"):
            raise ValueError("level must be 'rack' or 'machine'")
        self.rate = rate_per_domain_per_s
        self.mean_duration_s = mean_duration_s
        self.level = level

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-domain-outages")
        for domain in range(ctx.system.topology.n_domains(self.level)):
            self._arm_domain(ctx, rng, domain, after=0.0)

    # ------------------------------------------------------------------ #
    def _arm_domain(self, ctx: FaultContext, rng: np.random.Generator,
                    domain: int, after: float) -> None:
        gap = float(rng.exponential(1.0 / self.rate))
        when = ctx.sim.now + after + gap
        if when > ctx.horizon:
            return
        ctx.sim.schedule_at(when, self._begin, ctx, rng, domain,
                            name="domain-outage-begin")

    def _begin(self, ctx: FaultContext, rng: np.random.Generator,
               domain: int) -> None:
        duration = float(rng.exponential(self.mean_duration_s))
        affected = [d for d in _domain_of(ctx, self.level, domain)
                    if not ctx.system.disks[d].dead
                    and ctx.system.disks[d].online]
        if affected:
            ctx.stats.domain_outages_started += 1
            for disk_id in affected:
                ctx.manager.on_disk_offline(disk_id)
            ctx.sim.schedule(duration, self._end, ctx, affected,
                             name="domain-outage-end")
        # The next outage cannot begin before this one would have ended.
        self._arm_domain(ctx, rng, domain, after=duration)

    def _end(self, ctx: FaultContext, affected: list[int]) -> None:
        ctx.stats.domain_outages_ended += 1
        for disk_id in affected:
            ctx.manager.on_disk_online(disk_id)     # stale-guarded if dead


class DomainStragglers(FaultInjector):
    """Degrade every disk behind a sampled set of domains at arm time.

    Models a saturated machine uplink or top-of-rack switch: the whole
    domain shares the bottleneck, so all of its disks get the *same*
    bandwidth multiplier (unlike per-disk
    :class:`~repro.faults.stragglers.Stragglers`).

    Parameters
    ----------
    fraction:
        Fraction of the domains to degrade, in (0, 1].
    factor_range:
        Uniform sampling range for the per-domain multiplier, within
        (0, 1].
    level:
        ``"machine"`` (default) or ``"rack"``.
    """

    name = "domain-stragglers"

    def __init__(self, fraction: float,
                 factor_range: tuple[float, float] = (0.1, 0.5),
                 level: str = "machine") -> None:
        if not 0 < fraction <= 1:
            raise ValueError("straggler fraction must be in (0, 1]")
        lo, hi = factor_range
        if not 0 < lo <= hi <= 1:
            raise ValueError("factor range must satisfy 0 < lo <= hi <= 1")
        if level not in ("rack", "machine"):
            raise ValueError("level must be 'rack' or 'machine'")
        self.fraction = fraction
        self.factor_range = (lo, hi)
        self.level = level

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-domain-stragglers")
        n = ctx.system.topology.n_domains(self.level)
        count = int(round(self.fraction * n))
        if count <= 0:
            return
        chosen = rng.choice(n, size=count, replace=False)
        lo, hi = self.factor_range
        factors = rng.uniform(lo, hi, size=count)
        for domain, factor in zip(chosen, factors):
            for disk_id in _domain_of(ctx, self.level, int(domain)):
                disk = ctx.system.disks[disk_id]
                disk.bandwidth_factor = min(disk.bandwidth_factor,
                                            float(factor))
            ctx.stats.domain_stragglers += 1
