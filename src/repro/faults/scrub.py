"""Periodic scrubbing: the process that bounds latent-error lifetime.

A scrubber reads every disk once per ``interval_s``, spreading the work
round-robin so one disk is verified every ``interval_s / population``
seconds.  Scrubbing an online disk surfaces all of its latent errors via
:meth:`~repro.core.recovery.RecoveryManager.discover_latent`, which fails
the corrupt blocks and enqueues ordinary rebuilds.  Shrinking the interval
therefore shrinks the mean undiscovered lifetime of a latent error (about
``interval_s / 2``) and with it the window in which a second fault can
combine with the hidden corruption — the effect
``experiments/faults_sweep.py`` quantifies.
"""

from __future__ import annotations

from .base import FaultContext, FaultInjector


class Scrubber(FaultInjector):
    """Round-robin whole-population scrub with a fixed cycle time.

    Parameters
    ----------
    interval_s:
        Target time to scrub the whole (surviving) population once.  The
        per-tick period is re-computed each arming, so the cadence adapts
        as disks die or batches arrive.
    """

    name = "scrub"

    def __init__(self, interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError("scrub interval must be positive")
        self.interval_s = interval_s

    def arm(self, ctx: FaultContext) -> None:
        cursor = [0]    # round-robin position, private to this arming

        def period() -> float:
            alive = sum(1 for d in ctx.system.disks if not d.dead)
            return self.interval_s / max(alive, 1)

        ctx.sim.every(period, self._tick, ctx, cursor, until=ctx.horizon,
                      name="scrub-tick")

    # ------------------------------------------------------------------ #
    def _tick(self, ctx: FaultContext, cursor: list[int]) -> None:
        disks = ctx.system.disks
        n = len(disks)
        for _ in range(n):      # next surviving disk in id order
            disk = disks[cursor[0] % n]
            cursor[0] += 1
            if not disk.dead:
                break
        else:
            return      # everything is dead; nothing to verify
        ctx.stats.scrubs += 1
        tele = ctx.telemetry
        if tele is not None:
            tele.scrubs.inc()
        if not disk.online:
            return      # offline: unreadable now; its turn comes again
        for grp_id, rep_id in sorted(disk.latent_blocks):
            if ctx.manager.discover_latent(disk.disk_id, grp_id, rep_id):
                ctx.stats.scrub_discoveries += 1
                if tele is not None:
                    tele.scrub_discoveries.inc()
