"""Transient disk outages: offline for a while, then back with its data.

Distinct from permanent death: an outage makes a disk unreachable (its
blocks can be neither read as rebuild sources nor written as targets) but
the data survives and returns when the outage ends.  The recovery manager
treats both edges as redirection events, never as losses
(:meth:`~repro.core.recovery.RecoveryManager.on_disk_offline` /
:meth:`~repro.core.recovery.RecoveryManager.on_disk_online`).
"""

from __future__ import annotations

import numpy as np

from ..disks.disk import DiskState
from .base import FaultContext, FaultInjector


class TransientOutages(FaultInjector):
    """Per-disk Poisson outages with exponentially-sampled durations.

    Parameters
    ----------
    rate_per_disk_per_s:
        Poisson rate of outage onsets on each disk (1/seconds).
    mean_duration_s:
        Mean of the exponential outage duration.
    """

    name = "outages"

    def __init__(self, rate_per_disk_per_s: float,
                 mean_duration_s: float) -> None:
        if rate_per_disk_per_s <= 0 or mean_duration_s <= 0:
            raise ValueError("outage rate and duration must be positive")
        self.rate = rate_per_disk_per_s
        self.mean_duration_s = mean_duration_s

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-outages")
        for disk in ctx.system.disks:
            self._arm_disk(ctx, rng, disk.disk_id, after=0.0)

    # ------------------------------------------------------------------ #
    def _arm_disk(self, ctx: FaultContext, rng: np.random.Generator,
                  disk_id: int, after: float) -> None:
        gap = float(rng.exponential(1.0 / self.rate))
        when = ctx.sim.now + after + gap
        if when > ctx.horizon:
            return
        ctx.sim.schedule_at(when, self._begin, ctx, rng, disk_id,
                            name="outage-begin")

    def _begin(self, ctx: FaultContext, rng: np.random.Generator,
               disk_id: int) -> None:
        disk = ctx.system.disks[disk_id]
        if disk.dead:
            return
        duration = float(rng.exponential(self.mean_duration_s))
        if disk.online:
            ctx.stats.outages_started += 1
            ctx.manager.on_disk_offline(disk_id)
            ctx.sim.schedule(duration, self._end, ctx, disk_id,
                             name="outage-end")
        # The next outage cannot begin before this one would have ended.
        self._arm_disk(ctx, rng, disk_id, after=duration)

    def _end(self, ctx: FaultContext, disk_id: int) -> None:
        if ctx.system.disks[disk_id].state is DiskState.OFFLINE:
            ctx.stats.outages_ended += 1
        ctx.manager.on_disk_online(disk_id)     # stale-guarded if it died
