"""Latent sector errors: silent per-disk corruption, found only on read.

Each disk accrues latent errors as an independent Poisson process.  An
injection silently corrupts one uniformly-chosen live block on the disk
(:meth:`~repro.cluster.system.StorageSystem.inject_latent_error`); nothing
in the system notices until a :class:`~repro.faults.scrub.Scrubber` pass
or a rebuild read of that block discovers it — at which point the block is
failed and rebuilt like any other loss, or, if the group had no redundancy
left, the group is lost.
"""

from __future__ import annotations

import numpy as np

from .base import FaultContext, FaultInjector


class LatentSectorErrors(FaultInjector):
    """Per-disk Poisson arrivals of silent single-block corruption.

    Parameters
    ----------
    rate_per_disk_per_s:
        Poisson rate of latent-error arrivals on each disk (1/seconds).
    """

    name = "latent"

    def __init__(self, rate_per_disk_per_s: float) -> None:
        if rate_per_disk_per_s <= 0:
            raise ValueError("latent-error rate must be positive")
        self.rate = rate_per_disk_per_s

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-latent")
        for disk in ctx.system.disks:
            self._arm_disk(ctx, rng, disk.disk_id)

    # ------------------------------------------------------------------ #
    def _arm_disk(self, ctx: FaultContext, rng: np.random.Generator,
                  disk_id: int) -> None:
        when = ctx.sim.now + float(rng.exponential(1.0 / self.rate))
        if when > ctx.horizon:
            return
        ctx.sim.schedule_at(when, self._inject, ctx, rng, disk_id,
                            name="latent-inject")

    def _inject(self, ctx: FaultContext, rng: np.random.Generator,
                disk_id: int) -> None:
        disk = ctx.system.disks[disk_id]
        if disk.dead:
            return      # a dead disk accrues no further errors
        if disk.online:     # an offline disk is unwritable *and* unreadable
            hit = ctx.system.inject_latent_error(disk_id, rng, ctx.sim.now)
            if hit is not None:
                ctx.stats.latent_injected += 1
        self._arm_disk(ctx, rng, disk_id)
