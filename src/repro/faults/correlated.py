"""Correlated failure bursts: a shelf of disks dying close together.

A stochastic generalization of the scripted batch-failure scenarios in
:mod:`repro.reliability.scenarios`: bursts arrive as a Poisson process,
each one picks a shelf (a run of ``shelf_size`` consecutive disk ids —
disks sharing power, cooling and a vibration domain) and kills every
still-alive disk in it within a short spread.  Failures are delivered via
the recovery manager's ordinary
:meth:`~repro.core.recovery.RecoveryManager.on_disk_failure` callback.
"""

from __future__ import annotations

import numpy as np

from .base import FaultContext, FaultInjector


class CorrelatedFailures(FaultInjector):
    """Poisson bursts that fail a whole shelf of consecutive disks.

    Parameters
    ----------
    burst_rate_per_s:
        Poisson rate of burst arrivals (1/seconds).
    shelf_size:
        Disks per shelf; shelves tile the initial population in id order.
    spread_s:
        Each shelf disk dies at a uniform offset within this many seconds
        of the burst (0 = simultaneous).
    """

    name = "correlated"

    def __init__(self, burst_rate_per_s: float, shelf_size: int = 12,
                 spread_s: float = 0.0) -> None:
        if burst_rate_per_s <= 0:
            raise ValueError("burst rate must be positive")
        if shelf_size <= 0:
            raise ValueError("shelf must contain at least one disk")
        if spread_s < 0:
            raise ValueError("spread must be non-negative")
        self.rate = burst_rate_per_s
        self.shelf_size = shelf_size
        self.spread_s = spread_s

    def arm(self, ctx: FaultContext) -> None:
        rng = ctx.streams.get("faults-correlated")
        self._arm_next(ctx, rng)

    # ------------------------------------------------------------------ #
    def _arm_next(self, ctx: FaultContext,
                  rng: np.random.Generator) -> None:
        when = ctx.sim.now + float(rng.exponential(1.0 / self.rate))
        if when > ctx.horizon:
            return
        ctx.sim.schedule_at(when, self._burst, ctx, rng,
                            name="shelf-burst")

    def _burst(self, ctx: FaultContext, rng: np.random.Generator) -> None:
        n_shelves = max(ctx.system.initial_population // self.shelf_size, 1)
        shelf = int(rng.integers(n_shelves))
        ctx.stats.bursts += 1
        # Shelf membership wraps modulo the shelf count, so replacement
        # disks (ids past the initial population) land in a real shelf —
        # the slot their predecessor vacated shares its power/cooling —
        # instead of being structurally burst-immune.
        for disk in ctx.system.disks:
            if (disk.disk_id // self.shelf_size) % n_shelves != shelf:
                continue
            if disk.dead:
                continue
            delay = float(rng.random()) * self.spread_s
            ctx.sim.schedule(delay, ctx.manager.on_disk_failure,
                             disk.disk_id, name="burst-failure")
            ctx.stats.burst_failures += 1
        self._arm_next(ctx, rng)
