"""Composable fault injection for the recovery simulations.

Public surface:

* :class:`~repro.faults.base.FaultInjector` — the injector protocol.
* :class:`~repro.faults.base.FaultContext`,
  :class:`~repro.faults.base.FaultStats`, and
  :func:`~repro.faults.base.arm_all` — wiring and bookkeeping.
* :class:`~repro.faults.latent.LatentSectorErrors` — silent corruption.
* :class:`~repro.faults.outages.TransientOutages` — offline-and-return.
* :class:`~repro.faults.correlated.CorrelatedFailures` — shelf bursts.
* :class:`~repro.faults.stragglers.Stragglers` — degraded bandwidth.
* :class:`~repro.faults.scrub.Scrubber` — periodic latent-error discovery.
* :class:`~repro.faults.domains.DomainBurst`,
  :class:`~repro.faults.domains.DomainOutages`, and
  :class:`~repro.faults.domains.DomainStragglers` — correlated faults
  along the rack/machine failure-domain hierarchy.
"""

from .base import FaultContext, FaultInjector, FaultStats, arm_all
from .correlated import CorrelatedFailures
from .domains import DomainBurst, DomainOutages, DomainStragglers
from .latent import LatentSectorErrors
from .outages import TransientOutages
from .scrub import Scrubber
from .stragglers import Stragglers

__all__ = [
    "FaultInjector", "FaultContext", "FaultStats", "arm_all",
    "LatentSectorErrors", "TransientOutages", "CorrelatedFailures",
    "Stragglers", "Scrubber",
    "DomainBurst", "DomainOutages", "DomainStragglers",
]
