"""System configuration: Table 2 of the paper, as a frozen dataclass.

Every experiment is a :class:`SystemConfig` plus a seed.  Defaults are the
paper's base values; the ``Examined Value`` column of Table 2 is produced by
``dataclasses.replace`` sweeps in :mod:`repro.experiments`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields, replace
from typing import Any, Literal, Mapping

from .disks.failure import BathtubFailureModel, RatePeriod
from .disks.vintage import PAPER_VINTAGE, DiskVintage
from .redundancy.schemes import MIRROR_2, RedundancyScheme
from .units import DAY, GB, PB, YEAR


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one simulated storage system.

    Parameters mirror Table 2 (base values as defaults):

    * ``total_user_bytes`` — total data in the system (2 PB).
    * ``group_user_bytes`` — size of a redundancy group, user data only
      (10 GB; the paper also uses 50 GB and examines 1–100 GB).
    * ``scheme`` — group configuration (two-way mirroring).
    * ``detection_latency`` — latency to failure detection (30 s).
    * ``recovery_bandwidth_bps`` — disk bandwidth for recovery (16 MB/s,
      examined 8–40 MB/s); ``None`` uses the vintage's 20% cap.
    * ``use_farm`` — FARM distributed recovery vs. traditional spare-disk
      rebuild.
    * ``replacement_threshold`` — fraction of disks lost that triggers a
      replacement batch (Figure 7); ``None`` disables replacement.
    """

    total_user_bytes: float = 2 * PB
    group_user_bytes: float = 10 * GB
    scheme: RedundancyScheme = MIRROR_2
    vintage: DiskVintage = PAPER_VINTAGE
    detection_latency: float = 30.0
    recovery_bandwidth_bps: float | None = None
    target_utilization: float = 0.40
    spare_reserve_fraction: float = 0.04
    use_farm: bool = True
    use_smart: bool = False
    #: SMART monitor model (paper §2.3), consumed by *both* engines when
    #: ``use_smart`` is on: chance a failing drive is flagged inside the
    #: warning horizon, the horizon itself, and the spurious-flag rate.
    smart_detection_probability: float = 0.4
    smart_warning_horizon: float = 7 * DAY
    smart_false_positive_rate: float = 0.01
    replacement_threshold: float | None = None
    duration: float = 6 * YEAR
    placement: Literal["random", "rush", "copyset"] = "random"
    workload_peak_load: float = 0.0   # 0 disables the diurnal workload model
    #: Failure-domain topology (rack -> machine -> disk).  The default
    #: 1 x 1 degenerates to the paper's flat pool: one rack holding one
    #: machine holding every disk, so no behaviour changes.
    racks: int = 1
    machines_per_rack: int = 1
    #: Cap on how many blocks of one group may share a *rack*; ``None``
    #: (the default) disables the constraint entirely.  The machine-level
    #: bound follows a fortiori since machines nest inside racks.
    max_chunks_per_domain: int | None = None
    #: Lazy-recovery trigger (:mod:`repro.availability`): a group only
    #: enqueues rebuilds once >= this many of its blocks are lost or
    #: unavailable (transient outages count toward the trigger).  The
    #: default 1 is eager recovery — bit-identical to the pre-policy
    #: engines; values > 1 require a scheme that tolerates that many
    #: simultaneous losses.
    recovery_threshold: int = 1
    #: Rate-limited repair lane: cap the per-disk recovery bandwidth at
    #: this fraction of the vintage's *full* disk bandwidth, modelling
    #: foreground traffic claiming the rest.  ``None`` (the default)
    #: leaves ``recovery_bandwidth`` untouched; setting it is mutually
    #: exclusive with ``recovery_bandwidth_bps``.  Both engines reject a
    #: rate-limited config whose steady-state repair demand exceeds the
    #: lane (Luby bound; see :mod:`repro.availability.luby`).
    repair_bandwidth_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.total_user_bytes <= 0:
            raise ValueError("total_user_bytes must be positive")
        if not 0 < self.group_user_bytes <= self.total_user_bytes:
            raise ValueError("group size must be in (0, total data]")
        if self.detection_latency < 0:
            raise ValueError("detection latency cannot be negative")
        if not 0 < self.target_utilization < 1:
            raise ValueError("target utilization must be in (0, 1)")
        if not 0 <= self.spare_reserve_fraction < 1:
            raise ValueError("spare reserve must be in [0, 1)")
        if self.replacement_threshold is not None and not (
                0 < self.replacement_threshold < 1):
            raise ValueError("replacement threshold must be in (0, 1)")
        if not 0 <= self.smart_detection_probability <= 1:
            raise ValueError("smart detection probability must be in [0, 1]")
        if not 0 <= self.smart_false_positive_rate <= 1:
            raise ValueError("smart false positive rate must be in [0, 1]")
        if self.smart_warning_horizon < 0:
            raise ValueError("smart warning horizon cannot be negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.workload_peak_load < 1:
            raise ValueError("workload peak load must be in [0, 1)")
        if self.racks < 1 or self.machines_per_rack < 1:
            raise ValueError("topology needs at least 1 rack and 1 "
                             "machine per rack")
        if self.max_chunks_per_domain is not None:
            if self.max_chunks_per_domain < 1:
                raise ValueError("max_chunks_per_domain must be >= 1")
            if self.racks * self.max_chunks_per_domain < self.scheme.n:
                raise ValueError(
                    f"infeasible domain constraint: {self.racks} racks x "
                    f"{self.max_chunks_per_domain} chunks/rack cannot hold "
                    f"a group of {self.scheme.n} blocks")
            if self.n_disks < self.racks * self.machines_per_rack:
                raise ValueError(
                    "domain constraint needs every machine populated: "
                    f"{self.n_disks} disks < {self.racks} racks x "
                    f"{self.machines_per_rack} machines")
        if self.recovery_threshold < 1:
            raise ValueError("recovery_threshold must be >= 1")
        if self.recovery_threshold > max(1, self.scheme.tolerance):
            raise ValueError(
                f"recovery_threshold {self.recovery_threshold} exceeds the "
                f"scheme's fault tolerance ({self.scheme.tolerance}): the "
                f"group would be lost before recovery ever triggered")
        if self.repair_bandwidth_fraction is not None:
            if not 0 < self.repair_bandwidth_fraction <= 1:
                raise ValueError(
                    "repair_bandwidth_fraction must be in (0, 1]")
            if self.recovery_bandwidth_bps is not None:
                raise ValueError(
                    "recovery_bandwidth_bps and repair_bandwidth_fraction "
                    "are mutually exclusive ways to set the repair rate")
        block = self.scheme.block_bytes(self.group_user_bytes)
        usable = self.vintage.capacity_bytes * (
            1.0 - self.spare_reserve_fraction)
        if block > usable:
            raise ValueError(
                f"a single block ({block:.3g} B) does not fit on one disk "
                f"({usable:.3g} B usable); shrink the group or raise m")

    # -- derived geometry -------------------------------------------------- #
    @property
    def recovery_bandwidth(self) -> float:
        """Effective per-disk recovery bandwidth (bytes/s).

        The rate-limited repair lane (``repair_bandwidth_fraction``)
        takes precedence: it carves the lane out of the vintage's *full*
        disk bandwidth, so every consumer — both engines' transfer
        times, ``disk_rebuild_seconds``, and the Luby feasibility rail —
        sees the cap through this single property.
        """
        if self.repair_bandwidth_fraction is not None:
            return self.repair_bandwidth_fraction \
                * self.vintage.bandwidth_bps
        if self.recovery_bandwidth_bps is not None:
            return self.recovery_bandwidth_bps
        return self.vintage.recovery_bandwidth_bps

    @property
    def n_groups(self) -> int:
        """Number of redundancy groups in the system."""
        return max(1, round(self.total_user_bytes / self.group_user_bytes))

    @property
    def raw_bytes(self) -> float:
        """Raw storage consumed (user data times the scheme's stretch)."""
        return self.total_user_bytes * self.scheme.stretch

    @property
    def n_disks(self) -> int:
        """Disks needed to hold the raw data at the target utilization.

        2 PB under two-way mirroring on 1 TB disks at 40% => 10,000 disks;
        three-way mirroring => 15,000 (the paper's "up to 15,000 drives").
        """
        per_disk = self.vintage.capacity_bytes * self.target_utilization
        return max(self.scheme.n, math.ceil(self.raw_bytes / per_disk))

    @property
    def block_bytes(self) -> float:
        """Bytes of each stored block (user data / m)."""
        return self.scheme.block_bytes(self.group_user_bytes)

    @property
    def blocks_per_disk(self) -> float:
        """Mean number of group blocks per disk."""
        return self.n_groups * self.scheme.n / self.n_disks

    @property
    def rebuild_seconds_per_block(self) -> float:
        """Time to reconstruct one block at the recovery bandwidth.

        Paper §3.3: 64 s for 1 GB (mirroring) at 16 MB/s.
        """
        return self.block_bytes / self.recovery_bandwidth

    @property
    def disk_rebuild_seconds(self) -> float:
        """Time to rebuild a whole disk's data serially (traditional RAID)."""
        used = self.vintage.capacity_bytes * self.target_utilization
        return used / self.recovery_bandwidth

    # -- sweeps ------------------------------------------------------------- #
    def with_(self, **kwargs: Any) -> "SystemConfig":
        """``dataclasses.replace`` with a shorter name for sweep code."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line human-readable summary."""
        from .units import fmt_bytes
        mode = "FARM" if self.use_farm else "traditional"
        return (f"{fmt_bytes(self.total_user_bytes)} user data, "
                f"scheme {self.scheme.name}, groups of "
                f"{fmt_bytes(self.group_user_bytes)}, {self.n_disks} disks, "
                f"{mode} recovery")


#: The paper's base configuration (Table 2).
PAPER_BASE = SystemConfig()


# --------------------------------------------------------------------- #
# Canonical serialization and content addressing
# --------------------------------------------------------------------- #
#: Schema tag stamped on every canonical config dict.
CONFIG_SCHEMA = "repro.config.v1"


def _failure_model_to_dict(fm: BathtubFailureModel) -> dict[str, Any]:
    return {
        "rate_multiplier": fm.rate_multiplier,
        # JSON has no Infinity under allow_nan=False; the unbounded final
        # period is encoded as null and restored on parse.
        "periods": [
            {"start_months": p.start_months,
             "end_months": (None if math.isinf(p.end_months)
                            else p.end_months),
             "pct_per_1000h": p.pct_per_1000h}
            for p in fm.periods],
    }


def _failure_model_from_dict(data: Mapping[str, Any]) -> BathtubFailureModel:
    defaults = BathtubFailureModel()
    periods = data.get("periods")
    if periods is None:
        parsed = defaults.periods
    else:
        parsed = tuple(
            RatePeriod(
                start_months=float(p["start_months"]),
                end_months=(float("inf") if p.get("end_months") is None
                            else float(p["end_months"])),
                pct_per_1000h=float(p["pct_per_1000h"]))
            for p in periods)
    return BathtubFailureModel(
        periods=parsed,
        rate_multiplier=float(data.get("rate_multiplier",
                                       defaults.rate_multiplier)))


def _vintage_to_dict(v: DiskVintage) -> dict[str, Any]:
    return {
        "name": v.name,
        "capacity_bytes": v.capacity_bytes,
        "bandwidth_bps": v.bandwidth_bps,
        "recovery_bandwidth_fraction": v.recovery_bandwidth_fraction,
        "eodl_seconds": v.eodl_seconds,
        "weight": v.weight,
        "failure_model": _failure_model_to_dict(v.failure_model),
    }


def _vintage_from_dict(data: Mapping[str, Any]) -> DiskVintage:
    defaults = PAPER_VINTAGE
    fm = data.get("failure_model")
    return DiskVintage(
        name=str(data.get("name", defaults.name)),
        capacity_bytes=float(data.get("capacity_bytes",
                                      defaults.capacity_bytes)),
        bandwidth_bps=float(data.get("bandwidth_bps",
                                     defaults.bandwidth_bps)),
        recovery_bandwidth_fraction=float(
            data.get("recovery_bandwidth_fraction",
                     defaults.recovery_bandwidth_fraction)),
        eodl_seconds=float(data.get("eodl_seconds", defaults.eodl_seconds)),
        weight=float(data.get("weight", defaults.weight)),
        failure_model=(_failure_model_from_dict(fm) if fm is not None
                       else defaults.failure_model),
    )


def config_to_dict(cfg: SystemConfig) -> dict[str, Any]:
    """Canonical JSON-safe dict of a config — *every* field, always.

    Emitting every field (never eliding defaults) is what makes the
    digest stable under default-equality: a config constructed with a
    field explicitly set to its default value serializes — and therefore
    hashes — identically to one that never mentioned the field.
    """
    return {
        "schema": CONFIG_SCHEMA,
        "total_user_bytes": cfg.total_user_bytes,
        "group_user_bytes": cfg.group_user_bytes,
        "scheme": {"m": cfg.scheme.m, "n": cfg.scheme.n},
        "vintage": _vintage_to_dict(cfg.vintage),
        "detection_latency": cfg.detection_latency,
        "recovery_bandwidth_bps": cfg.recovery_bandwidth_bps,
        "target_utilization": cfg.target_utilization,
        "spare_reserve_fraction": cfg.spare_reserve_fraction,
        "use_farm": cfg.use_farm,
        "use_smart": cfg.use_smart,
        "smart_detection_probability": cfg.smart_detection_probability,
        "smart_warning_horizon": cfg.smart_warning_horizon,
        "smart_false_positive_rate": cfg.smart_false_positive_rate,
        "replacement_threshold": cfg.replacement_threshold,
        "duration": cfg.duration,
        "placement": cfg.placement,
        "workload_peak_load": cfg.workload_peak_load,
        "racks": cfg.racks,
        "machines_per_rack": cfg.machines_per_rack,
        "max_chunks_per_domain": cfg.max_chunks_per_domain,
        "recovery_threshold": cfg.recovery_threshold,
        "repair_bandwidth_fraction": cfg.repair_bandwidth_fraction,
    }


def _parse_scheme(value: Any) -> RedundancyScheme:
    if isinstance(value, RedundancyScheme):
        return value
    if isinstance(value, str):
        return RedundancyScheme.parse(value)
    if isinstance(value, Mapping):
        return RedundancyScheme(m=int(value["m"]), n=int(value["n"]))
    raise ValueError(f"cannot parse scheme from {value!r}; expected "
                     f"'m/n', {{'m': ..., 'n': ...}}, or a "
                     f"RedundancyScheme")


#: Keys :func:`config_from_dict` accepts beyond the config fields.
_EXTRA_DICT_KEYS = frozenset({"schema"})


def config_from_dict(data: Mapping[str, Any]) -> SystemConfig:
    """Build a config from a (possibly partial) canonical dict.

    The inverse of :func:`config_to_dict`: missing keys take the
    :class:`SystemConfig` defaults, unknown keys are an error (a typo'd
    field name silently falling back to a default would corrupt cache
    keys), and nested ``scheme``/``vintage`` dicts are reconstructed into
    their value objects.  Validation runs through ``__post_init__`` as
    for any other construction.
    """
    field_names = {f.name for f in fields(SystemConfig)}
    unknown = set(data) - field_names - _EXTRA_DICT_KEYS
    if unknown:
        raise ValueError(
            f"unknown config field(s) {sorted(unknown)}; expected a "
            f"subset of {sorted(field_names)}")
    schema = data.get("schema")
    if schema is not None and schema != CONFIG_SCHEMA:
        raise ValueError(f"config schema {schema!r} is not "
                         f"{CONFIG_SCHEMA!r}")
    kwargs: dict[str, Any] = {}
    for name in field_names:
        if name not in data:
            continue
        value = data[name]
        if name == "scheme":
            kwargs[name] = _parse_scheme(value)
        elif name == "vintage":
            kwargs[name] = (value if isinstance(value, DiskVintage)
                            else _vintage_from_dict(value))
        else:
            kwargs[name] = value
    return SystemConfig(**kwargs)


def canonical_config_json(cfg: SystemConfig) -> str:
    """Deterministic JSON form: sorted keys, compact, no NaN/Infinity."""
    return json.dumps(config_to_dict(cfg), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def config_digest(cfg: SystemConfig) -> str:
    """Content address of a config: blake2b over the canonical JSON.

    The key of the forecast service's result cache
    (:mod:`repro.service.cache`).  Stable across processes, field order,
    and default-vs-explicit construction; any semantic change to the
    config changes the digest.
    """
    h = hashlib.blake2b(canonical_config_json(cfg).encode("utf-8"),
                        digest_size=16)
    return h.hexdigest()
