"""Most-at-risk-first repair priority queue.

Lazy recovery (``SystemConfig.recovery_threshold``) holds a degraded
group's rebuilds back until enough redundancy is gone; when the trigger
fires, every held block of the group — and, on a multi-group failure
event, blocks of several groups at once — is *released* through this
queue so the most-at-risk work reaches the repair lane first.

Ordering (ascending): **surviving redundancy** (how many further block
losses the group can absorb — fewer means closer to data loss), then
**window age** (earlier ``failed_at`` means the block has been
vulnerable longer), then ``(grp_id, rep_id)`` for a deterministic total
order.  The invariant tests in ``tests/test_availability.py`` assert
that no block with lower surviving redundancy ever waits behind a
higher one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True, order=True)
class RepairPriority:
    """Sort key of one held rebuild; smaller sorts (and repairs) first."""

    #: Further block losses the group survives (tolerance - missing).
    surviving: int
    #: When the block became unavailable (older = more urgent).
    failed_at: float
    grp_id: int
    rep_id: int


class RepairPriorityQueue:
    """Deterministic min-heap over :class:`RepairPriority` keys.

    Keys are unique per ``(grp_id, rep_id)`` at any instant, so the heap
    never compares payloads; a push sequence number breaks the (never
    expected) exact-duplicate tie deterministically anyway.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[RepairPriority, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, priority: RepairPriority, item: Any) -> None:
        heapq.heappush(self._heap, (priority, self._seq, item))
        self._seq += 1

    def pop(self) -> tuple[RepairPriority, Any]:
        """Remove and return the most urgent ``(priority, item)``."""
        priority, _, item = heapq.heappop(self._heap)
        return priority, item

    def peek(self) -> tuple[RepairPriority, Any]:
        priority, _, item = self._heap[0]
        return priority, item

    def drain(self) -> Iterator[tuple[RepairPriority, Any]]:
        """Yield every entry most-urgent-first, emptying the queue."""
        while self._heap:
            yield self.pop()
