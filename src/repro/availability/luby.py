"""Luby's steady-state repair-demand bound (the feasibility rail).

Failures arrive at ``n_disks * mean_hazard`` and each failed disk must
be re-replicated from its surviving peers, so the recovery *work* is at
least :data:`REPAIR_WORK_FACTOR` times the lost bytes (read + write —
the Luby argument's constant for mirrored/small-m codes).  When the
resulting utilization of the recovery lane reaches 1, the rebuild queue
grows without bound and no lifetime estimate is meaningful.

This module is the single home of the rail; it moved here from
:mod:`repro.service.cascade` (which re-exports it for compatibility) so
the DES engines can consult it without importing the HTTP service.  The
engines enforce it at construction time whenever the rate-limited
repair lane (``repair_bandwidth_fraction``) is active; the forecast
service keeps rejecting infeasible configs with HTTP 422 on every
query, rate-limited or not.
"""

from __future__ import annotations

from ..config import SystemConfig

#: Redundancy overhead factor in the repair-demand rail: every lost
#: block is rebuilt by reading its surviving peers, so the recovery
#: work is at least twice the lost bytes (read + write).
REPAIR_WORK_FACTOR = 2.0


class InfeasibleConfig(Exception):
    """A config whose repair demand outruns its recovery bandwidth."""


def repair_utilization(cfg: SystemConfig) -> float:
    """Steady-state fraction of recovery bandwidth repair demand uses.

    Failures arrive at ``n_disks * mean_hazard`` and each costs one disk
    rebuild spread over the farm; utilization ≥ 1 means the repair queue
    grows without bound and *no* lifetime estimate is meaningful — the
    per-disk form reduces to ``factor * hazard * disk_rebuild_seconds``.
    """
    # Lazy import: repro.reliability may itself be mid-import when an
    # engine module pulls in this rail.
    from ..reliability import analytic
    return REPAIR_WORK_FACTOR * analytic.mean_hazard(cfg) \
        * cfg.disk_rebuild_seconds


def check_feasible(cfg: SystemConfig) -> None:
    """Raise :class:`InfeasibleConfig` when repair cannot keep up."""
    util = repair_utilization(cfg)
    if util >= 1.0:
        raise InfeasibleConfig(
            f"repair utilization {util:.3g} >= 1: failure inflow "
            f"exceeds recovery bandwidth, the rebuild queue diverges "
            f"and P(loss) -> 1; add bandwidth or redundancy instead "
            f"of forecasting this configuration")


def check_repair_lane(cfg: SystemConfig) -> None:
    """Engine-side gate: reject an infeasible *rate-limited* config.

    Only active when ``repair_bandwidth_fraction`` is set — the default
    engines accept any config (reliability sweeps deliberately visit
    overloaded regimes), but a config that *asks* for a capped repair
    lane too narrow for its own failure inflow is a modelling error,
    rejected consistently here and by the service's 422 rail.
    """
    if cfg.repair_bandwidth_fraction is None:
        return
    check_feasible(cfg)
