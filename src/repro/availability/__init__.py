"""Availability workloads: lazy recovery, repair scheduling, nines.

The paper measures durability only; this package adds the other half of
a fleet's story — how long groups sit degraded, what user reads cost
while they are, and how repair scheduling trades bandwidth against risk:

* :mod:`repro.availability.queue` — the most-at-risk-first repair
  priority queue both DES engines use to order lazy-recovery releases
  (by surviving redundancy, then window age);
* :mod:`repro.availability.luby` — Luby's steady-state repair-demand
  bound, the feasibility rail shared by the engines (construction-time
  rejection of rate-limited configs that cannot keep up) and the
  forecast service (HTTP 422);
* :mod:`repro.availability.metrics` — availability fractions, "nines",
  and degraded-read cost derived from the per-group unavailability
  spans the engines account on :class:`~repro.core.recovery.RecoveryStats`
  and the ``repro_group_unavailability_seconds`` span tracker.

The policy knobs live on :class:`~repro.config.SystemConfig`
(``recovery_threshold``, ``repair_bandwidth_fraction``); their defaults
keep both engines bit-identical to the pre-policy golden pins —
asserted by ``tests/test_availability.py``.  Semantics are documented
in docs/AVAILABILITY.md.
"""

from .luby import (REPAIR_WORK_FACTOR, InfeasibleConfig, check_feasible,
                   repair_utilization)
from .metrics import (availability_fraction, availability_nines,
                      degraded_read_cost, unavailability_fraction)
from .queue import RepairPriority, RepairPriorityQueue

__all__ = [
    "InfeasibleConfig",
    "REPAIR_WORK_FACTOR",
    "RepairPriority",
    "RepairPriorityQueue",
    "availability_fraction",
    "availability_nines",
    "check_feasible",
    "degraded_read_cost",
    "repair_utilization",
    "unavailability_fraction",
]
