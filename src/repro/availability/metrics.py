"""Availability fractions, "nines", and degraded-read cost.

These are pure closed-form reductions of the engines' per-group
unavailability accounting (``RecoveryStats.unavail_group_seconds`` and
the ``repro_group_unavailability_seconds`` span tracker): a group is
*unavailable-degraded* while at least one of its blocks is failed, and
the exposure base is ``n_groups * duration`` group-seconds.

"Nines" is the usual transform ``-log10(1 - A)``: A = 0.999 is three
nines.  A perfectly available run (zero degraded group-seconds) has
infinitely many nines — returned as ``math.inf`` rather than clamped,
so monotonicity assertions stay exact.
"""

from __future__ import annotations

import math

# Re-exported here so availability consumers get the whole nines story
# from one namespace; the model itself lives with the other degraded-
# mode performance math.
from ..performance.degraded import degraded_read_cost

__all__ = [
    "availability_fraction",
    "availability_nines",
    "degraded_read_cost",
    "unavailability_fraction",
]


def unavailability_fraction(unavail_group_seconds: float, n_groups: int,
                            duration: float) -> float:
    """Fraction of group-seconds spent degraded, in ``[0, 1]``.

    ``unavail_group_seconds`` is the engines' summed span total; the
    exposure base is ``n_groups * duration``.  Values are clamped to 1
    only by validation — the spans cannot exceed the base by
    construction (each group contributes at most ``duration``).
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if unavail_group_seconds < 0:
        raise ValueError("unavail_group_seconds must be >= 0")
    frac = unavail_group_seconds / (n_groups * duration)
    if frac > 1.0 + 1e-9:
        raise ValueError(
            f"unavailability {frac:.6g} exceeds the exposure base: "
            f"span accounting is broken")
    return min(frac, 1.0)


def availability_fraction(unavail_group_seconds: float, n_groups: int,
                          duration: float) -> float:
    """``1 - unavailability_fraction`` — the group-seconds available."""
    return 1.0 - unavailability_fraction(
        unavail_group_seconds, n_groups, duration)


def availability_nines(availability: float) -> float:
    """``-log10(1 - A)``; ``inf`` for a perfectly available run."""
    if not 0.0 <= availability <= 1.0:
        raise ValueError("availability must be in [0, 1]")
    if availability == 1.0:
        return math.inf
    return -math.log10(1.0 - availability)
