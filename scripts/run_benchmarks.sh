#!/usr/bin/env bash
# Run the full benchmark harness file by file, appending to bench_output.txt.
#
# Chunked so each invocation stays well under CI step timeouts on
# single-core runners; `pytest benchmarks/ --benchmark-only` in one shot is
# equivalent on bigger machines.
#
# Usage: REPRO_SCALE=small scripts/run_benchmarks.sh [output-file]
set -u -o pipefail
cd "$(dirname "$0")/.."
OUT="${1:-bench_output.txt}"

{
  echo "=== FARM reproduction benchmark harness ==="
  echo "REPRO_SCALE=${REPRO_SCALE:-small}  host=$(hostname)  $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo
} > "$OUT"

status=0
run() {
  echo ">>> pytest $* --benchmark-only" >> "$OUT"
  python -m pytest "$@" --benchmark-only 2>&1 | tee -a "$OUT" | tail -1
  rc=$?
  [ $rc -ne 0 ] && status=$rc
  echo >> "$OUT"
}

run benchmarks/bench_table1_failure_model.py
run benchmarks/bench_mttdl.py
run benchmarks/bench_perf_degraded.py
run benchmarks/bench_kernels.py
run benchmarks/bench_figure3_farm_vs_raid.py
run benchmarks/bench_figure4_detection_latency.py
run benchmarks/bench_figure5_recovery_bandwidth.py
run benchmarks/bench_table3_utilization.py
run benchmarks/bench_figure7_replacement.py
run benchmarks/bench_redirection.py
run benchmarks/bench_figure8_scale.py -k figure8a
run benchmarks/bench_figure8_scale.py -k figure8b
run benchmarks/bench_ablations.py
run benchmarks/bench_service.py

echo "harness exit status: $status" >> "$OUT"
exit $status
