#!/usr/bin/env bash
# Repository quality gate: invariant linter, style/type checkers, tier-1
# tests.  Exits non-zero if any enabled check fails.
#
# ruff and mypy are optional — the offline reproduction image may not ship
# them; when absent they are reported as skipped, not failed.  The
# invariant linter (repro.analysis) and pytest are stdlib/baked-in and
# always run.
#
# Usage: scripts/check.sh
set -u -o pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
status=0

step() {
  local name="$1"; shift
  echo ">>> $name: $*"
  if "$@"; then
    echo "    $name: ok"
  else
    status=1
    echo "    $name: FAILED"
  fi
  echo
}

optional_step() {
  local name="$1" tool="$2"
  if python -c "import importlib.util,sys;sys.exit(importlib.util.find_spec('$tool') is None)" 2>/dev/null; then
    shift 2
    step "$name" "$@"
  else
    echo ">>> $name: skipped ($tool not installed)"
    echo
  fi
}

step "invariant analyzer (per-file + whole-program, incremental)" \
  python -m repro.analysis --strict --timing src
step "sweep parity (serial == parallel, incl. telemetry snapshots)" \
  python -m repro sweep-check --jobs 2
step "forecast service smoke (tier routing, cache hit, /metrics)" \
  python -m repro serve --smoke --runs 16
step "topology experiment (smoke)" \
  env REPRO_SCALE=smoke python -m repro run topology
step "bulk engine benchmark (smoke, asserts >= 100x over DES baseline)" \
  env REPRO_SCALE=smoke python -m repro run bulk
step "availability experiment (smoke, asserts trade-off monotonicity)" \
  env REPRO_SCALE=smoke python -m repro run availability
step "bench-regression guard (bulk + availability runs/s vs history)" \
  python scripts/bench_guard.py
step "bulk conformance suite (incl. slow CI-overlap tests)" \
  python -m pytest tests/test_bulk.py -q -m "slow or not slow"
step "availability conformance suite (incl. slow lazy-policy brackets)" \
  python -m pytest tests/test_availability.py -q -m "slow or not slow"
optional_step "ruff" ruff python -m ruff check src tests examples benchmarks
optional_step "mypy" mypy python -m mypy
step "fault-injection tests" python -m pytest tests/test_faults.py tests/test_fault_scenarios.py -q
step "tier-1 tests" python -m pytest -x -q
step "statistical conformance (slow suites)" python -m pytest -q -m slow
optional_step "coverage (pytest-cov, line floor 70% for src/repro)" pytest_cov \
  python -m pytest -q --cov=src/repro --cov-report=term --cov-fail-under=70

if [ $status -ne 0 ]; then
  echo "check.sh: FAILED"
else
  echo "check.sh: all checks passed"
fi
exit $status
