#!/usr/bin/env python
"""Bench-regression guard: fail on recorded performance regressions.

Two guarded series, both read from the bounded perf history at
``results/BENCH_sweep.json``: bulk-engine Monte-Carlo throughput
(``bulk-sweep`` records, floor at :data:`TOLERANCE` of the best prior
run) and forecast-service p99 request latency (``service-bench``
records, ceiling at :data:`SERVICE_LATENCY_TOLERANCE` times the best
prior run).

The bulk-sweep benchmark (``python -m repro run bulk``) appends one
record per run to the bounded ``results/BENCH_sweep.json`` history, each
carrying the bulk engine's measured ``runs_per_s``.  This guard compares
the *latest* bulk-sweep record against the best previously recorded one
and fails when throughput drops below :data:`TOLERANCE` of that
baseline — catching the class of regression the >= 100x speedup assert
cannot: a slowdown that still clears the absolute bar.

Ratio-of-recorded-runs, not absolute numbers: the history lives in the
repository, so records may come from different machines.  A 30% drop
against the best-ever run on comparable hardware is a loud signal; the
threshold is deliberately loose so machine-to-machine variance does not
produce false alarms.

Stdlib only (the guard must run on the bare reproduction image).

Usage::

    python scripts/bench_guard.py [path/to/BENCH_sweep.json]

Exit status: 0 = no regression (or fewer than two bulk-sweep records to
compare); 1 = regression; 2 = unreadable history.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Latest bulk runs/s must be at least this fraction of the best
#: previously recorded bulk runs/s.
TOLERANCE = 0.7

#: The sweep name the bulk benchmark records under.
SWEEP_NAME = "bulk-sweep"

#: The sweep name the forecast-service benchmark records under
#: (benchmarks/bench_service.py: per-tier HTTP request latency).
SERVICE_SWEEP_NAME = "service-bench"

#: Latest service p99 request latency may be at most this multiple of
#: the best previously recorded p99.  Looser than the throughput bound:
#: sub-millisecond latencies are far noisier across machines than a
#: minute of aggregate Monte-Carlo throughput.
SERVICE_LATENCY_TOLERANCE = 3.0

#: The sweep name the availability experiment records under
#: (``python -m repro run availability``: the lazy-recovery /
#: repair-bandwidth trade-off grid on the fast DES engine).
AVAILABILITY_SWEEP_NAME = "availability"

DEFAULT_PATH = Path("results") / "BENCH_sweep.json"


def _named_records(path: Path, sweep: str, field: str) -> list[dict]:
    """Records of one sweep carrying a numeric ``field``, oldest first."""
    raw = json.loads(path.read_text(encoding="utf-8"))
    # v2 container {"records": [...]} or a legacy bare record.
    records = raw.get("records", [raw]) if isinstance(raw, dict) else raw
    return [r for r in records
            if isinstance(r, dict) and r.get("sweep") == sweep
            and isinstance(r.get(field), (int, float))]


def bulk_records(path: Path) -> list[dict]:
    """The bulk-sweep records of the bench history, oldest first."""
    return _named_records(path, SWEEP_NAME, "runs_per_s")


def service_guard(path: Path) -> int:
    """Guard the forecast service's p99 request latency (0 ok, 1 fail)."""
    records = _named_records(path, SERVICE_SWEEP_NAME, "p99_s")
    if len(records) < 2:
        print(f"bench_guard: {len(records)} service-bench record(s) in "
              f"{path}; need 2+ to compare — ok")
        return 0
    latest = records[-1]
    baseline = min(r["p99_s"] for r in records[:-1])
    current = latest["p99_s"]
    ceiling = SERVICE_LATENCY_TOLERANCE * baseline
    verdict = "ok" if current <= ceiling else "REGRESSION"
    print(f"bench_guard: service p99 {current * 1e3:,.2f} ms vs best "
          f"prior {baseline * 1e3:,.2f} (ceiling {ceiling * 1e3:,.2f} = "
          f"{SERVICE_LATENCY_TOLERANCE:g}x) over {len(records)} records "
          f"— {verdict}")
    if current > ceiling:
        print(f"bench_guard: latest service-bench record "
              f"(run_id={latest.get('run_id', '?')}) regressed; if the "
              f"hardware changed, re-record a baseline with "
              f"'pytest benchmarks/bench_service.py --benchmark-only'",
              file=sys.stderr)
        return 1
    return 0


def availability_guard(path: Path) -> int:
    """Guard the availability sweep's DES throughput (0 ok, 1 fail).

    Same shape as the bulk guard: latest ``runs_per_s`` of an
    ``availability`` record must clear :data:`TOLERANCE` of the best
    prior one.  This series tracks the lazy-recovery hot path (held
    queue, span accounting) that the bulk engine cannot cover.
    """
    records = _named_records(path, AVAILABILITY_SWEEP_NAME, "runs_per_s")
    if len(records) < 2:
        print(f"bench_guard: {len(records)} availability record(s) in "
              f"{path}; need 2+ to compare — ok")
        return 0
    latest = records[-1]
    baseline = max(r["runs_per_s"] for r in records[:-1])
    current = latest["runs_per_s"]
    floor = TOLERANCE * baseline
    verdict = "ok" if current >= floor else "REGRESSION"
    print(f"bench_guard: availability {current:,.1f} runs/s vs best "
          f"prior {baseline:,.1f} (floor {floor:,.1f} = {TOLERANCE:g}x) "
          f"over {len(records)} records — {verdict}")
    if current < floor:
        print(f"bench_guard: latest availability record "
              f"(run_id={latest.get('run_id', '?')}) regressed; if the "
              f"hardware changed, re-record a baseline with "
              f"'python -m repro run availability'", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(f"bench_guard: {path} does not exist; nothing to guard "
              f"(run 'python -m repro run bulk' to record a baseline)")
        return 0
    try:
        records = bulk_records(path)
    except (json.JSONDecodeError, OSError) as exc:
        print(f"bench_guard: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if len(records) < 2:
        print(f"bench_guard: {len(records)} bulk-sweep record(s) in "
              f"{path}; need 2+ to compare — ok")
        return max(service_guard(path), availability_guard(path))
    latest = records[-1]
    baseline = max(r["runs_per_s"] for r in records[:-1])
    current = latest["runs_per_s"]
    floor = TOLERANCE * baseline
    verdict = "ok" if current >= floor else "REGRESSION"
    print(f"bench_guard: bulk {current:,.0f} runs/s vs best prior "
          f"{baseline:,.0f} (floor {floor:,.0f} = {TOLERANCE:g}x) "
          f"over {len(records)} records — {verdict}")
    bulk_status = 0
    if current < floor:
        print(f"bench_guard: latest record "
              f"(run_id={latest.get('run_id', '?')}, "
              f"scale={latest.get('scale', '?')}) regressed; if the "
              f"hardware changed, re-record a baseline with "
              f"'python -m repro run bulk'", file=sys.stderr)
        bulk_status = 1
    return max(bulk_status, service_guard(path), availability_guard(path))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
