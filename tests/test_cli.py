"""Tests for the command-line interface (repro.__main__)."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "figure99", "--scale", "smoke"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestEstimate:
    def test_analytic_only(self, capsys):
        rc = main(["estimate", "--data-pb", "0.1", "--runs", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P(loss over 6 yr)" in out and "FARM" in out

    def test_no_farm_flag(self, capsys):
        main(["estimate", "--data-pb", "0.1", "--runs", "0", "--no-farm"])
        assert "traditional" in capsys.readouterr().out

    def test_monte_carlo_path(self, capsys):
        rc = main(["estimate", "--data-pb", "0.02", "--runs", "2"])
        assert rc == 0
        assert "monte carlo" in capsys.readouterr().out

    def test_scheme_parsing(self, capsys):
        main(["estimate", "--data-pb", "0.1", "--scheme", "8/10",
              "--runs", "0"])
        assert "8/10" in capsys.readouterr().out


class TestSensitivity:
    def test_tornado_output(self, capsys):
        rc = main(["sensitivity", "--data-pb", "0.5", "--no-farm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failure_rate" in out and "most influential" in out


class TestRun:
    def test_run_table1_and_save(self, tmp_path, capsys):
        rc = main(["run", "table1", "--scale", "smoke",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "table1.txt").exists()
        assert "table1" in capsys.readouterr().out

    def test_registry_covers_every_figure(self):
        assert {"table1", "figure3", "figure4", "figure5", "table3",
                "figure7", "figure8", "redirection",
                "ablations"} <= set(EXPERIMENTS)
