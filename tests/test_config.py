"""Tests for SystemConfig (repro.config) — Table 2 geometry."""

import json

import pytest

from repro.config import (CONFIG_SCHEMA, PAPER_BASE, SystemConfig,
                          canonical_config_json, config_digest,
                          config_from_dict, config_to_dict)
from repro.redundancy import ECC_8_10, MIRROR_2, MIRROR_3
from repro.units import GB, MB, PB, TB, YEAR


class TestPaperGeometry:
    def test_base_values_match_table2(self):
        cfg = PAPER_BASE
        assert cfg.total_user_bytes == 2 * PB
        assert cfg.group_user_bytes == 10 * GB
        assert cfg.scheme == MIRROR_2
        assert cfg.detection_latency == 30.0
        assert cfg.recovery_bandwidth == pytest.approx(16 * MB)
        assert cfg.duration == 6 * YEAR

    def test_two_way_mirroring_needs_10000_disks(self):
        """2 PB * 2 / (1 TB * 40%) = 10,000."""
        assert PAPER_BASE.n_disks == 10_000

    def test_three_way_mirroring_needs_15000_disks(self):
        """The paper's 'up to 15,000 disk drives'."""
        assert PAPER_BASE.with_(scheme=MIRROR_3).n_disks == 15_000

    def test_group_count(self):
        assert PAPER_BASE.n_groups == 200_000
        assert PAPER_BASE.with_(group_user_bytes=50 * GB).n_groups == 40_000

    def test_rebuild_time_matches_paper_section_3_3(self):
        """'64 seconds to reconstruct a 1 GB group ... at 16 MB/sec' and
        '6400 seconds for a 100 GB group' (62.5 s and 6250 s exactly)."""
        one_gb = PAPER_BASE.with_(group_user_bytes=1 * GB)
        hundred = PAPER_BASE.with_(group_user_bytes=100 * GB)
        assert one_gb.rebuild_seconds_per_block == pytest.approx(62.5)
        assert hundred.rebuild_seconds_per_block == pytest.approx(6250.0)

    def test_detection_ratio_example(self):
        """Paper: 10 min detection = 90.4% of the window for 1 GB groups,
        8.6% for 100 GB groups."""
        for gb, expected in ((1, 0.9056), (100, 0.0876)):
            cfg = PAPER_BASE.with_(group_user_bytes=gb * GB,
                                   detection_latency=600.0)
            ratio = 600.0 / (600.0 + cfg.rebuild_seconds_per_block)
            assert ratio == pytest.approx(expected, abs=0.01)

    def test_blocks_per_disk(self):
        """400 GB per disk / 10 GB blocks = 40 for two-way mirroring."""
        assert PAPER_BASE.blocks_per_disk == pytest.approx(40.0)

    def test_disk_rebuild_seconds(self):
        """400 GB at 16 MB/s = 25,000 s (~7 h): why RAID can't keep up."""
        assert PAPER_BASE.disk_rebuild_seconds == pytest.approx(25_000.0)

    def test_ecc_block_bytes(self):
        cfg = PAPER_BASE.with_(scheme=ECC_8_10)
        assert cfg.block_bytes == pytest.approx(1.25 * GB)
        assert cfg.raw_bytes == pytest.approx(2.5 * PB)


class TestOverrides:
    def test_recovery_bandwidth_override(self):
        cfg = PAPER_BASE.with_(recovery_bandwidth_bps=40 * MB)
        assert cfg.recovery_bandwidth == 40 * MB

    def test_with_returns_new_frozen_config(self):
        cfg = PAPER_BASE.with_(detection_latency=0.0)
        assert cfg is not PAPER_BASE
        assert PAPER_BASE.detection_latency == 30.0
        with pytest.raises(Exception):
            cfg.detection_latency = 1.0   # type: ignore[misc]

    def test_n_disks_at_least_scheme_n(self):
        tiny = SystemConfig(total_user_bytes=10 * GB,
                            group_user_bytes=10 * GB, scheme=ECC_8_10)
        assert tiny.n_disks >= 10

    def test_describe_mentions_mode(self):
        assert "FARM" in PAPER_BASE.describe()
        assert "traditional" in PAPER_BASE.with_(use_farm=False).describe()


class TestValidation:
    @pytest.mark.parametrize("kw", [
        {"total_user_bytes": 0},
        {"group_user_bytes": 0},
        {"group_user_bytes": 3 * PB},
        {"detection_latency": -1.0},
        {"target_utilization": 0.0},
        {"target_utilization": 1.0},
        {"spare_reserve_fraction": 1.0},
        {"replacement_threshold": 0.0},
        {"replacement_threshold": 1.5},
        {"duration": 0.0},
        {"workload_peak_load": 1.0},
        # a 2 TB mirror block cannot fit on a 1 TB disk
        {"group_user_bytes": 2 * TB},
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            SystemConfig(**kw)

    def test_large_group_ok_when_split_by_m(self):
        """A 2 TB group is fine under 8/10: blocks are 250 GB."""
        from repro.redundancy import ECC_8_10
        cfg = SystemConfig(group_user_bytes=2 * TB, scheme=ECC_8_10)
        assert cfg.block_bytes == pytest.approx(0.25 * TB)


class TestCanonicalSerialization:
    """config_to_dict / config_from_dict / config_digest stability."""

    def test_round_trip_identity(self):
        cfg = PAPER_BASE.with_(scheme=ECC_8_10, racks=4,
                               machines_per_rack=10,
                               replacement_threshold=0.5)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_digest_ignores_default_equality(self):
        """Explicitly passing a default value hashes like omitting it."""
        implicit = SystemConfig()
        explicit = SystemConfig(detection_latency=30.0, use_farm=True,
                                placement="random")
        assert config_digest(implicit) == config_digest(explicit)

    def test_digest_ignores_dict_field_order(self):
        d = config_to_dict(PAPER_BASE)
        shuffled = dict(reversed(list(d.items())))
        assert config_from_dict(shuffled) == PAPER_BASE
        assert config_digest(config_from_dict(shuffled)) == \
            config_digest(PAPER_BASE)

    def test_digest_sensitive_to_every_changed_field(self):
        base = config_digest(PAPER_BASE)
        for cfg in (PAPER_BASE.with_(detection_latency=31.0),
                    PAPER_BASE.with_(scheme=MIRROR_3),
                    PAPER_BASE.with_(racks=2),
                    PAPER_BASE.with_(
                        vintage=PAPER_BASE.vintage.with_rate_multiplier(2.0))):
            assert config_digest(cfg) != base

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_config_json(PAPER_BASE)
        data = json.loads(text)
        assert data["schema"] == CONFIG_SCHEMA
        assert ": " not in text and ", " not in text
        assert list(data) == sorted(data)

    def test_partial_dict_fills_defaults(self):
        cfg = config_from_dict({"detection_latency": 600.0})
        assert cfg == SystemConfig(detection_latency=600.0)

    def test_scheme_string_accepted(self):
        cfg = config_from_dict({"scheme": "8/10"})
        assert cfg.scheme == ECC_8_10

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            config_from_dict({"detection_latencyy": 1.0})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            config_from_dict({"schema": "repro.config.v999"})

    def test_infinite_period_round_trips(self):
        """The unbounded bathtub period survives JSON (no Infinity)."""
        d = json.loads(canonical_config_json(PAPER_BASE))
        assert d["vintage"]["failure_model"]["periods"][-1]["end_months"] \
            is None
        assert config_from_dict(d).vintage == PAPER_BASE.vintage
