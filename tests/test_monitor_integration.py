"""Integration: heartbeat detector driving FARM recovery.

The paper's evaluation treats detection as a fixed latency; this test
composes the *mechanistic* detector with the recovery engine instead —
the monitor's sweep discovers failures and triggers ``on_disk_failure``
itself — and checks the emergent behaviour matches the modelled one:
every failure detected within one sweep, every block re-protected.
"""

import pytest

from repro.cluster import HeartbeatMonitor, StorageSystem
from repro.config import SystemConfig
from repro.core import FarmRecovery
from repro.sim import RandomStreams, Simulator
from repro.units import GB, TB, YEAR


def build(period=300.0, seed=0):
    # detection latency 0: the monitor *is* the detection mechanism
    cfg = SystemConfig(total_user_bytes=20 * TB, group_user_bytes=10 * GB,
                       detection_latency=0.0)
    system = StorageSystem(cfg, RandomStreams(seed))
    sim = Simulator()
    farm = FarmRecovery(system, sim)

    def is_alive(disk_id):
        return sim.now < system.failure_times[disk_id]

    monitor = HeartbeatMonitor(
        sim, is_alive, disk_ids=list(range(system.n_disks)),
        period=period,
        on_detect=lambda d, t: farm.on_disk_failure(d))
    for d in range(system.n_disks):
        monitor.note_failure(d, system.failure_times[d])
    return cfg, system, sim, farm, monitor


class TestComposition:
    def test_all_failures_detected_and_recovered(self):
        cfg, system, sim, farm, monitor = build()
        sim.run(until=cfg.duration)
        ground_truth = sum(1 for t in system.failure_times[:cfg.n_disks]
                           if t <= cfg.duration)
        # every real failure was noticed (spares are not in the watch set,
        # and FARM provisions none)
        assert len(monitor.detections) >= ground_truth - 1
        assert farm.stats.disk_failures == len(monitor.detections)
        # and the system healed: no group left degraded
        for g in system.groups:
            assert g.lost or not g.failed

    def test_detection_latency_within_one_sweep(self):
        cfg, system, sim, farm, monitor = build(period=300.0)
        sim.run(until=cfg.duration)
        lats = monitor.latencies()
        assert lats, "expected failures in six simulated years"
        assert max(lats) <= 300.0 + 1e-6
        # mean of U(0, period) is period/2
        assert sum(lats) / len(lats) == pytest.approx(
            150.0, abs=90.0)

    def test_end_to_end_exposure_decomposes(self):
        """The manager's clock starts at detection (the monitor is the
        detection mechanism), so its windows are pure rebuild time; the
        *end-to-end* exposure per block is monitor latency + rebuild —
        exactly what the fixed-latency sweeps model as L + s/b."""
        cfg, system, sim, farm, monitor = build(period=600.0)
        sim.run(until=cfg.duration)
        if farm.stats.rebuilds_completed == 0:
            pytest.skip("no failures this seed")
        assert farm.stats.mean_window == pytest.approx(
            cfg.rebuild_seconds_per_block, rel=0.1)
        mean_lat = sum(monitor.latencies()) / len(monitor.latencies())
        end_to_end = mean_lat + farm.stats.mean_window
        modelled = 300.0 + cfg.rebuild_seconds_per_block  # E[U(0,600)]+s/b
        assert end_to_end == pytest.approx(modelled, rel=0.35)
