"""Scenario-level fault tests: graceful degradation under compound faults.

Covers the hardening acceptance cases: double failure during a rebuild,
the recovery target dying mid-rebuild (both engines), the deferred-rebuild
retry queue draining once the world improves, and the compound acceptance
scenario — a 12-disk shelf burst plus transient outages plus latent errors
— running to completion on both engines with every deferral accounted for.
"""

import pytest

from repro.cluster import StorageSystem
from repro.config import SystemConfig
from repro.core import FarmRecovery, TraditionalRecovery
from repro.faults import (CorrelatedFailures, LatentSectorErrors, Scrubber,
                          TransientOutages)
from repro.reliability.scenarios import Scenario
from repro.sim import RandomStreams, Simulator
from repro.units import DAY, GB, HOUR, TB

BOTH_ENGINES = pytest.mark.parametrize("use_farm", [True, False],
                                       ids=["farm", "traditional"])


def cfg(**kw):
    defaults = dict(total_user_bytes=40 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


def make_manager(config, seed=0):
    system = StorageSystem(config, RandomStreams(seed),
                           deterministic_failures=True)
    sim = Simulator()
    cls = FarmRecovery if config.use_farm else TraditionalRecovery
    return system, sim, cls(system, sim)


def assert_resolved(system, manager):
    """Every group ends rebuilt or lost — never silently stuck — and the
    deferred queue is empty with all deferrals retried and accounted."""
    for g in system.groups:
        assert g.lost or not g.failed, g.grp_id
    assert manager.deferred_outstanding == 0
    assert manager.stats.retries >= manager.stats.rebuilds_deferred


class TestDoubleFailureDuringRebuild:
    @BOTH_ENGINES
    def test_partner_dies_inside_window(self, use_farm):
        out = (Scenario(cfg(use_farm=use_farm))
               .fail(disk=0, at=100.0)
               .fail_partners_of(0, at=130.0, count=1)
               .run(horizon=7 * DAY))
        assert not out.data_survived
        assert out.stats.first_loss_time == 130.0
        assert out.deferred_outstanding == 0
        # The loss is recorded, not silently stuck degraded.
        for g in out.system.groups:
            assert g.lost or not g.failed

    @BOTH_ENGINES
    def test_unrelated_double_failure_recovers(self, use_farm):
        out = (Scenario(cfg(use_farm=use_farm))
               .fail(disk=0, at=100.0)
               .fail(disk=100, at=130.0)
               .run(horizon=7 * DAY))
        assert out.stats.disk_failures == 2
        assert out.stats.rebuilds_completed >= out.stats.rebuilds_started \
            - out.stats.rebuilds_deferred
        for g in out.system.groups:
            assert g.lost or not g.failed


class TestTargetDiesMidRebuild:
    def test_farm_redirects(self):
        config = cfg()
        system, sim, farm = make_manager(config)
        sim.schedule_at(100.0, farm.on_disk_failure, 0)

        def kill_a_target():
            jobs = [j for jobs in farm._jobs_by_target.values()
                    for j in jobs]
            if jobs:
                farm.on_disk_failure(jobs[0].target)

        sim.schedule_at(100.0 + config.detection_latency + 1.0,
                        kill_a_target)
        sim.run(until=30 * DAY)
        assert farm.stats.target_redirections >= 1
        assert_resolved(system, farm)

    def test_traditional_spare_dies_mid_rebuild(self):
        config = cfg(use_farm=False)
        system, sim, raid = make_manager(config)
        sim.schedule_at(100.0, raid.on_disk_failure, 0)

        def kill_the_spare():
            spares = list(raid._spare_for.values())
            if spares:
                raid.on_disk_failure(spares[0])

        sim.schedule_at(2 * HOUR, kill_the_spare)
        sim.run(until=60 * DAY)
        assert raid.spares_provisioned >= 2
        assert raid.stats.target_redirections >= 1
        assert_resolved(system, raid)


class TestDeferredRetryQueue:
    def test_no_target_defers_and_drains_after_batch(self):
        """A 2-disk mirror system has no admissible FARM target once one
        disk dies (the survivor holds every buddy).  The rebuilds park in
        the deferred queue; adding a replacement batch drains it."""
        config = SystemConfig(total_user_bytes=100 * GB,
                              group_user_bytes=10 * GB)
        system, sim, farm = make_manager(config)
        assert system.n_disks == 2
        sim.schedule_at(100.0, farm.on_disk_failure, 1)
        sim.run(until=2 * HOUR)
        n_blocks = config.n_groups
        assert farm.stats.rebuilds_deferred == n_blocks
        assert farm.deferred_outstanding == n_blocks
        assert farm.stats.rebuilds_completed == 0

        # Fresh capacity arrives: the parked rebuilds all run.
        system.add_batch(2, now=sim.now)
        assert farm.rearm_deferred() == n_blocks
        sim.run(until=sim.now + 2 * DAY)
        assert farm.deferred_outstanding == 0
        assert farm.stats.rebuilds_completed == n_blocks
        assert_resolved(system, farm)

    def test_backoff_grows_while_stuck(self):
        config = SystemConfig(total_user_bytes=100 * GB,
                              group_user_bytes=10 * GB)
        system, sim, farm = make_manager(config)
        sim.schedule_at(0.0, farm.on_disk_failure, 1)
        sim.run(until=12 * HOUR)
        # Retries kept firing (with capped backoff), none succeeded.
        assert farm.stats.retries > farm.stats.rebuilds_deferred
        assert farm.deferred_outstanding == config.n_groups

    @BOTH_ENGINES
    def test_offline_sources_defer_then_drain_on_restore(self, use_farm):
        """Fail one half of a mirror while the other half is offline: no
        readable source exists, so the rebuild parks; the restore event
        re-arms it and it completes."""
        config = cfg(use_farm=use_farm)
        system, sim, manager = make_manager(config)
        group = system.groups[0]
        alive, victim = group.disks[0], group.disks[1]
        sim.schedule_at(50.0, manager.on_disk_offline, alive)
        sim.schedule_at(100.0, manager.on_disk_failure, victim)
        sim.schedule_at(4 * HOUR, manager.on_disk_online, alive)
        sim.run(until=30 * DAY)
        assert manager.stats.transient_outages == 1
        assert manager.stats.rebuilds_deferred >= 1
        assert_resolved(system, manager)
        assert not group.failed and not group.lost


class TestCompoundAcceptance:
    """The issue's acceptance scenario: a correlated 12-disk shelf burst
    plus transient outages plus latent errors, on both engines, running to
    completion with zero unhandled exceptions and every deferred rebuild
    retried and accounted in RecoveryStats."""

    @BOTH_ENGINES
    def test_shelf_burst_with_outages_and_latents(self, use_farm):
        out = (Scenario(cfg(use_farm=use_farm), seed=42)
               .fail_batch(list(range(12)), at=1 * DAY)
               .inject_faults(
                   LatentSectorErrors(1.0 / (4 * DAY)),
                   TransientOutages(1.0 / (10 * DAY), 2 * HOUR),
                   Scrubber(2 * DAY))
               .run(horizon=30 * DAY))
        s = out.stats
        assert s.disk_failures == 12
        assert s.transient_outages > 0
        assert s.latent_errors_discovered > 0
        assert s.rebuilds_completed > 0
        # All deferrals retried and drained by the horizon.
        assert out.deferred_outstanding == 0
        assert s.retries >= s.rebuilds_deferred
        for g in out.system.groups:
            assert g.lost or not g.failed

    @BOTH_ENGINES
    def test_stochastic_burst_runs_to_completion(self, use_farm):
        out = (Scenario(cfg(use_farm=use_farm), seed=7)
               .inject_faults(
                   CorrelatedFailures(1.0 / (15 * DAY), shelf_size=12,
                                      spread_s=60.0),
                   TransientOutages(1.0 / (10 * DAY), HOUR),
                   LatentSectorErrors(1.0 / (4 * DAY)),
                   Scrubber(2 * DAY))
               .run(horizon=45 * DAY))
        assert out.fault_stats.bursts >= 1
        assert out.deferred_outstanding == 0
        assert out.stats.retries >= out.stats.rebuilds_deferred
        for g in out.system.groups:
            assert g.lost or not g.failed

    def test_compound_scenario_deterministic(self):
        def run():
            return (Scenario(cfg(), seed=9)
                    .fail_batch(list(range(12)), at=1 * DAY)
                    .inject_faults(LatentSectorErrors(1.0 / (4 * DAY)),
                                   TransientOutages(1.0 / (10 * DAY),
                                                    2 * HOUR),
                                   Scrubber(2 * DAY))
                    .run(horizon=30 * DAY))

        a, b = run(), run()
        assert a.stats == b.stats
        assert a.fault_stats == b.fault_stats
        assert a.lost_groups == b.lost_groups


class TestScriptedFaultBuilders:
    def test_scripted_outage_round_trip(self):
        out = (Scenario(cfg())
               .outage(disk=5, at=100.0, duration=HOUR)
               .run(horizon=1 * DAY))
        assert out.stats.transient_outages == 1
        assert out.system.disks[5].online
        assert out.system.disks[5].offline_seconds == pytest.approx(
            HOUR)

    def test_scripted_latent_discovered_by_scrub(self):
        out = (Scenario(cfg())
               .latent(disk=3, at=100.0)
               .inject_faults(Scrubber(12 * HOUR))
               .run(horizon=2 * DAY))
        assert out.fault_stats.latent_injected == 1
        assert out.stats.latent_errors_discovered == 1
        assert out.stats.rebuilds_completed == 1
        assert out.data_survived

    def test_invalid_scripts_rejected(self):
        with pytest.raises(ValueError):
            Scenario(cfg()).outage(disk=0, at=-1.0, duration=HOUR)
        with pytest.raises(ValueError):
            Scenario(cfg()).outage(disk=0, at=0.0, duration=0.0)
        with pytest.raises(ValueError):
            Scenario(cfg()).latent(disk=0, at=-5.0)
        with pytest.raises(ValueError, match="no such disk"):
            Scenario(cfg()).outage(disk=10_000, at=1.0,
                                   duration=HOUR).run(horizon=10.0)
        with pytest.raises(ValueError, match="no such disk"):
            Scenario(cfg()).latent(disk=10_000, at=1.0).run(horizon=10.0)

    def test_rebuild_read_discovers_latent_partner(self):
        """Failing a disk forces reads of its groups' other blocks, which
        surfaces a latent error planted there — no scrubber needed."""
        out = (Scenario(cfg())
               .latent(disk=3, at=50.0)
               .fail_partners_of(3, at=200.0, count=1)
               .run(horizon=7 * DAY))
        assert out.stats.latent_errors_discovered >= 0
        # Regardless of which block was corrupted, nothing stays stuck.
        assert out.deferred_outstanding == 0
        for g in out.system.groups:
            assert g.lost or not g.failed
