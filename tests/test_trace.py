"""Tests for structured event tracing (repro.sim.trace)."""

import io
import json

from repro.sim import Simulator
from repro.sim.trace import TraceRecorder, filtered


class TestRecorder:
    def test_records_fired_events_in_order(self):
        rec = TraceRecorder()
        sim = Simulator(trace=rec)
        sim.schedule(2.0, lambda: None, name="b")
        sim.schedule(1.0, lambda: None, name="a")
        sim.run()
        assert [(r.time, r.name) for r in rec] == [(1.0, "a"), (2.0, "b")]

    def test_cancelled_events_not_recorded(self):
        rec = TraceRecorder()
        sim = Simulator(trace=rec)
        ev = sim.schedule(1.0, lambda: None, name="x")
        ev.cancel()
        sim.run()
        assert len(rec) == 0

    def test_prefix_filter(self):
        rec = TraceRecorder(prefixes=("disk-",))
        sim = Simulator(trace=rec)
        sim.schedule(1.0, lambda: None, name="disk-failure")
        sim.schedule(2.0, lambda: None, name="rebuild")
        sim.run()
        assert [r.name for r in rec] == ["disk-failure"]

    def test_unnamed_events_use_callback_name(self):
        rec = TraceRecorder()
        sim = Simulator(trace=rec)

        def my_callback():
            pass

        sim.schedule(1.0, my_callback)
        sim.run()
        assert rec.records[0].name == "my_callback"

    def test_ring_buffer_cap(self):
        rec = TraceRecorder(max_records=3)
        sim = Simulator(trace=rec)
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None, name=f"e{i}")
        sim.run()
        assert len(rec) == 3 and rec.dropped == 7
        assert [r.name for r in rec] == ["e7", "e8", "e9"]


class TestQueries:
    def _make(self):
        rec = TraceRecorder()
        sim = Simulator(trace=rec)
        for i, name in enumerate(["a", "b", "a", "c"]):
            sim.schedule(float(i + 1), lambda: None, name=name)
        sim.run()
        return rec

    def test_named(self):
        rec = self._make()
        assert len(rec.named("a")) == 2
        assert rec.named("zzz") == []

    def test_between_half_open(self):
        rec = self._make()
        assert [r.name for r in rec.between(2.0, 4.0)] == ["b", "a"]

    def test_counts(self):
        assert self._make().counts() == {"a": 2, "b": 1, "c": 1}

    def test_jsonl_roundtrip(self):
        rec = self._make()
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first == {"t": 1.0, "name": "a", "seq": first["seq"]}

    def test_write_jsonl_matches_to_jsonl(self):
        rec = self._make()
        out = io.StringIO()
        assert rec.write_jsonl(out) == 4
        assert out.getvalue() == rec.to_jsonl() + "\n"

    def test_sink_streams_records(self):
        seen = []
        rec = TraceRecorder(sink=lambda r: seen.append((r.time, r.name)))
        sim = Simulator(trace=rec)
        sim.schedule(1.0, lambda: None, name="a")
        sim.schedule(2.0, lambda: None, name="b")
        sim.run()
        assert seen == [(1.0, "a"), (2.0, "b")]


class TestFilteredHook:
    def test_predicate_composition(self):
        seen = []
        hook = filtered(lambda ev: seen.append(ev.name),
                        lambda ev: ev.time > 1.5)
        sim = Simulator(trace=hook)
        sim.schedule(1.0, lambda: None, name="early")
        sim.schedule(2.0, lambda: None, name="late")
        sim.run()
        assert seen == ["late"]


class TestFilteredCounter:
    def test_prefix_misses_counted_not_recorded(self):
        rec = TraceRecorder(prefixes=("keep",))
        sim = Simulator(trace=rec)
        sim.schedule(1.0, lambda: None, name="keep-a")
        sim.schedule(2.0, lambda: None, name="toss-b")
        sim.schedule(3.0, lambda: None, name="keep-c")
        sim.run()
        assert [r.name for r in rec.records] == ["keep-a", "keep-c"]
        assert rec.filtered == 1
        assert rec.dropped == 0

    def test_no_prefixes_means_nothing_filtered(self):
        rec = TraceRecorder()
        sim = Simulator(trace=rec)
        sim.schedule(1.0, lambda: None, name="anything")
        sim.run()
        assert rec.filtered == 0 and len(rec.records) == 1

    def test_filtered_and_dropped_stay_disjoint_with_ring_buffer(self):
        rec = TraceRecorder(prefixes=("keep",), max_records=2)
        sim = Simulator(trace=rec)
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None, name=f"keep-{i}")
            sim.schedule(float(i + 1) + 0.5, lambda: None, name=f"toss-{i}")
        sim.run()
        # 5 kept (3 then evicted by the cap), 5 rejected by the prefix
        # filter; a rejected event never entered the ring buffer, so it
        # must not also count as dropped.
        assert [r.name for r in rec.records] == ["keep-3", "keep-4"]
        assert rec.dropped == 3
        assert rec.filtered == 5
