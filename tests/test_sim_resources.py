"""Tests for queueing resources (repro.sim.resources)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Process, Resource, SerialServer, Simulator, Timeout


class TestSerialServer:
    def test_idle_server_starts_immediately(self):
        q = SerialServer()
        assert q.submit(10.0, 5.0) == 15.0

    def test_jobs_queue_back_to_back(self):
        q = SerialServer()
        assert q.submit(0.0, 10.0) == 10.0
        assert q.submit(2.0, 5.0) == 15.0
        assert q.submit(3.0, 1.0) == 16.0

    def test_idle_gap_resets_start(self):
        q = SerialServer()
        q.submit(0.0, 1.0)
        assert q.submit(100.0, 2.0) == 102.0

    def test_backlog(self):
        q = SerialServer()
        q.submit(0.0, 10.0)
        assert q.backlog(4.0) == 6.0
        assert q.backlog(50.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SerialServer().submit(0.0, -1.0)

    def test_counters(self):
        q = SerialServer()
        q.submit(0.0, 3.0)
        q.submit(0.0, 4.0)
        assert q.jobs_served == 2 and q.busy_time == 7.0

    def test_reset(self):
        q = SerialServer()
        q.submit(0.0, 3.0)
        q.reset()
        assert q.free_at == 0.0 and q.jobs_served == 0

    @given(st.lists(st.tuples(st.floats(0, 1e6), st.floats(0, 1e5)),
                    min_size=1, max_size=30))
    def test_completion_times_monotone_under_sorted_arrivals(self, jobs):
        """FCFS invariant: with arrivals sorted, completions never decrease
        and every completion is at least arrival + duration."""
        q = SerialServer()
        prev_done = 0.0
        for arrive, dur in sorted(jobs):
            done = q.submit(arrive, dur)
            assert done >= arrive + dur
            assert done >= prev_done
            prev_done = done

    @given(st.lists(st.floats(0.001, 100), min_size=1, max_size=20))
    def test_total_busy_time_conserved(self, durations):
        q = SerialServer()
        for d in durations:
            q.submit(0.0, d)
        assert q.free_at == pytest.approx(sum(durations))


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, hold):
            req = res.request()
            yield req
            order.append((tag, sim.now))
            yield Timeout(hold)
            req.release()

        Process(sim, user("a", 5.0))
        Process(sim, user("b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 5.0)]

    def test_capacity_two_admits_pair(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        order = []

        def user(tag):
            req = res.request()
            yield req
            order.append((tag, sim.now))
            yield Timeout(2.0)
            req.release()

        for tag in "abc":
            Process(sim, user(tag))
        sim.run()
        assert order == [("a", 0.0), ("b", 0.0), ("c", 2.0)]

    def test_fifo_granting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(tag):
            req = res.request()
            yield req
            order.append(tag)
            yield Timeout(1.0)
            req.release()

        for tag in "abcd":
            Process(sim, user(tag))
        sim.run()
        assert order == list("abcd")

    def test_queued_counter(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.in_use == 1 and res.queued == 2

    def test_release_ungranted_request_dequeues(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        waiting = res.request()
        res.release(waiting)          # give up before granted
        assert res.queued == 0
        res.release(first)
        assert res.in_use == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)
