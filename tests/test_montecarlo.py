"""Tests for the Monte-Carlo harness (repro.reliability.montecarlo)."""

import pytest

from repro.config import SystemConfig
from repro.redundancy.composite import MirroredParity
from repro.reliability import estimate_p_loss, loss_probability_series, sweep
from repro.reliability.runner import shutdown_pool
from repro.units import GB, TB


def tiny():
    return SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB)


def unrunnable():
    """A config the fast engine rejects (composite scheme) — every
    lifetime raises ``NotImplementedError``, so ``on_error="skip"``
    completes zero runs."""
    return SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB,
                        scheme=MirroredParity(4))


class TestEstimate:
    def test_reproducible_across_calls(self):
        a = estimate_p_loss(tiny(), n_runs=5, base_seed=1)
        b = estimate_p_loss(tiny(), n_runs=5, base_seed=1)
        assert a.losses == b.losses
        assert a.disk_failures_total == b.disk_failures_total

    def test_seed_changes_results(self):
        a = estimate_p_loss(tiny(), n_runs=5, base_seed=1)
        b = estimate_p_loss(tiny(), n_runs=5, base_seed=2)
        assert a.disk_failures_total != b.disk_failures_total

    def test_runs_are_independent(self):
        """Each run has its own seed: per-run failure counts vary."""
        r = estimate_p_loss(tiny(), n_runs=6, base_seed=0,
                            keep_run_stats=True)
        counts = {s.disk_failures for s in r.run_stats}
        assert len(counts) > 1

    def test_run_stats_dropped_by_default(self):
        r = estimate_p_loss(tiny(), n_runs=3, base_seed=0)
        assert r.run_stats == []
        assert r.aggregate is not None and r.aggregate.n_runs == 3

    def test_aggregates_consistent(self):
        r = estimate_p_loss(tiny(), n_runs=5, base_seed=0,
                            keep_run_stats=True)
        assert r.n_runs == 5 and len(r.run_stats) == 5
        assert r.losses == sum(1 for s in r.run_stats if s.any_loss)
        assert r.p_loss.trials == 5
        assert r.groups_lost_total == sum(s.groups_lost
                                          for s in r.run_stats)
        assert r.events_fired_total > 0

    def test_parallel_matches_serial(self):
        serial = estimate_p_loss(tiny(), n_runs=4, base_seed=3, n_jobs=1)
        parallel = estimate_p_loss(tiny(), n_runs=4, base_seed=3, n_jobs=2)
        assert serial.losses == parallel.losses
        assert serial.disk_failures_total == parallel.disk_failures_total

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            estimate_p_loss(tiny(), n_runs=0)


class TestZeroCompletedRuns:
    """Regression: a point whose runs all failed used to crash in
    ``wilson_interval(0, 0)``; it now reports the uninformative [0, 1]
    interval with ``trials == 0`` and counts the drops."""

    def test_raise_is_the_default(self):
        with pytest.raises(NotImplementedError, match="threshold-only"):
            estimate_p_loss(unrunnable(), n_runs=2)

    def test_skip_yields_empty_proportion_serial(self):
        r = estimate_p_loss(unrunnable(), n_runs=4, on_error="skip")
        assert r.runs_failed == 4
        assert r.n_runs == 4
        assert r.aggregate.n_runs == 0
        assert r.p_loss.trials == 0 and r.p_loss.successes == 0
        assert (r.p_loss.lo, r.p_loss.hi) == (0.0, 1.0)

    def test_skip_yields_empty_proportion_parallel(self):
        try:
            r = estimate_p_loss(unrunnable(), n_runs=4, n_jobs=2,
                                on_error="skip")
        finally:
            shutdown_pool()
        assert r.runs_failed == 4
        assert r.p_loss.trials == 0
        assert (r.p_loss.lo, r.p_loss.hi) == (0.0, 1.0)

    def test_mixed_sweep_only_bad_point_degrades(self):
        res = sweep({"ok": tiny(), "bad": unrunnable()}, n_runs=3,
                    on_error="skip", bench_path=None)
        assert res["ok"].runs_failed == 0
        assert res["ok"].p_loss.trials == 3
        assert res["bad"].runs_failed == 3
        assert res["bad"].p_loss.trials == 0


class TestSweeps:
    def test_sweep_labels_preserved(self):
        res = sweep({"farm": tiny(), "raid": tiny().with_(use_farm=False)},
                    n_runs=3)
        assert set(res) == {"farm", "raid"}

    def test_series_in_order(self):
        out = loss_probability_series(
            tiny(), "detection_latency", [0.0, 600.0], n_runs=3)
        assert [v for v, _ in out] == [0.0, 600.0]
        assert all(r.n_runs == 3 for _, r in out)
