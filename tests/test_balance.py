"""Tests for balance metrics (repro.placement.balance)."""

import numpy as np
import pytest

from repro.placement import analyze, disk_loads


class TestDiskLoads:
    def test_counts_blocks_per_disk(self):
        placements = np.array([[0, 1], [1, 2], [2, 0]])
        loads = disk_loads(placements, n_disks=4)
        assert loads.tolist() == [2, 2, 2, 0]

    def test_scalar_weight(self):
        placements = np.array([[0, 1]])
        loads = disk_loads(placements, n_disks=2, weights=5.0)
        assert loads.tolist() == [5.0, 5.0]

    def test_per_group_weights_broadcast(self):
        placements = np.array([[0, 1], [0, 1]])
        loads = disk_loads(placements, n_disks=2,
                           weights=np.array([1.0, 3.0]))
        assert loads.tolist() == [4.0, 4.0]

    def test_minlength_pads_unused_disks(self):
        loads = disk_loads(np.array([[0]]), n_disks=5)
        assert loads.shape == (5,)


class TestAnalyze:
    def test_uniform_vector(self):
        r = analyze(np.full(10, 7.0))
        assert r.std == 0 and r.cv == 0 and r.max_over_mean == 1.0
        assert r.chi2 == 0

    def test_known_statistics(self):
        r = analyze(np.array([0.0, 10.0]))
        assert r.mean == 5.0
        assert r.std == pytest.approx(5.0)
        assert r.cv == pytest.approx(1.0)
        assert r.max_over_mean == pytest.approx(2.0)
        assert r.chi2 == pytest.approx(10.0)

    def test_zero_loads(self):
        r = analyze(np.zeros(4))
        assert r.cv == 0 and r.chi2 == 0
