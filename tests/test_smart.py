"""Tests for the SMART health monitor (repro.disks.smart)."""

import numpy as np
import pytest

from repro.disks import SmartMonitor
from repro.units import DAY


def monitor(**kw):
    return SmartMonitor(np.random.default_rng(0), **kw)


class TestWarnings:
    def test_flags_failing_drive_inside_horizon(self):
        m = monitor(detection_probability=1.0, false_positive_rate=0.0)
        m.register(1)
        fail_at = 100 * DAY
        assert not m.is_suspect(1, now=fail_at - 30 * DAY,
                                failure_time=fail_at)
        assert m.is_suspect(1, now=fail_at - 1 * DAY, failure_time=fail_at)

    def test_missed_detection_never_flags(self):
        m = monitor(detection_probability=0.0, false_positive_rate=0.0)
        m.register(1)
        assert not m.is_suspect(1, now=1.0, failure_time=2.0)

    def test_detection_decision_is_sticky(self):
        m = monitor(detection_probability=0.5, false_positive_rate=0.0)
        m.register(1)
        first = m.is_suspect(1, now=1.0, failure_time=DAY)
        for _ in range(10):
            assert m.is_suspect(1, now=1.0, failure_time=DAY) == first

    def test_false_positive_rate(self):
        m = monitor(detection_probability=0.0, false_positive_rate=1.0)
        m.register(2)
        assert m.is_suspect(2, now=0.0, failure_time=None)

    def test_false_positive_frequency_statistical(self):
        m = SmartMonitor(np.random.default_rng(5),
                         detection_probability=0.0, false_positive_rate=0.1)
        for d in range(2000):
            m.register(d)
        flagged = sum(m.is_suspect(d, 0.0, None) for d in range(2000))
        assert 130 < flagged < 270

    def test_forget_clears_state(self):
        m = monitor(false_positive_rate=1.0)
        m.register(3)
        m.forget(3)
        assert not m.is_suspect(3, now=0.0, failure_time=None)

    def test_unregistered_disk_not_suspect(self):
        m = monitor()
        assert not m.is_suspect(99, now=0.0, failure_time=None)

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SmartMonitor(rng, detection_probability=1.5)
        with pytest.raises(ValueError):
            SmartMonitor(rng, false_positive_rate=-0.1)
        with pytest.raises(ValueError):
            SmartMonitor(rng, warning_horizon=-1.0)
