"""Tests for text rendering (repro.experiments.report / base)."""

from repro.experiments import SCALES, ExperimentResult
from repro.experiments.report import _fmt, pct, render_table


class TestFormat:
    def test_none_is_dash(self):
        assert _fmt(None) == "-"

    def test_zero(self):
        assert _fmt(0.0) == "0"

    def test_small_and_large_floats_compact(self):
        assert _fmt(0.000123) == "0.000123"
        assert _fmt(1234567.0) == "1.23e+06"

    def test_mid_range_four_sig_figs(self):
        assert _fmt(3.14159) == "3.142"

    def test_strings_passthrough(self):
        assert _fmt("abc") == "abc"

    def test_pct(self):
        assert pct(0.123) == "12.30%"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["a", "bee"], [{"a": 1, "bee": 22},
                                           {"a": 333, "bee": 4}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_missing_cells_dash(self):
        text = render_table(["x", "y"], [{"x": 1}])
        assert "-" in text.splitlines()[2]

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult(experiment="demo", description="d",
                             scale=SCALES["smoke"], columns=["k", "v"])
        r.add(k="a", v=1)
        r.add(k="b", v=2)
        return r

    def test_column_accessor(self):
        assert self._result().column("v") == [1, 2]

    def test_render_includes_scale_and_notes(self):
        r = self._result()
        r.notes.append("a note")
        text = r.render()
        assert "scale=smoke" in text and "note: a note" in text
