"""Failure-domain topology: tree model, placement constraint, copysets.

Covers the hierarchy invariants (round-robin tiling, slot inheritance,
stability across compaction), the ``max_chunks_per_domain`` feasibility
validation and placement repair pass, rack-aware copyset placement, and
the acceptance property: across random placements, migrations, and
rebuilds on both engines, the per-rack cap is never violated and
constraint-blocked rebuilds surface in ``RecoveryStats``.
"""

import numpy as np
import pytest

from repro.cluster import StorageSystem, Topology, enforce_domain_constraint
from repro.config import SystemConfig
from repro.core import FarmRecovery, TraditionalRecovery, simulate_run
from repro.placement import CopysetPlacement, RandomPlacement
from repro.reliability import ReliabilitySimulation
from repro.sim import RandomStreams, Simulator
from repro.units import DAY, GB, HOUR, TB

BOTH_ENGINES = pytest.mark.parametrize("use_farm", [True, False],
                                       ids=["farm", "traditional"])


def rack_ok(topology, disk_ids, limit):
    """True when no rack holds more than ``limit`` of ``disk_ids``."""
    return all(c <= limit
               for c in topology.rack_counts(disk_ids).values())


class TestTopologyTree:
    def test_round_robin_tiling(self):
        topo = Topology(racks=2, machines_per_rack=3, n_disks=12)
        assert topo.n_machines == 6
        assert [topo.machine_of(d) for d in range(12)] == \
            [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]
        assert [topo.rack_of(d) for d in range(6)] == [0, 0, 0, 1, 1, 1]

    def test_flat_default_is_single_domain(self):
        topo = Topology(1, 1, n_disks=50)
        assert topo.is_flat
        assert topo.disks_in_rack(0) == list(range(50))
        assert topo.n_domains("rack") == 1
        assert topo.n_domains("machine") == 1

    def test_slot_inheritance(self):
        topo = Topology(racks=4, machines_per_rack=1, n_disks=8)
        # A replacement for disk 5 (machine 1) joins machine 1; a batch
        # disk without a slot tiles round-robin from the population size.
        assert topo.add_disk(slot_of=5) == topo.machine_of(5)
        assert topo.machine_of(8) == 1
        assert topo.add_disk() == 9 % 4
        assert topo.n_disks == 10

    def test_domain_queries(self):
        topo = Topology(racks=2, machines_per_rack=2, n_disks=8)
        assert topo.disks_in_machine(1) == [1, 5]
        assert topo.disks_in_rack(1) == [2, 3, 6, 7]
        assert topo.domain_disks("machine", 1) == [1, 5]
        assert topo.domain_disks("rack", 1) == [2, 3, 6, 7]
        assert topo.rack_counts([0, 1, 2, 3]) == {0: 2, 1: 2}
        assert list(topo.rack_array()) == [0, 0, 1, 1, 0, 0, 1, 1]
        with pytest.raises(ValueError):
            topo.domain_disks("shelf", 0)
        with pytest.raises(ValueError):
            topo.disks_in_rack(2)

    def test_from_assignments_round_trip(self):
        topo = Topology(3, 2, n_disks=10)
        topo.add_disk(slot_of=0)
        clone = Topology.from_assignments(3, 2, topo.assignments())
        assert clone.assignments() == topo.assignments()
        with pytest.raises(ValueError):
            Topology.from_assignments(1, 1, [0, 1])

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, 1)
        with pytest.raises(ValueError):
            Topology(1, 0)
        with pytest.raises(ValueError):
            Topology(1, 1, n_disks=-1)


class TestConfigValidation:
    def test_flat_defaults(self):
        cfg = SystemConfig(total_user_bytes=1 * TB, group_user_bytes=10 * GB)
        assert cfg.racks == 1 and cfg.machines_per_rack == 1
        assert cfg.max_chunks_per_domain is None

    def test_infeasible_cap_rejected(self):
        # 2-way mirroring with 1 rack and cap 1: no legal placement.
        with pytest.raises(ValueError, match="infeasible"):
            SystemConfig(total_user_bytes=1 * TB, group_user_bytes=10 * GB,
                         max_chunks_per_domain=1)

    def test_more_machines_than_disks_rejected(self):
        # Underpopulated machines only matter once the cap constrains
        # placement; without a cap the shape is allowed (machines idle).
        with pytest.raises(ValueError, match="every machine populated"):
            SystemConfig(total_user_bytes=40 * GB, group_user_bytes=10 * GB,
                         racks=8, machines_per_rack=4,
                         max_chunks_per_domain=1)
        SystemConfig(total_user_bytes=40 * GB, group_user_bytes=10 * GB,
                     racks=8, machines_per_rack=4)

    def test_degenerate_shape_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(total_user_bytes=1 * TB, group_user_bytes=10 * GB,
                         racks=0)


class TestEnforceDomainConstraint:
    def test_repairs_colocated_rows(self):
        topo = Topology(racks=4, machines_per_rack=1, n_disks=16)
        placement = RandomPlacement(16, seed=3)
        matrix = placement.place_many(np.arange(200), 2)
        fixed = enforce_domain_constraint(matrix, topo, 1, placement)
        rack = topo.rack_array()
        assert (rack[fixed[:, 0]] != rack[fixed[:, 1]]).all()
        assert (fixed[:, 0] != fixed[:, 1]).all()

    def test_none_limit_is_identity(self):
        topo = Topology(4, 1, n_disks=16)
        placement = RandomPlacement(16, seed=3)
        matrix = placement.place_many(np.arange(50), 2)
        before = matrix.copy()
        assert (enforce_domain_constraint(matrix, topo, None, placement)
                == before).all()

    def test_compliant_rows_untouched(self):
        """Only violating rows are re-placed: the repair pass must not
        shuffle groups that already satisfy the cap."""
        topo = Topology(racks=4, machines_per_rack=1, n_disks=16)
        placement = RandomPlacement(16, seed=3)
        matrix = placement.place_many(np.arange(200), 2)
        before = matrix.copy()
        rack = topo.rack_array()
        ok = rack[before[:, 0]] != rack[before[:, 1]]
        fixed = enforce_domain_constraint(matrix, topo, 1, placement)
        assert (fixed[ok] == before[ok]).all()
        assert not ok.all()          # the seed does produce violations


class TestCopysetPlacement:
    def _topo(self):
        return Topology(racks=4, machines_per_rack=1, n_disks=16)

    def test_copysets_are_distinct_and_rack_spanning(self):
        cp = CopysetPlacement(16, group_size=2, topology=self._topo())
        topo = self._topo()
        for g in range(100):
            cs = cp.copyset_of(g)
            assert len(set(cs)) == 2
            assert rack_ok(topo, cs, 1)

    def test_candidates_prefix_stable(self):
        cp = CopysetPlacement(16, group_size=2, topology=self._topo())
        for g in (0, 7, 99):
            c4 = cp.candidates(g, 4)
            assert cp.candidates(g, 2) == c4[:2]
            assert len(set(c4)) == 4

    def test_place_many_matches_copyset_of(self):
        cp = CopysetPlacement(16, group_size=2, topology=self._topo())
        mat = cp.place_many(np.arange(30), 2)
        for g in range(30):
            assert list(mat[g]) == cp.copyset_of(g)

    def test_added_disks_probe_but_do_not_join_copysets(self):
        cp = CopysetPlacement(16, group_size=2, topology=self._topo())
        before = [cp.copyset_of(g) for g in range(20)]
        cp.add_disks(8)
        assert cp.n_disks == 24
        assert [cp.copyset_of(g) for g in range(20)] == before


def constrained_cfg(**kw):
    defaults = dict(total_user_bytes=2 * TB, group_user_bytes=10 * GB,
                    racks=4, machines_per_rack=1, max_chunks_per_domain=1)
    defaults.update(kw)
    return SystemConfig(**defaults)


def assert_system_compliant(system):
    limit = system.config.max_chunks_per_domain
    for g in system.groups:
        live = [d for rep, d in enumerate(g.disks)
                if rep not in g.failed and d >= 0]
        assert rack_ok(system.topology, live, limit), (
            f"group {g.grp_id}: rack cap violated: {live}")


class TestDomainConstraintProperty:
    """Acceptance property: ``max_chunks_per_domain`` is never violated
    across random placements, migrations, and rebuilds; constraint-blocked
    rebuilds appear in ``RecoveryStats.rebuilds_deferred_constraint``."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("placement", ["random", "copyset"])
    def test_object_engine_end_state_compliant(self, seed, placement):
        # An aggressive replacement threshold forces batches + migration
        # mid-run, exercising every path that moves blocks.
        cfg = constrained_cfg(placement=placement,
                              replacement_threshold=0.1)
        result = simulate_run(cfg, seed=seed, keep_system=True)
        assert_system_compliant(result.system)
        s = result.stats
        assert s.rebuilds_deferred >= s.rebuilds_deferred_constraint

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fast_engine_end_state_compliant(self, seed):
        cfg = constrained_cfg(replacement_threshold=0.1)
        sim = ReliabilitySimulation(cfg, seed=seed)
        stats = sim.run()
        rack = sim.topology.rack_array()
        for g in range(sim.G):
            live = sim.group_disks[g][sim.group_disks[g] >= 0]
            counts = np.bincount(rack[live])
            assert (counts <= 1).all(), f"group {g}: {live}"
        assert stats.rebuilds_deferred >= stats.rebuilds_deferred_constraint

    def test_flat_run_has_zero_domain_counters(self):
        cfg = SystemConfig(total_user_bytes=2 * TB, group_user_bytes=10 * GB)
        s = simulate_run(cfg, seed=5).stats
        assert s.rebuilds_deferred_constraint == 0
        assert s.domain_colocated_losses == 0


class TestConstrainedDeferral:
    """A rebuild whose only compliant target rack has no live capacity
    defers (never violates) and drains once a batch restores the rack."""

    def _build(self, use_farm):
        # racks=2, cap=1, 4 disks: every mirror group has one block per
        # rack, so rebuilds for rack-0 losses *must* target rack 0 — and
        # the rack-1 non-buddy disk is vetoed by the domain cap alone,
        # which is what marks the deferral as constraint-caused.
        cfg = constrained_cfg(racks=2, total_user_bytes=800 * GB,
                              use_farm=use_farm)
        system = StorageSystem(cfg, RandomStreams(0),
                               deterministic_failures=True)
        sim = Simulator()
        cls = FarmRecovery if use_farm else TraditionalRecovery
        return system, sim, cls(system, sim)

    def test_farm_defers_then_drains_after_batch(self):
        system, sim, farm = self._build(use_farm=True)
        rack0 = system.topology.disks_in_rack(0)
        for i, d in enumerate(rack0):
            sim.schedule_at(100.0 + i, farm.on_disk_failure, d)
        sim.run(until=12 * HOUR)
        s = farm.stats
        assert s.rebuilds_deferred_constraint >= 1
        assert farm.deferred_outstanding > 0
        assert_system_compliant(system)

        # A batch tiles round-robin, so half its disks land in rack 0.
        system.add_batch(len(rack0) * 2, now=sim.now)
        assert farm.rearm_deferred() > 0
        sim.run(until=sim.now + 7 * DAY)
        assert farm.deferred_outstanding == 0
        assert s.retries >= s.rebuilds_deferred
        assert_system_compliant(system)
        for g in system.groups:
            assert not g.lost and not g.failed

    def test_fast_engine_defers_then_drains(self):
        """Same stalemate on the flat-array engine: the rack-0 kill parks
        every rebuild constraint-deferred; a later failure crosses the
        replacement threshold, the batch restores rack-0 capacity, and
        the parked rebuilds drain through their backoff retries."""
        cfg = constrained_cfg(racks=2, total_user_bytes=800 * GB,
                              replacement_threshold=0.6)
        sim = ReliabilitySimulation(cfg, seed=0)
        rack0 = sim.topology.disks_in_rack(0)
        for i, d in enumerate(rack0):
            sim.sim.schedule_at(100.0 + i, sim._on_disk_failure, d)
        sim.sim.run(until=12 * HOUR)
        assert sim.stats.rebuilds_deferred_constraint >= 1
        assert len(sim._deferred) > 0
        assert sim.stats.replacement_batches == 0

        # A rack-1 failure crosses the 60% threshold: its groups are
        # lost (their rack-0 halves were parked), the batch restores
        # rack-0 capacity, and every surviving group re-replicates.
        victim = sim.topology.disks_in_rack(1)[0]
        sim.sim.schedule_at(sim.sim.now + 60.0, sim._on_disk_failure,
                            victim)
        sim.sim.run(until=sim.sim.now + 14 * DAY)
        assert sim.stats.replacement_batches == 1
        assert len(sim._deferred) == 0
        assert sim.stats.retries >= 1
        surviving = ~sim.lost
        assert (sim.failed_count[surviving] == 0).all()
        rack = sim.topology.rack_array()
        for g in np.flatnonzero(surviving):
            live = sim.group_disks[g][sim.group_disks[g] >= 0]
            assert (np.bincount(rack[live]) <= 1).all()


class TestCompactionStability:
    def test_domain_ids_survive_compact_index(self):
        cfg = constrained_cfg(racks=2, total_user_bytes=200 * GB)
        system = StorageSystem(cfg, RandomStreams(0),
                               deterministic_failures=True)
        sim = Simulator()
        farm = FarmRecovery(system, sim)
        before = {d.disk_id: system.topology.rack_of(d.disk_id)
                  for d in system.disks}
        sim.schedule_at(10.0, farm.on_disk_failure, 0)
        sim.run(until=1 * DAY)
        system.compact_index()
        for disk in system.disks:
            if disk.disk_id in before:
                assert system.topology.rack_of(disk.disk_id) == \
                    before[disk.disk_id]

    def test_spare_inherits_failed_slot_rack(self):
        cfg = constrained_cfg(racks=2, total_user_bytes=200 * GB,
                              use_farm=False)
        system = StorageSystem(cfg, RandomStreams(0),
                               deterministic_failures=True)
        sim = Simulator()
        raid = TraditionalRecovery(system, sim)
        victim_rack = system.topology.rack_of(0)
        sim.schedule_at(10.0, raid.on_disk_failure, 0)
        sim.run(until=7 * DAY)
        assert raid.spares_provisioned >= 1
        spare = system.disks[-1].disk_id
        assert system.topology.rack_of(spare) == victim_rack
        assert_system_compliant(system)
