"""Tests for the telemetry subsystem (repro.telemetry).

Covers the metric primitives and snapshot merging, span tracking, the
exporters, probe gauges, and — most importantly — the acceptance
invariants the ISSUE pins:

* on the base (2 PB, 10 GB groups) FARM scenario, the sampled per-disk
  recovery bandwidth never exceeds the configured cap in any probe
  sample (equality allowed: the serial disk model rebuilds at the cap);
* span-derived window aggregates equal ``RecoveryStats`` window
  aggregates to float equality on both engines;
* serial and parallel sweeps merge to byte-identical snapshots;
* enabling telemetry does not change simulation results (probes are
  read-only).
"""

import copy
import io
import json
import math

import pytest

from repro.config import SystemConfig
from repro.core.runner import simulate_run
from repro.reliability import ReliabilitySimulation, sweep
from repro.reliability.runner import shutdown_pool
from repro.telemetry import (TELEMETRY_SCHEMA, ClusterProbes, Counter,
                             Gauge, Histogram, MetricRegistry, ProbeSample,
                             SpanTracker, Telemetry, TelemetryConfig,
                             append_jsonl, canonical_json,
                             default_telemetry_path, empty_snapshot,
                             log_bounds, merge_into, merge_snapshots,
                             read_jsonl, render_summary, snapshot_record,
                             to_prometheus, write_csv)
from repro.units import DAY, GB, TB, YEAR


def tiny():
    return SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB)


# --------------------------------------------------------------------- #
# Metric primitives
# --------------------------------------------------------------------- #
class TestLogBounds:
    def test_per_decade_density(self):
        bounds = log_bounds(1.0, 1000.0, per_decade=1)
        assert bounds == (1.0, 10.0, 100.0, 1000.0)

    def test_covers_hi(self):
        bounds = log_bounds(1.0, 50.0, per_decade=2)
        assert bounds[-1] >= 50.0
        assert bounds[0] == 1.0

    def test_pure_function(self):
        assert log_bounds(0.5, 200.0) == log_bounds(0.5, 200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_bounds(0.0, 10.0)
        with pytest.raises(ValueError):
            log_bounds(10.0, 10.0)
        with pytest.raises(ValueError):
            log_bounds(1.0, 10.0, per_decade=0)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x_total")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_int_increments_stay_int(self):
        c = Counter("x_total")
        c.inc(2)
        assert isinstance(c.value, int)

    def test_float_increments_allowed(self):
        c = Counter("x_seconds_total")
        c.inc(1.5)
        assert c.value == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x_total").inc(-1)


class TestGauge:
    def test_sample_statistics(self):
        g = Gauge("x")
        for v in (3.0, 1.0, 2.0):
            g.set(v)
        assert g.last == 2.0
        assert g.vmin == 1.0 and g.vmax == 3.0
        assert g.total == 6.0 and g.samples == 3
        assert g.mean == 2.0

    def test_unset_gauge(self):
        g = Gauge("x")
        assert g.vmin is None and g.vmax is None
        assert g.mean == 0.0


class TestHistogram:
    def test_bucket_placement_le_semantics(self):
        h = Histogram("x", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 100.0, 101.0):
            h.observe(v)
        # counts[i] counts v <= bounds[i]; counts[-1] is +inf overflow.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(207.5)
        assert h.vmin == 0.5 and h.vmax == 101.0

    def test_mean(self):
        h = Histogram("x", bounds=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=())
        with pytest.raises(ValueError):
            Histogram("x", bounds=(10.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert len(reg) == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricRegistry()
        a = reg.gauge("disks", labels={"state": "online"})
        b = reg.gauge("disks", labels={"state": "failed"})
        assert a is not b and len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_keys_sorted(self):
        reg = MetricRegistry()
        reg.counter("z_total")
        reg.counter("a_total")
        snap = reg.snapshot()
        assert snap["schema"] == TELEMETRY_SCHEMA
        assert list(snap["metrics"]) == sorted(snap["metrics"])


# --------------------------------------------------------------------- #
# Snapshot merging
# --------------------------------------------------------------------- #
def _sample_registry(scale: int) -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("events_total").inc(scale)
    g = reg.gauge("depth")
    g.set(float(scale))
    g.set(float(scale * 2))
    h = reg.histogram("lat", bounds=(1.0, 10.0))
    h.observe(0.5 * scale)
    return reg


class TestMerge:
    def test_empty_is_neutral(self):
        snap = _sample_registry(3).snapshot()
        merged = merge_into(empty_snapshot(), copy.deepcopy(snap))
        assert canonical_json(merged) == canonical_json(snap)

    def test_counter_sums(self):
        merged = merge_snapshots([_sample_registry(1).snapshot(),
                                  _sample_registry(2).snapshot()])
        assert merged["metrics"]["events_total"]["value"] == 3

    def test_gauge_fields(self):
        merged = merge_snapshots([_sample_registry(1).snapshot(),
                                  _sample_registry(3).snapshot()])
        g = merged["metrics"]["depth"]
        assert g["last"] == 6.0         # last-folded run wins
        assert g["min"] == 1.0 and g["max"] == 6.0
        assert g["samples"] == 4 and g["sum"] == 12.0

    def test_histogram_elementwise(self):
        merged = merge_snapshots([_sample_registry(1).snapshot(),
                                  _sample_registry(30).snapshot()])
        h = merged["metrics"]["lat"]
        assert h["counts"] == [1, 0, 1]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 15.0

    def test_associative_byte_identical(self):
        snaps = [_sample_registry(n).snapshot() for n in (1, 2, 3)]
        left = merge_into(merge_into(empty_snapshot(),
                                     copy.deepcopy(snaps[0])),
                          merge_snapshots(copy.deepcopy(snaps[1:])))
        right = merge_snapshots(copy.deepcopy(snaps))
        assert canonical_json(left) == canonical_json(right)

    def test_merge_does_not_alias_input(self):
        snap = _sample_registry(1).snapshot()
        acc = merge_into(empty_snapshot(), snap)
        acc["metrics"]["lat"]["counts"][0] += 99
        assert snap["metrics"]["lat"]["counts"][0] == 1

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_into(empty_snapshot(), {"schema": "bogus", "metrics": {}})

    def test_kind_mismatch_raises(self):
        a = empty_snapshot()
        a["metrics"]["x"] = {"kind": "counter", "value": 1}
        b = empty_snapshot()
        b["metrics"]["x"] = {"kind": "gauge", "last": 1.0, "min": 1.0,
                             "max": 1.0, "sum": 1.0, "samples": 1}
        with pytest.raises(ValueError):
            merge_into(a, b)

    def test_histogram_bounds_mismatch_raises(self):
        def snap(bounds):
            reg = MetricRegistry()
            reg.histogram("h", bounds=bounds).observe(1.0)
            return reg.snapshot()
        with pytest.raises(ValueError):
            merge_snapshots([snap((1.0, 2.0)), snap((1.0, 3.0))])


# --------------------------------------------------------------------- #
# Span tracking
# --------------------------------------------------------------------- #
class TestSpans:
    def make(self):
        reg = MetricRegistry()
        return reg, SpanTracker(reg, "w", bounds=(10.0, 100.0))

    def test_begin_end_duration(self):
        _, spans = self.make()
        spans.begin((1, 0), 5.0, group_size=3)
        assert spans.open_count == 1
        assert spans.end((1, 0), 12.5) == 7.5
        assert spans.open_count == 0
        assert spans.started.value == 1
        assert spans.completed.value == 1
        assert spans.duration_sum.value == 7.5

    def test_duplicate_begin_keeps_original(self):
        _, spans = self.make()
        spans.begin((1, 0), 5.0, group_size=3)
        spans.begin((1, 0), 9.0, group_size=3)
        assert spans.started.value == 1
        assert spans.end((1, 0), 10.0) == 5.0

    def test_end_unopened_returns_none(self):
        _, spans = self.make()
        assert spans.end((7, 7), 1.0) is None
        assert spans.completed.value == 0

    def test_histograms_bucketed_by_group_size(self):
        reg, spans = self.make()
        spans.begin((1, 0), 0.0, group_size=3)
        spans.begin((2, 0), 0.0, group_size=5)
        spans.end((1, 0), 4.0)
        spans.end((2, 0), 40.0)
        snap = reg.snapshot()
        assert snap["metrics"]['w{n="3"}']["count"] == 1
        assert snap["metrics"]['w{n="5"}']["count"] == 1

    def test_abort_group_only_touches_that_group(self):
        _, spans = self.make()
        spans.begin((1, 0), 0.0, group_size=3)
        spans.begin((1, 1), 0.0, group_size=3)
        spans.begin((2, 0), 0.0, group_size=3)
        spans.abort_group(1)
        assert spans.aborted.value == 2
        assert spans.open_count == 1
        assert spans.end((2, 0), 1.0) == 1.0

    def test_open_gauge_synced_on_demand(self):
        _, spans = self.make()
        spans.begin((1, 0), 0.0, group_size=3)
        spans.sync_open_gauge()
        assert spans.open_gauge.last == 1.0


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #
class TestExport:
    def snap(self):
        return _sample_registry(2).snapshot()

    def test_snapshot_record_requires_schema(self):
        with pytest.raises(ValueError):
            snapshot_record({"metrics": {}})

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "tele.jsonl"
        append_jsonl(path, self.snap(), sweep="s", point="a", n_runs=2)
        append_jsonl(path, self.snap(), sweep="s", point="b", n_runs=2)
        records = read_jsonl(path)
        assert [r["point"] for r in records] == ["a", "b"]
        assert records[0]["metrics"]["events_total"]["value"] == 2

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "other", "metrics": {}}) + "\n")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_csv_layout(self):
        buf = io.StringIO()
        rows = write_csv(self.snap(), buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "name,labels,kind,field,value"
        assert len(lines) == rows + 1
        assert any(line.startswith("events_total,,counter,value,2")
                   for line in lines)

    def test_prometheus_format(self):
        text = to_prometheus(self.snap())
        assert "# TYPE events_total counter" in text
        assert "events_total 2" in text
        assert "# TYPE depth gauge" in text
        assert "depth 4.0" in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_render_summary_empty(self):
        assert render_summary([]) == "no telemetry records"

    def test_default_path_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_PATH", raising=False)
        assert default_telemetry_path() is None
        monkeypatch.setenv("REPRO_TELEMETRY_PATH", "")
        assert default_telemetry_path() is None
        monkeypatch.setenv("REPRO_TELEMETRY_PATH", "/tmp/t.jsonl")
        assert default_telemetry_path() is not None


# --------------------------------------------------------------------- #
# Probes
# --------------------------------------------------------------------- #
class TestProbes:
    def test_record_folds_sample_into_gauges(self):
        tele = Telemetry()
        probes: ClusterProbes = tele.probes
        probes.record(ProbeSample(
            bandwidth_in_use_bps=32e6, disk_bandwidth_max_bps=16e6,
            bandwidth_cap_bps=16e6,
            disks_by_state={"online": 10, "failed": 2},
            degraded_groups=3, deferred_rebuilds=1,
            rebuild_load_max=4.0, rebuild_load_mean=2.0))
        snap = tele.snapshot()["metrics"]
        assert snap["repro_probe_samples_total"]["value"] == 1
        assert snap["repro_recovery_bandwidth_in_use_bps"]["last"] == 32e6
        assert snap["repro_recovery_disk_bandwidth_bps"]["last"] == 16e6
        assert snap["repro_rebuild_load_imbalance"]["last"] == 2.0
        assert snap['repro_disks{state="failed"}']["last"] == 2.0
        assert snap['repro_disks{state="online"}']["last"] == 10.0

    def test_idle_cluster_imbalance_is_even(self):
        tele = Telemetry()
        tele.probes.record(ProbeSample(
            bandwidth_in_use_bps=0.0, disk_bandwidth_max_bps=0.0,
            bandwidth_cap_bps=16e6))
        snap = tele.snapshot()["metrics"]
        assert snap["repro_rebuild_load_imbalance"]["last"] == 1.0


# --------------------------------------------------------------------- #
# Engine integration
# --------------------------------------------------------------------- #
class TestFastEngineIntegration:
    def run_one(self, config, seed=0):
        tele = Telemetry(TelemetryConfig())
        stats = ReliabilitySimulation(config, seed=seed,
                                      telemetry=tele).run()
        return stats, tele.snapshot()["metrics"]

    @pytest.mark.parametrize("seed", [0, 7])
    def test_counters_match_stats(self, seed):
        stats, m = self.run_one(tiny(), seed)
        assert m["repro_disk_failures_total"]["value"] == stats.disk_failures
        assert m["repro_rebuilds_started_total"]["value"] == \
            stats.rebuilds_started
        assert m["repro_rebuilds_completed_total"]["value"] == \
            stats.rebuilds_completed
        assert m["repro_groups_lost_total"]["value"] == stats.groups_lost
        assert m["repro_target_redirections_total"]["value"] == \
            stats.target_redirections

    def test_span_window_float_equality(self):
        stats, m = self.run_one(tiny(), seed=3)
        span_sum = \
            m["repro_window_of_vulnerability_seconds_sum_total"]["value"]
        completed = m[
            "repro_window_of_vulnerability_seconds_spans_completed_total"][
            "value"]
        assert span_sum == stats.window_total          # exact, not approx
        assert completed == stats.rebuilds_completed
        if completed:
            assert span_sum / completed == stats.mean_window

    def test_probe_cadence(self):
        cfg = tiny().with_(duration=2 * YEAR)
        stats, m = self.run_one(cfg)
        expected = math.floor(cfg.duration / DAY)
        assert m["repro_probe_samples_total"]["value"] == expected
        assert m["repro_recovery_disk_bandwidth_bps"]["samples"] == expected

    def test_probes_are_read_only(self):
        baseline = ReliabilitySimulation(tiny(), seed=11).run()
        observed, _ = self.run_one(tiny(), seed=11)
        assert observed.disk_failures == baseline.disk_failures
        assert observed.rebuilds_completed == baseline.rebuilds_completed
        assert observed.window_total == baseline.window_total
        assert observed.groups_lost == baseline.groups_lost

    def test_base_scenario_bandwidth_never_exceeds_cap(self):
        """Acceptance: base 2 PB / 10 GB FARM scenario — the sampled
        per-disk recovery bandwidth stays within the configured cap in
        every probe sample (equality allowed: SerialServer rebuilds at
        exactly the cap)."""
        cfg = SystemConfig()            # the paper's base FARM scenario
        assert cfg.total_user_bytes == 2e15 and cfg.use_farm
        stats, m = self.run_one(cfg)
        bw = m["repro_recovery_disk_bandwidth_bps"]
        cap = m["repro_recovery_bandwidth_cap_bps"]
        assert bw["samples"] == math.floor(cfg.duration / DAY)
        assert cap["last"] == cfg.recovery_bandwidth
        # max over ALL samples: the invariant held at every probe instant.
        assert bw["max"] <= cap["last"]
        assert stats.disk_failures > 0  # the run actually exercised it


class TestObjectEngineIntegration:
    def test_counters_and_spans_match_stats(self):
        tele = Telemetry(TelemetryConfig())
        res = simulate_run(tiny(), seed=2, telemetry=tele)
        stats, m = res.stats, tele.snapshot()["metrics"]
        assert m["repro_disk_failures_total"]["value"] == stats.disk_failures
        assert m["repro_rebuilds_completed_total"]["value"] == \
            stats.rebuilds_completed
        span_sum = \
            m["repro_window_of_vulnerability_seconds_sum_total"]["value"]
        assert span_sum == stats.window_total          # exact, not approx
        assert m["repro_probe_samples_total"]["value"] == \
            math.floor(tiny().duration / DAY)

    def test_probes_are_read_only(self):
        baseline = simulate_run(tiny(), seed=5).stats
        observed = simulate_run(tiny(), seed=5,
                                telemetry=Telemetry()).stats
        assert observed.disk_failures == baseline.disk_failures
        assert observed.window_total == baseline.window_total
        assert observed.rebuilds_completed == baseline.rebuilds_completed

    def test_traditional_engine_instrumented(self):
        tele = Telemetry()
        res = simulate_run(tiny().with_(use_farm=False), seed=1,
                           telemetry=tele)
        m = tele.snapshot()["metrics"]
        assert m["repro_disk_failures_total"]["value"] == \
            res.stats.disk_failures
        assert m["repro_rebuilds_completed_total"]["value"] == \
            res.stats.rebuilds_completed


class TestParallelIdentity:
    def test_serial_and_parallel_snapshots_byte_identical(self):
        kwargs = dict(n_runs=4, base_seed=0, telemetry=True,
                      telemetry_path="", bench_path=None)
        configs = {"farm": tiny(), "trad": tiny().with_(use_farm=False)}
        serial = sweep(configs, n_jobs=1, **kwargs)
        try:
            parallel = sweep(configs, n_jobs=2, **kwargs)
        finally:
            shutdown_pool()
        for label in configs:
            assert canonical_json(serial[label].telemetry) == \
                canonical_json(parallel[label].telemetry), label
            assert serial[label].telemetry["metrics"][
                "repro_disk_failures_total"]["value"] > 0

    def test_sweep_writes_jsonl_records(self, tmp_path):
        path = tmp_path / "tele.jsonl"
        sweep({"farm": tiny()}, n_runs=2, n_jobs=1, telemetry_path=path,
              bench_path=None, sweep_name="t")
        records = read_jsonl(path)
        assert len(records) == 1
        assert records[0]["sweep"] == "t" and records[0]["point"] == "farm"
        assert records[0]["n_runs"] == 2
        assert "snapshot" not in render_summary(records)
