"""Behavioural tests for traditional RAID recovery (repro.core.traditional)."""

import pytest

from repro.cluster import StorageSystem
from repro.config import SystemConfig
from repro.core import TraditionalRecovery
from repro.sim import RandomStreams, Simulator
from repro.units import GB, TB, YEAR


def make(cfg_kw=None, seed=0):
    defaults = dict(total_user_bytes=40 * TB, group_user_bytes=10 * GB,
                    detection_latency=30.0, use_farm=False)
    defaults.update(cfg_kw or {})
    cfg = SystemConfig(**defaults)
    system = StorageSystem(cfg, RandomStreams(seed))
    sim = Simulator()
    return cfg, system, sim, TraditionalRecovery(system, sim)


class TestSerializedRebuild:
    def test_one_spare_per_failed_disk(self):
        cfg, system, sim, trad = make()
        n_before = system.n_disks
        sim.schedule_at(100.0, trad.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        assert trad.spares_provisioned == 1
        assert system.n_disks == n_before + 1

    def test_rebuilds_complete_serially(self):
        """Completions are spaced one block-rebuild apart: the queue."""
        cfg, system, sim, trad = make()
        n_blocks = len(system.groups_on_disk(0))
        sim.schedule_at(100.0, trad.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        assert trad.stats.rebuilds_completed == n_blocks
        t_block = cfg.rebuild_seconds_per_block
        # k-th completion at detect + k * t_block => max window covers the
        # whole queue
        expected_max = cfg.detection_latency + n_blocks * t_block
        assert trad.stats.window_max == pytest.approx(expected_max, rel=0.01)
        expected_mean = cfg.detection_latency + (n_blocks + 1) / 2 * t_block
        assert trad.stats.mean_window == pytest.approx(expected_mean,
                                                       rel=0.01)

    def test_all_blocks_land_on_spare(self):
        cfg, system, sim, trad = make()
        affected = system.groups_on_disk(0)
        failed_reps = [(g, next(r for r, d in enumerate(g.disks)
                                if d == 0)) for g in affected]
        sim.schedule_at(100.0, trad.on_disk_failure, 0)
        sim.run(until=1 * YEAR)
        spare = system.n_disks - 1
        targets = {g.disks[rep] for g, rep in failed_reps}
        assert targets == {spare}

    def test_window_much_longer_than_farm(self):
        """The paper's core contrast, at identical geometry."""
        from repro.core import FarmRecovery
        cfg, system, sim, trad = make()
        sim.schedule_at(100.0, trad.on_disk_failure, 0)
        sim.run(until=1 * YEAR)

        cfg2 = cfg.with_(use_farm=True)
        system2 = StorageSystem(cfg2, RandomStreams(0))
        sim2 = Simulator()
        farm = FarmRecovery(system2, sim2)
        sim2.schedule_at(100.0, farm.on_disk_failure, 0)
        sim2.run(until=1 * YEAR)

        assert trad.stats.mean_window > 10 * farm.stats.mean_window


class TestSpareFailure:
    def test_spare_death_redirects_pending_work(self):
        cfg, system, sim, trad = make()
        sim.schedule_at(100.0, trad.on_disk_failure, 0)

        spare_holder = {}

        def kill_spare():
            spare = system.n_disks - 1
            spare_holder["id"] = spare
            trad.on_disk_failure(spare)

        # kill the spare while most rebuilds are still queued
        sim.schedule_at(100.0 + cfg.detection_latency
                        + 2 * cfg.rebuild_seconds_per_block, kill_spare)
        sim.run(until=1 * YEAR)
        assert trad.stats.target_redirections > 0
        assert trad.spares_provisioned >= 2
        # all groups resolved (rebuilt or counted lost)
        for g in system.groups:
            assert g.lost or not g.failed

    def test_second_disk_failure_gets_its_own_spare(self):
        cfg, system, sim, trad = make()
        sim.schedule_at(100.0, trad.on_disk_failure, 0)
        sim.schedule_at(200.0, trad.on_disk_failure, 1)
        sim.run(until=1 * YEAR)
        assert trad.spares_provisioned == 2

    def test_loss_when_partner_fails_inside_queue_window(self):
        cfg, system, sim, trad = make()
        group = system.groups_on_disk(0)[0]
        partner = next(d for d in group.disks if d != 0)
        sim.schedule_at(100.0, trad.on_disk_failure, 0)
        # just after detection: (almost) the whole queue is still pending,
        # so the shared group's surviving replica is certainly unrebuilt
        sim.schedule_at(100.0 + cfg.detection_latency + 1.0,
                        trad.on_disk_failure, partner)
        sim.run(until=1 * YEAR)
        assert group.lost
        assert trad.stats.groups_lost > 0
