"""Tests for the object-level system model (repro.cluster.system)."""

import numpy as np
import pytest

from repro.cluster import StorageSystem
from repro.config import SystemConfig
from repro.redundancy import ECC_4_6
from repro.sim import RandomStreams
from repro.units import GB, TB


def small_config(**kw):
    defaults = dict(total_user_bytes=20 * TB, group_user_bytes=10 * GB)
    defaults.update(kw)
    return SystemConfig(**defaults)


@pytest.fixture
def system():
    return StorageSystem(small_config(), RandomStreams(0))


class TestConstruction:
    def test_geometry(self, system):
        cfg = system.config
        assert len(system.disks) == cfg.n_disks
        assert len(system.groups) == cfg.n_groups
        assert system.initial_population == cfg.n_disks

    def test_groups_on_distinct_disks(self, system):
        for group in system.groups[:200]:
            assert len(set(group.disks)) == group.scheme.n

    def test_utilization_near_target(self, system):
        util = system.utilization_bytes()
        mean_frac = util.mean() / system.config.vintage.capacity_bytes
        assert mean_frac == pytest.approx(
            system.config.target_utilization, rel=0.15)

    def test_used_bytes_consistent_with_block_count(self, system):
        disk = system.disks[0]
        live = sum(1 for g in system.groups_on_disk(0))
        assert disk.used_bytes == pytest.approx(
            live * system.config.block_bytes)

    def test_failure_times_sampled_for_all(self, system):
        assert len(system.failure_times) == len(system.disks)
        assert all(t > 0 for t in system.failure_times)

    def test_deterministic_for_seed(self):
        a = StorageSystem(small_config(), RandomStreams(5))
        b = StorageSystem(small_config(), RandomStreams(5))
        assert a.failure_times == b.failure_times
        assert a.groups[17].disks == b.groups[17].disks

    def test_rush_placement_option(self):
        sys_rush = StorageSystem(small_config(placement="rush"),
                                 RandomStreams(0))
        assert type(sys_rush.placement).__name__ == "RushPlacement"

    def test_mismatched_placement_rejected(self):
        from repro.placement import RandomPlacement
        with pytest.raises(ValueError, match="placement covers"):
            StorageSystem(small_config(), RandomStreams(0),
                          placement=RandomPlacement(5, seed=0))


class TestFailure:
    def test_fail_disk_returns_affected_reps(self, system):
        affected = system.fail_disk(3, now=100.0)
        assert not system.disks[3].online
        for group, reps in affected:
            for rep in reps:
                assert rep in group.failed

    def test_groups_on_disk_excludes_failed_blocks(self, system):
        before = len(system.groups_on_disk(3))
        system.fail_disk(3, now=1.0)
        assert len(system.groups_on_disk(3)) == 0
        assert before > 0

    def test_double_failure_rejected(self, system):
        system.fail_disk(3, now=1.0)
        with pytest.raises(ValueError):
            system.fail_disk(3, now=2.0)

    def test_utilization_zero_for_failed_disk(self, system):
        system.fail_disk(3, now=1.0)
        assert system.utilization_bytes()[3] == 0.0

    def test_mirror_group_lost_on_both_disks_failing(self):
        system = StorageSystem(small_config(), RandomStreams(2))
        group = system.groups[0]
        d0, d1 = group.disks
        system.fail_disk(d0, now=1.0)
        system.fail_disk(d1, now=2.0)
        assert group.lost and group.loss_time == 2.0


class TestSparesAndBatches:
    def test_add_spare_outside_placement(self, system):
        n = system.placement.n_disks
        spare = system.add_spare(now=10.0)
        assert spare == n                       # next id
        assert system.placement.n_disks == n    # placement unchanged
        assert system.disks[spare].deployed_at == 10.0

    def test_add_batch_grows_placement(self, system):
        n = system.placement.n_disks
        ids = system.add_batch(10, now=5.0)
        assert ids == list(range(n, n + 10))
        assert system.placement.n_disks == n + 10

    def test_batch_disks_get_failure_times(self, system):
        ids = system.add_batch(5, now=5.0)
        for d in ids:
            assert system.failure_times[d] > 5.0

    def test_migrate_to_batch_balances(self):
        system = StorageSystem(small_config(placement="rush"),
                               RandomStreams(1))
        ids = system.add_batch(10, now=0.0)
        moved = system.migrate_to_batch(ids, now=0.0,
                                        rng=np.random.default_rng(0))
        assert moved > 0
        new_util = system.utilization_bytes()[ids]
        avg = system.utilization_bytes().mean()
        assert new_util.mean() == pytest.approx(avg, rel=0.5)

    def test_migration_preserves_distinctness(self):
        system = StorageSystem(small_config(scheme=ECC_4_6),
                               RandomStreams(3))
        ids = system.add_batch(8, now=0.0)
        system.migrate_to_batch(ids, now=0.0, rng=np.random.default_rng(1))
        for group in system.groups:
            live = [d for r, d in enumerate(group.disks)
                    if r not in group.failed]
            assert len(live) == len(set(live))

    def test_add_batch_validation(self, system):
        with pytest.raises(ValueError):
            system.add_batch(0, now=0.0)

    def test_migration_skips_full_targets(self):
        """Regression: migrate_to_batch used to allocate onto replacement
        drives without asking ``can_accept``, overfilling them."""
        system = StorageSystem(small_config(), RandomStreams(2))
        ids = system.add_batch(10, now=0.0)
        for d in ids:
            system.disks[d].used_bytes = system.disks[d].capacity_bytes
        moved = system.migrate_to_batch(ids, now=0.0,
                                        rng=np.random.default_rng(0))
        assert moved == 0
        for d in ids:
            assert system.disks[d].free_bytes == 0.0

    def test_migration_never_overfills_partial_room(self):
        system = StorageSystem(small_config(), RandomStreams(2))
        ids = system.add_batch(10, now=0.0)
        block = system.config.block_bytes
        for d in ids:    # room for exactly one more block each
            system.disks[d].used_bytes = \
                system.disks[d].capacity_bytes - block
        moved = system.migrate_to_batch(ids, now=0.0,
                                        rng=np.random.default_rng(0))
        assert 0 < moved <= len(ids)
        for d in ids:
            assert system.disks[d].used_bytes <= \
                system.disks[d].capacity_bytes


class TestSmartIntegration:
    def test_no_monitor_means_never_suspect(self, system):
        assert not system.is_suspect(0, now=0.0)

    def test_monitor_enabled_flags_imminent_failures(self):
        system = StorageSystem(small_config(use_smart=True),
                               RandomStreams(4))
        # Find a disk and ask right before its known failure time: with
        # detection probability 0.4 over many disks, some must be flagged.
        flagged = sum(
            system.is_suspect(d, now=system.failure_times[d] - 3600.0)
            for d in range(len(system.disks)))
        assert flagged > 0


class TestIndexCompaction:
    def _live_index(self, system):
        """disk -> set of groups with a live block there, from group state
        (the ground truth the index approximates)."""
        truth = [set() for _ in system.disks]
        for group in system.groups:
            for rep, disk_id in enumerate(group.disks):
                if rep not in group.failed and disk_id >= 0:
                    truth[disk_id].add(group.grp_id)
        return truth

    def test_migration_leaves_stale_entries(self):
        system = StorageSystem(small_config(), RandomStreams(1))
        ids = system.add_batch(10, now=0.0)
        system.migrate_to_batch(ids, now=0.0, rng=np.random.default_rng(0))
        dropped = system.compact_index()
        assert dropped > 0
        assert system.compact_index() == 0      # idempotent once tight

    def test_compaction_preserves_groups_on_disk(self):
        system = StorageSystem(small_config(), RandomStreams(2))
        ids = system.add_batch(10, now=0.0)
        system.migrate_to_batch(ids, now=0.0, rng=np.random.default_rng(1))
        before = {d.disk_id: {g.grp_id for g in
                              system.groups_on_disk(d.disk_id)}
                  for d in system.disks}
        system.compact_index()
        after = {d.disk_id: {g.grp_id for g in
                             system.groups_on_disk(d.disk_id)}
                 for d in system.disks}
        assert before == after

    def test_compacted_index_holds_no_stale_entry(self):
        """After compaction every index entry is live: recovery can never
        consult an entry whose block moved away or failed."""
        system = StorageSystem(small_config(), RandomStreams(3))
        system.fail_disk(7, now=1.0)
        ids = system.add_batch(10, now=2.0)
        system.migrate_to_batch(ids, now=2.0, rng=np.random.default_rng(2))
        system.compact_index()
        truth = self._live_index(system)
        for disk_id, entries in enumerate(system._disk_groups):
            assert len(entries) == len(set(entries))
            assert set(entries) == truth[disk_id]
