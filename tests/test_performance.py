"""Tests for degraded-mode performance models (repro.performance)."""

import pytest

from repro.config import SystemConfig
from repro.performance import (compare_layouts, degraded_read_amplification,
                               rebuild_read_share, user_load_factor)
from repro.redundancy import ECC_8_10, MIRROR_2, MIRROR_3, RAID5_4_5
from repro.units import GB, PB


class TestAmplification:
    def test_mirroring_reads_one_replica(self):
        assert degraded_read_amplification(MIRROR_2) == 1.0
        assert degraded_read_amplification(MIRROR_3) == 1.0

    def test_codes_read_m_blocks(self):
        assert degraded_read_amplification(RAID5_4_5) == 4.0
        assert degraded_read_amplification(ECC_8_10) == 8.0


class TestUserLoadFactor:
    def test_healthy_system_is_unit(self):
        assert user_load_factor(MIRROR_2, 1000, failed=0) == 1.0

    def test_classical_mirrored_pair_doubles(self):
        """The surviving replica serves both read streams."""
        assert user_load_factor(MIRROR_2, 2, failed=1) == 2.0

    def test_classical_raid5_stripe_doubles(self):
        """Every degraded read touches all m survivors: ~2x utilization
        (Muntz & Lui's motivating number)."""
        assert user_load_factor(RAID5_4_5, 5, failed=1) == 2.0

    def test_declustering_dilutes_to_order_one(self):
        factor = user_load_factor(RAID5_4_5, 10_000, failed=1)
        assert factor == pytest.approx(1.0, abs=0.001)

    def test_more_failures_more_load(self):
        one = user_load_factor(MIRROR_2, 100, failed=1)
        five = user_load_factor(MIRROR_2, 100, failed=5)
        assert five > one > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            user_load_factor(MIRROR_2, 10, failed=10)
        with pytest.raises(ValueError):
            user_load_factor(MIRROR_2, 10, failed=-1)


class TestRebuildShare:
    def test_single_spare_array_pays_heavily(self):
        """4 survivors of a RAID-5 stripe each read ~1/4 of the failed
        disk's worth at recovery speed: a visible bandwidth tax."""
        cfg = SystemConfig(scheme=RAID5_4_5)
        share = rebuild_read_share(cfg, n_sharing=4)
        assert share == pytest.approx(0.25 * 16e6 / 80e6 * 4, rel=0.01)

    def test_declustered_share_negligible(self):
        cfg = SystemConfig()
        assert rebuild_read_share(cfg, n_sharing=9999) < 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            rebuild_read_share(SystemConfig(), 0)


class TestCompareLayouts:
    def test_the_declustering_argument(self):
        """The paper's performance claim in two numbers: the dedicated
        array roughly doubles survivor load during recovery, declustering
        keeps it within a fraction of a percent."""
        declustered, dedicated = compare_layouts(SystemConfig())
        assert dedicated.total_load_factor > 1.5
        assert declustered.total_load_factor < 1.01

    def test_labels_and_population(self):
        declustered, dedicated = compare_layouts(
            SystemConfig(scheme=RAID5_4_5))
        assert declustered.layout == "declustered"
        assert dedicated.n_disks == 5
        assert declustered.n_disks == SystemConfig(
            scheme=RAID5_4_5).n_disks
