"""Unit suite for the whole-program analyzer (repro.analysis v2).

Covers the infrastructure the RPR100-series rules stand on: per-module
fact collection, the project symbol/import/call graph (re-export chains,
``__init__`` re-binding, cycle detection), the content-hash incremental
cache (warm and cold runs must emit identical findings), the baseline
mechanism, and internal-error containment.
"""

import textwrap
from pathlib import Path

from repro.analysis.base import Violation
from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     render_baseline,
                                     violation_fingerprint)
from repro.analysis.cache import AnalysisCache, source_digest
from repro.analysis.callgraph import build_graph, reachable_modules
from repro.analysis.project import analyze_paths, restrict_to_changed
from repro.analysis.streams import StreamPolicy, check_streams
from repro.analysis.symbols import collect_facts
from repro.analysis.unitflow import check_units


def facts_for(relpath: str, source: str, root: str = "proj"):
    """Collect facts for an in-memory module at a virtual path."""
    return collect_facts(textwrap.dedent(source),
                         Path(root) / relpath, roots=[Path(root)])


# --------------------------------------------------------------------- #
# Symbol table / call graph
# --------------------------------------------------------------------- #
class TestProjectGraph:
    def test_import_cycle_detection(self):
        graph = build_graph([
            facts_for("repro/a.py", "from . import b\n"),
            facts_for("repro/b.py", "from . import a\n"),
            facts_for("repro/c.py", "from . import a\n"),
        ])
        assert graph.import_cycles() == [["repro.a", "repro.b"]]

    def test_reexport_chain_resolves_to_definition_site(self):
        graph = build_graph([
            facts_for("repro/pkg/impl.py", """\
                def thing():
                    return 0
                """),
            facts_for("repro/pkg/__init__.py",
                      "from .impl import thing\n"),
            facts_for("repro/user.py",
                      "from repro.pkg import thing\n"),
        ])
        resolved = graph.resolve("repro.user", "thing")
        assert resolved is not None
        assert resolved.module == "repro.pkg.impl"
        assert resolved.qualname == "thing"
        assert resolved.kind == "function"

    def test_init_alias_rebinding_resolves(self):
        graph = build_graph([
            facts_for("repro/pkg/impl.py", """\
                def thing():
                    return 0
                """),
            facts_for("repro/pkg/__init__.py", """\
                from .impl import thing

                legacy_thing = thing
                """),
        ])
        resolved = graph.resolve("repro.pkg", "legacy_thing")
        assert resolved is not None
        assert resolved.module == "repro.pkg.impl"

    def test_dotted_resolution_through_module_binding(self):
        graph = build_graph([
            facts_for("repro/util.py", """\
                def helper():
                    return 0
                """),
            facts_for("repro/main.py", """\
                from repro import util

                def go():
                    return util.helper()
                """),
        ])
        resolved = graph.resolve_dotted("repro.main", "util.helper")
        assert resolved is not None and resolved.module == "repro.util"
        edges = graph.call_edges()
        assert "repro.util:helper" in edges["repro.main:go"]

    def test_self_method_calls_resolve_within_class(self):
        graph = build_graph([facts_for("repro/m.py", """\
            class Engine:
                def step(self):
                    return self.tick()

                def tick(self):
                    return 1
            """)])
        edges = graph.call_edges()
        assert edges["repro.m:Engine.step"] == {"repro.m:Engine.tick"}

    def test_reachable_modules_follows_import_edges(self):
        graph = build_graph([
            facts_for("repro/a.py", "from . import b\n"),
            facts_for("repro/b.py", "from . import c\n"),
            facts_for("repro/c.py", "X = 1\n"),
            facts_for("repro/d.py", "X = 2\n"),
        ])
        reached = reachable_modules(graph.import_edges, "repro.a")
        # external leaves (the bare package name) stay in the set;
        # what matters is b and c are reached and d is not.
        assert {"repro.a", "repro.b", "repro.c"} <= reached
        assert "repro.d" not in reached


# --------------------------------------------------------------------- #
# Unit flow / stream checks over synthetic facts
# --------------------------------------------------------------------- #
class TestUnitFlow:
    def test_mixed_dimension_addition_flagged(self):
        graph = build_graph([facts_for("repro/m.py", """\
            def total(size_bytes, wait_s):
                return size_bytes + wait_s
            """)])
        violations = check_units(graph)
        assert [v.rule for v in violations] == ["RPR101"]
        assert "bytes" in violations[0].message
        assert "seconds" in violations[0].message

    def test_division_cancels_dimensions(self):
        graph = build_graph([facts_for("repro/m.py", """\
            def transfer_s(size_bytes, rate_bps):
                total_s = size_bytes / rate_bps
                return total_s
            """)])
        assert check_units(graph) == []

    def test_property_dimension_reaches_other_modules(self):
        graph = build_graph([
            facts_for("repro/cfg.py", """\
                class Config:
                    raw_bytes: float

                    @property
                    def capacity(self):
                        return self.raw_bytes
                """),
            facts_for("repro/use.py", """\
                def deadline(cfg):
                    wait_s = cfg.capacity
                    return wait_s
                """),
        ])
        violations = check_units(graph)
        assert [v.rule for v in violations] == ["RPR101"]
        assert Path(violations[0].path).name == "use.py"

    def test_ambiguous_homonyms_stay_silent(self):
        graph = build_graph([
            facts_for("repro/a.py", """\
                def measure():
                    return CAPACITY_BYTES
                """),
            facts_for("repro/b.py", """\
                def measure():
                    return TIMEOUT_S
                """),
            facts_for("repro/use.py", """\
                def go(obj):
                    wait_s = obj.measure()
                    return wait_s
                """),
        ])
        assert check_units(graph) == []


class TestStreamOwnership:
    POLICY = StreamPolicy(owners={"pump": ("repro.owner",)})

    def test_unregistered_stream_on_stream_receiver_flagged(self):
        graph = build_graph([facts_for("repro/x.py", """\
            def go(streams):
                return streams.get("mystery")
            """)])
        violations = check_streams(graph, self.POLICY)
        assert [v.rule for v in violations] == ["RPR102"]
        assert "not in the ownership registry" in violations[0].message

    def test_plain_dict_get_is_not_a_stream_use(self):
        graph = build_graph([facts_for("repro/x.py", """\
            def go(options):
                return options.get("color")
            """)])
        assert check_streams(graph, self.POLICY) == []

    def test_registered_stream_on_renamed_receiver_still_checked(self):
        graph = build_graph([facts_for("repro/x.py", """\
            def go(rng_source):
                return rng_source.get("pump")
            """)])
        violations = check_streams(graph, self.POLICY)
        assert [v.rule for v in violations] == ["RPR102"]
        assert "repro.owner" in violations[0].message


# --------------------------------------------------------------------- #
# Incremental cache
# --------------------------------------------------------------------- #
def _write_tree(root: Path) -> None:
    (root / "repro" / "core").mkdir(parents=True)
    (root / "repro" / "reliability").mkdir(parents=True)
    (root / "repro" / "config.py").write_text(textwrap.dedent("""\
        class SystemConfig:
            duration_s: float
            orphan_knob: float
        """), encoding="utf-8")
    (root / "repro" / "reliability" / "simulation.py").write_text(
        "def run_fast(config):\n    return config.duration_s\n",
        encoding="utf-8")
    (root / "repro" / "core" / "farm.py").write_text(
        "def run_process(config):\n    return config.duration_s\n",
        encoding="utf-8")


class TestIncrementalCache:
    def test_cold_and_warm_runs_emit_identical_findings(self, tmp_path):
        tree = tmp_path / "src"
        _write_tree(tree)
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([tree], roots=[tree],
                             cache=AnalysisCache(cache_dir))
        warm = analyze_paths([tree], roots=[tree],
                             cache=AnalysisCache(cache_dir))
        assert cold.violations == warm.violations != []
        assert cold.errors == warm.errors == []
        assert warm.stats["cache_hits"] == warm.stats["files"] == 3
        assert cold.stats["cache_hits"] == 0

    def test_analyzer_fingerprint_invalidates_entries(self, tmp_path):
        cache = AnalysisCache(tmp_path, fingerprint="v1")
        cache.store("f.py", source_digest("x = 1\n"), None, [])
        cache.save()
        stale = AnalysisCache(tmp_path, fingerprint="v2")
        assert stale.lookup("f.py", source_digest("x = 1\n")) is None

    def test_changed_only_reports_only_modified_files(self, tmp_path):
        tree = tmp_path / "src"
        _write_tree(tree)
        cache_dir = tmp_path / "cache"
        analyze_paths([tree], roots=[tree],
                      cache=AnalysisCache(cache_dir))
        victim = tree / "repro" / "core" / "farm.py"
        victim.write_text(
            "def run_process(config, duration_s=9.0):\n"
            "    return (config.duration_s, duration_s)\n",
            encoding="utf-8")
        result = analyze_paths([tree], roots=[tree],
                               cache=AnalysisCache(cache_dir))
        assert result.changed_paths == {str(victim)}
        changed = restrict_to_changed(result)
        assert changed and all(v.path == str(victim) for v in changed)
        assert any(v.rule == "RPR104" for v in changed)
        # the full result still carries the unchanged files' findings
        assert len(result.violations) > len(changed)


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
class TestBaseline:
    def test_fingerprint_is_line_independent(self):
        a = Violation("src/x.py", 10, 0, "RPR101", "msg")
        b = Violation("src/x.py", 99, 4, "RPR101", "msg")
        c = Violation("src/x.py", 10, 0, "RPR101", "other msg")
        assert violation_fingerprint(a) == violation_fingerprint(b)
        assert violation_fingerprint(a) != violation_fingerprint(c)

    def test_roundtrip_suppresses_recorded_findings(self, tmp_path):
        known = Violation("src/x.py", 10, 0, "RPR103", "field unread")
        fresh = Violation("src/y.py", 2, 0, "RPR102", "stray stream")
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(render_baseline([known]),
                                 encoding="utf-8")
        accepted = load_baseline(baseline_file)
        remaining, matched = apply_baseline([known, fresh], accepted)
        assert remaining == [fresh]
        assert matched == 1


# --------------------------------------------------------------------- #
# Internal-error containment
# --------------------------------------------------------------------- #
class TestInternalErrors:
    def test_analyzer_crash_is_reported_not_raised(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "fine.py").write_text("X = 1\n", encoding="utf-8")
        bomb = tree / "bomb.py"
        bomb.write_text("x = " + "+".join(["1"] * 30000) + "\n",
                        encoding="utf-8")
        result = analyze_paths([tree], roots=[tree])
        assert [e.path for e in result.errors] == [str(bomb)]
        assert "RecursionError" in result.errors[0].message
        assert result.violations == []   # fine.py still analyzed clean
