"""Tests for mixed redundancy schemes (repro.redundancy.composite)."""

import itertools

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.redundancy import (MIRROR_2, MIRROR_3, RedundancyGroup,
                              is_threshold_scheme)
from repro.redundancy.composite import (MirroredParity, exhaustive_tolerance,
                                        pattern_is_lost, survival_fraction)
from repro.units import GB, TB


@pytest.fixture
def mp():
    return MirroredParity(4)


class TestAlgebra:
    def test_geometry(self, mp):
        assert mp.n == 10
        assert mp.storage_efficiency == pytest.approx(0.4)
        assert mp.stretch == pytest.approx(2.5)
        assert mp.block_bytes(10 * GB) == 2.5 * GB

    def test_position_mapping(self, mp):
        assert mp.position_of(0) == (0, 0)
        assert mp.position_of(4) == (0, 4)      # copy 0 parity
        assert mp.position_of(7) == (1, 2)
        with pytest.raises(ValueError):
            mp.position_of(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            MirroredParity(0)

    def test_codec_is_stripe_xor(self, mp):
        codec = mp.make_codec()
        data = np.arange(16, dtype=np.uint8).reshape(4, 4)
        blocks = codec.encode(data)
        assert blocks.shape == (5, 4)

    def test_not_threshold(self, mp):
        assert not is_threshold_scheme(mp)
        assert is_threshold_scheme(MIRROR_2)


class TestSurvivalPredicate:
    def test_any_three_losses_survive(self, mp):
        for pattern in itertools.combinations(range(10), 3):
            assert not mp.is_lost(set(pattern)), pattern

    def test_paired_four_losses_fatal(self, mp):
        # both copies of stripe indexes 1 and 3
        assert mp.is_lost({1, 6, 3, 8})

    def test_unpaired_four_losses_survive(self, mp):
        # one whole mirror copy minus one block: all indexes single-dead
        assert not mp.is_lost({0, 1, 2, 3})

    def test_whole_copy_lost_survives(self, mp):
        """An entire mirror (5 blocks) dying leaves the other copy intact."""
        assert not mp.is_lost({0, 1, 2, 3, 4})

    def test_exhaustive_tolerance_matches_declared(self, mp):
        assert exhaustive_tolerance(mp) == mp.tolerance == 3

    def test_exhaustive_tolerance_threshold_schemes(self):
        assert exhaustive_tolerance(MIRROR_2) == 1
        assert exhaustive_tolerance(MIRROR_3) == 2

    def test_survival_fractions(self, mp):
        assert survival_fraction(mp, 3) == 1.0
        # fatal 4-patterns = choose 2 of the 5 stripe indexes fully dead
        assert survival_fraction(mp, 4) == pytest.approx(200 / 210)
        assert survival_fraction(mp, 11) == 0.0
        assert survival_fraction(MIRROR_2, 2) == 0.0

    def test_survival_fraction_validation(self, mp):
        with pytest.raises(ValueError):
            survival_fraction(mp, -1)

    def test_pattern_is_lost_threshold_path(self):
        assert pattern_is_lost(MIRROR_2, {0, 1})
        assert not pattern_is_lost(MIRROR_2, {1})


class TestGroupIntegration:
    def test_group_uses_set_based_predicate(self, mp):
        group = RedundancyGroup(grp_id=0, scheme=mp, user_bytes=10 * GB,
                                disks=list(range(10)))
        # three failures, including a fully-dead stripe index: not lost
        group.fail_block(2, 1.0)
        group.fail_block(7, 2.0)      # both copies of index 2
        group.fail_block(0, 3.0)
        assert not group.lost
        # second fully-dead index -> lost
        group.fail_block(5, 4.0)      # pairs with block 0 (index 0)
        assert group.lost and group.loss_time == 4.0

    def test_object_engine_lifetime_runs(self, mp):
        from repro.core import simulate_run
        cfg = SystemConfig(total_user_bytes=10 * TB,
                           group_user_bytes=10 * GB, scheme=mp)
        stats = simulate_run(cfg, seed=1).stats
        assert stats.rebuilds_completed >= 0   # runs to completion

    def test_fast_engine_rejects(self, mp):
        from repro.reliability import ReliabilitySimulation
        cfg = SystemConfig(total_user_bytes=10 * TB,
                           group_user_bytes=10 * GB, scheme=mp)
        with pytest.raises(NotImplementedError, match="threshold-only"):
            ReliabilitySimulation(cfg, seed=0)


class TestPropertyBased:
    """Hypothesis checks of the survival predicate's structure."""

    from hypothesis import given, settings, strategies as st

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_is_lost_monotone_in_failures(self, m, data):
        """Adding a failure can never resurrect a lost group."""
        from hypothesis import strategies as st
        mp = MirroredParity(m)
        failed = data.draw(st.sets(st.integers(0, mp.n - 1),
                                   max_size=mp.n))
        if mp.is_lost(failed):
            extra = data.draw(st.integers(0, mp.n - 1))
            assert mp.is_lost(failed | {extra})

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_is_lost_matches_bruteforce(self, m, data):
        """Cross-check against an independent statement of the rule:
        lost iff at least two stripe indexes have both copies failed."""
        from hypothesis import strategies as st
        mp = MirroredParity(m)
        failed = data.draw(st.sets(st.integers(0, mp.n - 1),
                                   max_size=mp.n))
        # index idx is dead iff both its reps (idx and idx+m+1) failed
        dead_indexes = sum(
            1 for idx in range(m + 1)
            if idx in failed and (idx + m + 1) in failed)
        assert mp.is_lost(failed) == (dead_indexes >= 2)

    @given(st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_whole_mirror_always_survivable(self, m):
        """Losing one entire copy (m+1 blocks) never loses data."""
        mp = MirroredParity(m)
        assert not mp.is_lost(set(range(m + 1)))
        assert not mp.is_lost(set(range(m + 1, 2 * (m + 1))))
