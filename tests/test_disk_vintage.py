"""Tests for Disk and DiskVintage (repro.disks.disk / vintage)."""

import pytest

from repro.disks import PAPER_VINTAGE, Disk, DiskState, DiskVintage
from repro.units import GB, MB, TB, YEAR


class TestVintage:
    def test_paper_defaults(self):
        """Table 2 geometry: 1 TB drives, 80 MB/s, 20% for recovery."""
        v = PAPER_VINTAGE
        assert v.capacity_bytes == 1 * TB
        assert v.bandwidth_bps == 80 * MB
        assert v.recovery_bandwidth_bps == pytest.approx(16 * MB)
        assert v.eodl_seconds == 6 * YEAR

    def test_rate_multiplier_copy(self):
        doubled = PAPER_VINTAGE.with_rate_multiplier(2.0)
        assert doubled.failure_model.rate_multiplier == 2.0
        assert PAPER_VINTAGE.failure_model.rate_multiplier == 1.0

    def test_with_recovery_bandwidth(self):
        v = PAPER_VINTAGE.with_recovery_bandwidth(40 * MB)
        assert v.recovery_bandwidth_bps == pytest.approx(40 * MB)
        assert v.recovery_bandwidth_fraction == pytest.approx(0.5)

    def test_recovery_bandwidth_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            PAPER_VINTAGE.with_recovery_bandwidth(100 * MB)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskVintage(capacity_bytes=0)
        with pytest.raises(ValueError):
            DiskVintage(recovery_bandwidth_fraction=0.0)
        with pytest.raises(ValueError):
            DiskVintage(weight=-1.0)


class TestDiskState:
    def test_new_disk_online_and_empty(self):
        d = Disk(disk_id=0)
        assert d.online and d.used_bytes == 0 and d.utilization == 0

    def test_fail_transition(self):
        d = Disk(disk_id=0)
        d.fail(now=100.0)
        assert d.state is DiskState.FAILED
        assert d.failed_at == 100.0 and not d.online

    def test_double_fail_rejected(self):
        d = Disk(disk_id=0)
        d.fail(1.0)
        with pytest.raises(ValueError):
            d.fail(2.0)

    def test_retire(self):
        d = Disk(disk_id=0)
        d.retire()
        assert d.state is DiskState.RETIRED
        with pytest.raises(ValueError):
            d.retire()

    def test_age(self):
        d = Disk(disk_id=0, deployed_at=50.0)
        assert d.age(150.0) == 100.0
        with pytest.raises(ValueError):
            d.age(10.0)


class TestAllocation:
    def test_allocate_and_release(self):
        d = Disk(disk_id=0)
        d.allocate(400 * GB)
        assert d.utilization == pytest.approx(0.4)
        d.release(100 * GB)
        assert d.used_bytes == pytest.approx(300 * GB)

    def test_over_capacity_rejected(self):
        d = Disk(disk_id=0)
        with pytest.raises(ValueError):
            d.allocate(2 * TB)

    def test_initial_placement_respects_spare_reserve(self):
        """Paper: ~4% of capacity reserved at initialization for recovered
        data — initial placement must not dip into it, recovery may."""
        d = Disk(disk_id=0, spare_reserve_fraction=0.04)
        assert not d.can_accept(0.97 * TB, initial_placement=True)
        assert d.can_accept(0.97 * TB, initial_placement=False)

    def test_failed_disk_accepts_nothing(self):
        d = Disk(disk_id=0)
        d.fail(1.0)
        assert not d.can_accept(1.0)

    def test_release_more_than_used_rejected(self):
        d = Disk(disk_id=0)
        d.allocate(10 * GB)
        with pytest.raises(ValueError):
            d.release(20 * GB)

    def test_negative_allocate_rejected(self):
        with pytest.raises(ValueError):
            Disk(disk_id=0).allocate(-5.0)
