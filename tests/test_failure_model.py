"""Tests for the bathtub failure model (repro.disks.failure)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.disks import ELERATH_TABLE1, BathtubFailureModel, RatePeriod
from repro.units import HOUR, MONTH, YEAR


@pytest.fixture(scope="module")
def model():
    return BathtubFailureModel()


class TestTable1:
    def test_paper_rates(self):
        assert [p.pct_per_1000h for p in ELERATH_TABLE1] == \
            [0.50, 0.35, 0.25, 0.20]

    def test_infant_mortality_decreasing(self):
        rates = [p.pct_per_1000h for p in ELERATH_TABLE1]
        assert rates == sorted(rates, reverse=True)

    def test_about_ten_percent_fail_in_six_years(self, model):
        """The paper's §3.6 statement that pins the Table 1 magnitudes."""
        frac = 1.0 - float(model.survival(6 * YEAR))
        assert 0.08 < frac < 0.14

    def test_hazard_unit_conversion(self):
        p = RatePeriod(0.0, float("inf"), 0.2)
        # 0.2% per 1000 h = 0.002 / (1000*3600) per second
        assert p.hazard_per_second == pytest.approx(0.002 / (1000 * HOUR))


class TestHazardFunction:
    def test_hazard_steps_at_boundaries(self, model):
        eps = 1.0
        assert model.hazard(3 * MONTH - eps) > model.hazard(3 * MONTH + eps)
        assert model.hazard(0.0) == ELERATH_TABLE1[0].hazard_per_second

    def test_hazard_constant_beyond_last_boundary(self, model):
        assert model.hazard(2 * YEAR) == model.hazard(20 * YEAR)

    def test_negative_age_rejected(self, model):
        with pytest.raises(ValueError):
            model.hazard(-1.0)
        with pytest.raises(ValueError):
            model.cumulative_hazard(-1.0)

    @given(st.floats(0, 10 * YEAR), st.floats(0, 10 * YEAR))
    @settings(max_examples=50)
    def test_cumulative_hazard_monotone(self, a, b):
        m = BathtubFailureModel()
        lo, hi = sorted((a, b))
        assert m.cumulative_hazard(hi) >= m.cumulative_hazard(lo)

    def test_cumulative_hazard_closed_form(self, model):
        """H at a boundary equals the sum of rate*length segments."""
        expected = (ELERATH_TABLE1[0].hazard_per_second * 3 * MONTH
                    + ELERATH_TABLE1[1].hazard_per_second * 3 * MONTH)
        assert model.cumulative_hazard(6 * MONTH) == pytest.approx(expected)

    def test_survival_at_zero_is_one(self, model):
        assert model.survival(0.0) == 1.0


class TestSampling:
    def test_empirical_distribution_matches_survival(self, model):
        rng = np.random.default_rng(42)
        ages = model.sample_failure_age(rng, 100_000)
        for t in (1 * YEAR, 3 * YEAR, 6 * YEAR):
            expected = 1.0 - float(model.survival(t))
            assert (ages < t).mean() == pytest.approx(expected, abs=0.01)

    def test_conditional_sampling_respects_memory(self, model):
        """A drive that survived 1 year draws only ages > 1 year, with the
        right conditional tail probability."""
        rng = np.random.default_rng(7)
        current = 1 * YEAR
        ages = model.sample_failure_age(rng, 50_000, current_age=current)
        assert (ages >= current).all()
        p_cond = float(model.survival(3 * YEAR) / model.survival(current))
        assert (ages > 3 * YEAR).mean() == pytest.approx(p_cond, abs=0.01)

    def test_sampling_deterministic_per_seed(self, model):
        a = model.sample_failure_age(np.random.default_rng(1), 100)
        b = model.sample_failure_age(np.random.default_rng(1), 100)
        assert np.array_equal(a, b)

    def test_vector_current_age(self, model):
        rng = np.random.default_rng(3)
        current = np.array([0.0, YEAR, 2 * YEAR])
        ages = model.sample_failure_age(rng, 3, current_age=current)
        assert (ages >= current).all()


class TestRateMultiplier:
    def test_scaled_doubles_hazard(self, model):
        double = model.scaled(2.0)
        assert double.hazard(0.0) == 2 * model.hazard(0.0)
        assert double.cumulative_hazard(YEAR) == \
            pytest.approx(2 * model.cumulative_hazard(YEAR))

    def test_scaled_composes(self, model):
        assert model.scaled(2.0).scaled(3.0).rate_multiplier == 6.0

    def test_doubled_rates_fail_roughly_twice_as_often(self, model):
        """Figure 8(b)'s input: cumulative failures roughly double (slightly
        less, because survival is convex)."""
        f1 = 1.0 - float(model.survival(6 * YEAR))
        f2 = 1.0 - float(model.scaled(2.0).survival(6 * YEAR))
        assert 1.8 < f2 / f1 < 2.0

    def test_invalid_multiplier(self, model):
        with pytest.raises(ValueError):
            model.scaled(0.0)


class TestValidation:
    def test_periods_must_start_at_zero(self):
        with pytest.raises(ValueError):
            BathtubFailureModel((RatePeriod(1.0, float("inf"), 0.2),))

    def test_periods_must_be_contiguous(self):
        with pytest.raises(ValueError):
            BathtubFailureModel((RatePeriod(0.0, 3.0, 0.5),
                                 RatePeriod(4.0, float("inf"), 0.2)))

    def test_last_period_unbounded(self):
        with pytest.raises(ValueError):
            BathtubFailureModel((RatePeriod(0.0, 3.0, 0.5),))

    def test_mean_rate_per_year_helper(self, model):
        assert model.mean_rate_per_year(6.0) == pytest.approx(
            (1.0 - float(model.survival(6 * YEAR))) / 6.0)
