"""Golden-value regression pins.

Both engines are deterministic in (config, seed); these tests pin exact
outcomes for fixed seeds so *any* behavioural change — a reordered RNG
draw, a different placement hash, an altered event tie-break — fails
loudly instead of silently shifting the published numbers.

If a change is intentional (e.g. a fixed bug changes trajectories),
re-pin by updating the constants and say so in the commit message.
"""

import math

from repro.config import SystemConfig
from repro.core import simulate_run
from repro.placement import RandomPlacement, RushPlacement
from repro.reliability import ReliabilitySimulation
from repro.sim import stable_hash64
from repro.sim.rng import RandomStreams
from repro.units import GB, TB

# (disk_failures, rebuilds_started, rebuilds_completed, groups_lost)
PIN_FAST = (7, 275, 275, 0)
PIN_OBJECT = (7, 280, 280, 0)
PIN_RUSH = [31, 613, 813]
PIN_RANDOM = [556, 379, 284]
PIN_HASH = 5037368365621519589

# Rare-event machinery: first uniform from each dedicated rare-* stream,
# and one tilted trajectory (tilt = ln 3) on the same config/seed as the
# untilted pins above.  Weighted golden values follow the same re-pin
# policy (docs/RARE_EVENTS.md): update only for intentional changes.
PIN_RARE_STREAMS = {
    "split-resample": 0.4148786529196775,
    "clone-failures": 0.9201607633499662,
}

# Failure-domain injector streams (repro.faults.domains).  Pinned for
# the same reason as the rare-* family: arming a domain injector must
# never perturb — and never be perturbed by — the base simulation
# streams, so each one owns a named stream whose first draw is fixed.
PIN_DOMAIN_STREAMS = {
    "faults-domain-bursts": 0.18235955024884265,
    "faults-domain-outages": 0.8985747888281354,
    "faults-domain-stragglers": 0.630501410220294,
}
PIN_TILTED_FAST = (28, 1290, 1290, 0)
PIN_TILTED_LOG_WEIGHT = -10.469417395163475

# Bulk-lifetime engine (repro.reliability.bulk): first uniform from each
# dedicated bulk-* stream, plus one full trajectory per recovery mode on
# the same config/seed as the DES pins.  The window sums are exact
# multiples of rebuild block-times, so equality is safe to pin.
PIN_BULK_STREAMS = {
    "failures": 0.7584344968239647,
    "placement": 0.27301242389873837,
    "windows": 0.16538516375736811,
}
PIN_BULK_FARM = (9, 346, 346, 0)
PIN_BULK_FARM_WINDOWS = (226630.0, 655.0)       # (total, max) seconds
PIN_BULK_TRAD = (9, 346, 346, 0)
PIN_BULK_TRAD_WINDOWS = (4211630.0, 29405.0)


def cfg():
    return SystemConfig(total_user_bytes=20 * TB, group_user_bytes=10 * GB)


class TestPins:
    def test_fast_engine_pin(self):
        stats = ReliabilitySimulation(cfg(), seed=123).run()
        snapshot = (stats.disk_failures, stats.rebuilds_started,
                    stats.rebuilds_completed, stats.groups_lost)
        assert snapshot == PIN_FAST, (
            f"fast-engine trajectory changed: {snapshot}; re-pin only if "
            f"the behaviour change is intentional")

    def test_object_engine_pin(self):
        stats = simulate_run(cfg(), seed=123).stats
        snapshot = (stats.disk_failures, stats.rebuilds_started,
                    stats.rebuilds_completed, stats.groups_lost)
        assert snapshot == PIN_OBJECT, (
            f"object-engine trajectory changed: {snapshot}")

    def test_rush_placement_pin(self):
        assert RushPlacement(1000, seed=7).place_group(12345, 3) == PIN_RUSH

    def test_random_placement_pin(self):
        assert RandomPlacement(1000, seed=7).place_group(12345, 3) == \
            PIN_RANDOM

    def test_stable_hash_pin(self):
        assert stable_hash64("golden", 1) == PIN_HASH

    def test_engines_share_failure_stream(self):
        """The two pins above share disk_failures == 7: same RNG streams."""
        assert PIN_FAST[0] == PIN_OBJECT[0]

    def test_rare_stream_pins(self):
        """The rare-* streams are a separate, pinned RNG family.

        These streams feed only the rare-event estimators; pinning their
        first draws guarantees adding one never perturbs — and is never
        perturbed by — the ordinary simulation streams.
        """
        for kind, expected in PIN_RARE_STREAMS.items():
            assert float(RandomStreams(123).rare(kind).random()) == expected

    def test_domain_stream_pins(self):
        """The faults-domain-* streams are their own pinned family."""
        for name, expected in PIN_DOMAIN_STREAMS.items():
            assert float(RandomStreams(123).get(name).random()) == expected

    def test_tilted_trajectory_pin(self):
        """One importance-sampled trajectory, pinned with its LR weight.

        The tilted run consumes the same 'disk-failures' uniforms as the
        untilted pin, inverted through the scaled hazard — so this pin
        breaks if either the tilting transform or the base stream moves.
        """
        from repro.reliability.rare import TiltedFailureDraw
        draw = TiltedFailureDraw(cfg().vintage.failure_model, math.log(3.0))
        stats = ReliabilitySimulation(cfg(), seed=123,
                                      failure_draw=draw).run()
        snapshot = (stats.disk_failures, stats.rebuilds_started,
                    stats.rebuilds_completed, stats.groups_lost)
        assert snapshot == PIN_TILTED_FAST, (
            f"tilted trajectory changed: {snapshot}")
        assert stats.log_weight == PIN_TILTED_LOG_WEIGHT

    def test_bulk_stream_pins(self):
        """The bulk-* streams are their own pinned RNG family.

        The bulk engine must never perturb — or be perturbed by — a DES
        run with the same seed, so its three streams are pinned exactly
        like the rare-* and faults-domain-* families.
        """
        for kind, expected in PIN_BULK_STREAMS.items():
            assert float(RandomStreams(123).bulk(kind).random()) == expected

    def test_bulk_farm_trajectory_pin(self):
        from repro.reliability.bulk import run_bulk_lifetime
        stats = run_bulk_lifetime(cfg(), seed=123)
        snapshot = (stats.disk_failures, stats.rebuilds_started,
                    stats.rebuilds_completed, stats.groups_lost)
        assert snapshot == PIN_BULK_FARM, (
            f"bulk FARM trajectory changed: {snapshot}; re-pin only if "
            f"the behaviour change is intentional")
        assert (stats.window_total, stats.window_max) == \
            PIN_BULK_FARM_WINDOWS

    def test_bulk_traditional_trajectory_pin(self):
        from repro.reliability.bulk import run_bulk_lifetime
        stats = run_bulk_lifetime(cfg().with_(use_farm=False), seed=123)
        snapshot = (stats.disk_failures, stats.rebuilds_started,
                    stats.rebuilds_completed, stats.groups_lost)
        assert snapshot == PIN_BULK_TRAD, (
            f"bulk traditional trajectory changed: {snapshot}")
        assert (stats.window_total, stats.window_max) == \
            PIN_BULK_TRAD_WINDOWS

    def test_bulk_shares_failure_count_law_not_stream(self):
        """bulk-failures is a *different* stream from disk-failures: the
        same seed gives a different (but same-law) failure count."""
        assert PIN_BULK_FARM[0] != PIN_FAST[0]

    def test_zero_tilt_reproduces_untilted_pin(self):
        """tilt = 0 must be *exactly* the naive run (same golden pin)."""
        from repro.reliability.rare import TiltedFailureDraw
        draw = TiltedFailureDraw(cfg().vintage.failure_model, 0.0)
        stats = ReliabilitySimulation(cfg(), seed=123,
                                      failure_draw=draw).run()
        snapshot = (stats.disk_failures, stats.rebuilds_started,
                    stats.rebuilds_completed, stats.groups_lost)
        assert snapshot == PIN_FAST
        assert stats.log_weight == 0.0
