"""Tests for sensitivity analysis (repro.reliability.sensitivity)."""

import pytest

from repro.config import PAPER_BASE
from repro.reliability.sensitivity import (PARAMETERS, elasticity,
                                           render_tornado, tornado)


class TestElasticity:
    def test_failure_rate_elasticity_is_about_two_for_mirroring(self):
        """Loss needs two overlapping failures: P ~ rate^2, elasticity ~2
        (the paper's Figure 8(b): doubling rates more than doubles loss)."""
        row = elasticity(PAPER_BASE, "failure_rate")
        assert row.elasticity == pytest.approx(2.0, abs=0.25)

    def test_recovery_bandwidth_elasticity_negative(self):
        """More bandwidth, shorter windows, less loss."""
        row = elasticity(PAPER_BASE, "recovery_bandwidth_bps")
        assert row.elasticity < 0

    def test_bandwidth_matters_more_without_farm(self):
        """The paper's Figure 5 as one number: the *absolute* loss change
        per unit of extra bandwidth is an order of magnitude larger for
        the traditional scheme (FARM's loss is already tiny, so the same
        relative elasticity moves far less probability mass)."""
        farm = elasticity(PAPER_BASE, "recovery_bandwidth_bps")
        trad = elasticity(PAPER_BASE.with_(use_farm=False),
                          "recovery_bandwidth_bps")
        assert abs(trad.elasticity) == pytest.approx(1.0, abs=0.1)
        assert abs(trad.dp_dlnx) > 10 * abs(farm.dp_dlnx)

    def test_group_size_neutral_under_farm(self):
        """Figure 3: group size has little impact with FARM (zero detection
        latency makes it exactly nil)."""
        row = elasticity(PAPER_BASE.with_(detection_latency=0.0),
                         "group_user_bytes")
        assert abs(row.elasticity) < 0.05

    def test_group_size_negative_without_farm(self):
        """Without FARM, smaller groups are worse, so the elasticity with
        respect to group size is negative (bigger groups -> less loss)."""
        row = elasticity(PAPER_BASE.with_(use_farm=False,
                                          detection_latency=0.0),
                         "group_user_bytes")
        assert row.elasticity < -0.5

    def test_system_scale_elasticity_about_one(self):
        """Figure 8(a): P(loss) linear in capacity."""
        row = elasticity(PAPER_BASE, "total_user_bytes")
        assert row.elasticity == pytest.approx(1.0, abs=0.15)

    def test_zero_detection_latency_handled(self):
        row = elasticity(PAPER_BASE.with_(detection_latency=0.0),
                         "detection_latency")
        assert row.base_value == 1.0       # re-anchored to one second

    def test_validation(self):
        with pytest.raises(ValueError):
            elasticity(PAPER_BASE, "no_such_parameter")
        with pytest.raises(ValueError):
            elasticity(PAPER_BASE, "failure_rate", step=1.5)

    def test_bracket_values_consistent(self):
        row = elasticity(PAPER_BASE, "failure_rate")
        assert row.p_minus < row.p_base < row.p_plus


class TestTornado:
    def test_covers_all_parameters_sorted(self):
        rows = tornado(PAPER_BASE)
        assert {r.parameter for r in rows} == set(PARAMETERS)
        mags = [abs(r.elasticity) for r in rows]
        assert mags == sorted(mags, reverse=True)

    def test_failure_rate_dominates_for_farm(self):
        """The paper's conclusion: 'keeping disk failure rates low is a
        critical factor' — it tops the tornado."""
        rows = tornado(PAPER_BASE)
        assert rows[0].parameter == "failure_rate"

    def test_render(self):
        text = render_tornado(tornado(PAPER_BASE))
        assert "failure_rate" in text
        assert "+" in text and "-" in text

    def test_render_empty(self):
        assert "no parameters" in render_tornado([])
