"""Tests for batch replacement (repro.cluster.replacement)."""

import numpy as np
import pytest

from repro.cluster import BatchReplacementPolicy, plan_migration


class TestPolicy:
    def test_triggers_at_threshold(self):
        pol = BatchReplacementPolicy(threshold=0.04)
        assert not pol.should_trigger(39, 1000)
        assert pol.should_trigger(40, 1000)

    def test_batch_restores_population(self):
        pol = BatchReplacementPolicy(threshold=0.02)
        assert pol.batch_size(23) == 23

    def test_non_restoring_policy(self):
        pol = BatchReplacementPolicy(threshold=0.02,
                                     restore_population=False)
        assert pol.batch_size(23) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchReplacementPolicy(threshold=0.0)
        with pytest.raises(ValueError):
            BatchReplacementPolicy(threshold=0.5, weight=0.0)


class TestMigrationPlan:
    def _setup(self, n_blocks=50_000, n_disks=1000, n_new=100, seed=0):
        rng = np.random.default_rng(seed)
        block_disks = rng.integers(0, n_disks, n_blocks)
        live = np.ones(n_disks + n_new, dtype=bool)
        new = np.arange(n_disks, n_disks + n_new)
        live[new] = True
        return rng, block_disks, live, new

    def test_fair_share_moves(self):
        rng, blocks, live, new = self._setup()
        out = plan_migration(rng, blocks, live, new)
        moved = (out != blocks).mean()
        assert moved == pytest.approx(100 / 1100, abs=0.01)

    def test_moves_land_on_new_disks(self):
        rng, blocks, live, new = self._setup()
        out = plan_migration(rng, blocks, live, new)
        assert np.isin(out[out != blocks], new).all()

    def test_dead_disk_blocks_not_moved(self):
        rng, blocks, live, new = self._setup()
        live[:500] = False        # half the old disks are dead
        out = plan_migration(rng, blocks, live, new)
        dead_blocks = ~live[blocks]
        assert (out[dead_blocks] == blocks[dead_blocks]).all()

    def test_empty_batch_is_identity(self):
        rng, blocks, live, _ = self._setup()
        out = plan_migration(rng, blocks, live, np.array([], dtype=int))
        assert np.array_equal(out, blocks)

    def test_new_disks_end_up_balanced(self):
        rng, blocks, live, new = self._setup(n_blocks=200_000)
        out = plan_migration(rng, blocks, live, new)
        new_loads = np.bincount(out, minlength=1100)[1000:]
        # each new disk should get roughly blocks/(live+new) ~ 182
        assert new_loads.mean() == pytest.approx(200_000 / 1100, rel=0.1)
        assert new_loads.std() < 0.35 * new_loads.mean()
