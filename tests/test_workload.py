"""Tests for the workload models (repro.cluster.workload)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ConstantWorkload, DiurnalWorkload
from repro.units import DAY, HOUR, MB


class TestConstantWorkload:
    def test_zero_load_is_exact_transfer(self):
        w = ConstantWorkload(0.0)
        assert w.time_to_transfer(16e6 * 100, 16 * MB, start=0.0) == 100.0

    def test_half_load_doubles_time(self):
        w = ConstantWorkload(0.5)
        assert w.time_to_transfer(16e6, 16 * MB, 0.0) == pytest.approx(2.0)

    def test_zero_bytes(self):
        assert ConstantWorkload(0.3).time_to_transfer(0.0, 1.0, 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantWorkload(1.0)


class TestDiurnalProfile:
    def test_load_peaks_at_peak_time(self):
        w = DiurnalWorkload(peak_load=0.7, trough_load=0.1,
                            peak_time=14 * HOUR)
        assert w.load(14 * HOUR) == pytest.approx(0.7)
        assert w.load(2 * HOUR) == pytest.approx(0.1)

    def test_load_bounded(self):
        w = DiurnalWorkload(peak_load=0.8, trough_load=0.2)
        loads = [w.load(t * 600.0) for t in range(300)]
        assert min(loads) >= 0.2 - 1e-9 and max(loads) <= 0.8 + 1e-9

    def test_daily_periodicity(self):
        w = DiurnalWorkload()
        assert w.load(3 * HOUR) == pytest.approx(w.load(3 * HOUR + DAY))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalWorkload(peak_load=0.2, trough_load=0.5)
        with pytest.raises(ValueError):
            DiurnalWorkload(peak_load=1.0)


class TestDiurnalTransferTimes:
    def test_transfer_slower_than_full_rate(self):
        w = DiurnalWorkload(peak_load=0.7, trough_load=0.1)
        nbytes = 16e6 * 3600      # one hour at full rate
        dt = w.time_to_transfer(nbytes, 16 * MB, start=12 * HOUR)
        assert dt > 3600.0

    def test_transfer_bounded_by_trough_and_peak_rates(self):
        w = DiurnalWorkload(peak_load=0.6, trough_load=0.2)
        nbytes = 16e6 * 1000
        dt = w.time_to_transfer(nbytes, 16 * MB, start=0.0)
        assert 1000 / 0.8 <= dt <= 1000 / 0.4 + 1

    def test_night_transfers_faster_than_peak(self):
        w = DiurnalWorkload(peak_load=0.7, trough_load=0.1,
                            peak_time=14 * HOUR)
        nbytes = 16e6 * 600
        night = w.time_to_transfer(nbytes, 16 * MB, start=2 * HOUR)
        peak = w.time_to_transfer(nbytes, 16 * MB, start=14 * HOUR)
        assert night < peak

    @given(st.floats(1e6, 1e12), st.floats(0, 2 * DAY))
    @settings(max_examples=30, deadline=None)
    def test_transferred_bytes_match_duration(self, nbytes, start):
        """Inverting the integral: integrating the available rate over the
        returned duration yields the requested bytes."""
        w = DiurnalWorkload(peak_load=0.7, trough_load=0.1)
        bw = 16 * MB
        dt = w.time_to_transfer(nbytes, bw, start)
        moved = (w._integral(start + dt) - w._integral(start)) * bw
        assert moved == pytest.approx(nbytes, rel=1e-5)

    def test_zero_bytes_zero_time(self):
        assert DiurnalWorkload().time_to_transfer(0.0, 16 * MB, 0.0) == 0.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            DiurnalWorkload().time_to_transfer(100.0, 0.0, 0.0)
