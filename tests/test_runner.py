"""Tests for the persistent-pool sweep runner (repro.reliability.runner)."""

import json

import pytest

from repro.config import SystemConfig
from repro.reliability import (MonteCarloResult, PointSpec, RunningMoments,
                               SweepRunner, estimate_p_loss, seed_schedule,
                               shutdown_pool, sweep)
from repro.reliability import runner as runner_mod
from repro.sim.rng import stable_hash64
from repro.units import GB, TB


def tiny():
    return SystemConfig(total_user_bytes=10 * TB, group_user_bytes=10 * GB)


def points():
    return [PointSpec("farm", tiny()),
            PointSpec("trad", tiny().with_(use_farm=False)),
            PointSpec("slow", tiny().with_(detection_latency=600.0))]


@pytest.fixture(autouse=True)
def _pool_cleanup():
    yield
    shutdown_pool()


class TestSeedSchedule:
    def test_matches_historical_schedule(self):
        """The parallel runner must use the exact per-run seeds the serial
        Monte-Carlo loop always used, or results silently change."""
        assert seed_schedule(7, 3) == [
            stable_hash64(7, "mc-run", i) % (2 ** 62) for i in range(3)]

    def test_same_for_every_point(self):
        a = seed_schedule(0, 4)
        assert a == seed_schedule(0, 4)
        assert a != seed_schedule(1, 4)


class TestRunningMoments:
    def test_matches_two_pass_statistics(self):
        xs = [3.0, 1.5, 4.25, 0.0, 2.5, 2.5]
        m = RunningMoments()
        for x in xs:
            m.add(x)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / len(xs)
        assert m.count == len(xs)
        assert m.mean == pytest.approx(mean)
        assert m.variance == pytest.approx(var)
        assert m.std == pytest.approx(var ** 0.5)

    def test_degenerate_counts(self):
        m = RunningMoments()
        assert m.variance == 0.0
        m.add(5.0)
        assert m.mean == 5.0 and m.variance == 0.0


class TestBitIdentity:
    """The tentpole guarantee: parallel == serial, bit for bit."""

    def test_parallel_aggregates_bit_identical(self):
        serial = SweepRunner(n_jobs=None).run_points(points(), n_runs=5,
                                                     base_seed=2)
        parallel = SweepRunner(n_jobs=2).run_points(points(), n_runs=5,
                                                    base_seed=2)
        for s, p in zip(serial, parallel):
            assert s.label == p.label
            sa, pa = s.aggregate, p.aggregate
            assert sa.losses == pa.losses
            assert sa.disk_failures == pa.disk_failures
            assert sa.groups_lost == pa.groups_lost
            # float fields: exact equality, not approx — the reorder
            # buffer folds in run-index order
            assert sa.window_total == pa.window_total
            assert sa.window_max == pa.window_max
            assert sa.bytes_lost == pa.bytes_lost
            assert sa.window_moments.mean == pa.window_moments.mean
            assert sa.window_moments.m2 == pa.window_moments.m2
            assert sa.failure_moments.m2 == pa.failure_moments.m2
            assert sa.events_fired == pa.events_fired

    def test_sweep_entrypoint_bit_identical(self):
        cfgs = {p.label: p.config for p in points()}
        serial = sweep(cfgs, n_runs=4, base_seed=1, n_jobs=None,
                       bench_path=None)
        parallel = sweep(cfgs, n_runs=4, base_seed=1, n_jobs=2,
                         bench_path=None)
        for label in cfgs:
            s, p = serial[label], parallel[label]
            assert s.losses == p.losses
            assert s.p_loss == p.p_loss
            assert s.mean_window == p.mean_window
            assert s.max_window == p.max_window
            assert s.disk_failures_total == p.disk_failures_total
            assert s.redirections_total == p.redirections_total

    def test_matches_per_point_estimates(self):
        """One sweep == independent estimate_p_loss calls per point."""
        cfgs = {p.label: p.config for p in points()}
        swept = sweep(cfgs, n_runs=3, base_seed=5, bench_path=None)
        for label, cfg in cfgs.items():
            solo = estimate_p_loss(cfg, n_runs=3, base_seed=5)
            assert swept[label].losses == solo.losses
            assert swept[label].mean_window == solo.mean_window
            assert swept[label].disk_failures_total == \
                solo.disk_failures_total


class TestStreamingAggregation:
    def test_run_stats_not_retained_by_default(self):
        [out] = SweepRunner().run_points([points()[0]], n_runs=4)
        assert out.run_stats == []
        assert out.aggregate.n_runs == 4

    def test_keep_run_stats_matches_aggregate(self):
        [out] = SweepRunner().run_points([points()[0]], n_runs=5,
                                         keep_run_stats=True)
        stats = out.run_stats
        assert len(stats) == 5
        agg = out.aggregate
        assert agg.losses == sum(1 for s in stats if s.any_loss)
        assert agg.disk_failures == sum(s.disk_failures for s in stats)
        assert agg.window_total == pytest.approx(
            sum(s.window_total for s in stats))
        assert agg.window_max == max(s.window_max for s in stats)
        assert agg.window_moments.count == 5

    def test_keep_run_stats_order_parallel(self):
        """Kept stats come back in run-index order even when parallel."""
        [ser] = SweepRunner(n_jobs=None).run_points(
            [points()[0]], n_runs=4, keep_run_stats=True)
        [par] = SweepRunner(n_jobs=2).run_points(
            [points()[0]], n_runs=4, keep_run_stats=True)
        assert [s.disk_failures for s in ser.run_stats] == \
            [s.disk_failures for s in par.run_stats]

    def test_mean_window_property(self):
        [out] = SweepRunner().run_points([points()[0]], n_runs=3)
        agg = out.aggregate
        if agg.rebuilds_completed:
            assert agg.mean_window == \
                agg.window_total / agg.rebuilds_completed


class TestBenchRecord:
    def test_record_schema(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        runner = SweepRunner(n_jobs=None, bench_path=path)
        runner.run_points(points(), n_runs=2, sweep_name="unit-test")
        [record] = runner_mod.read_bench_records(path)
        assert record["schema"] == runner_mod.BENCH_SCHEMA
        assert record["sweep"] == "unit-test"
        assert record["n_points"] == 3
        assert record["n_runs_per_point"] == 2
        assert record["total_runs"] == 6
        assert record["wall_time_s"] > 0
        assert record["events_fired"] > 0
        assert record["runs_per_s"] > 0
        assert len(record["points"]) == 3
        for pt in record["points"]:
            assert pt["n_runs"] == 2
            assert pt["events_fired"] > 0
            assert pt["run_seconds_total"] > 0
            assert pt["completed_at_s"] > 0

    def test_no_record_without_path(self):
        runner = SweepRunner(n_jobs=None, bench_path=None)
        runner.run_points(points()[:1], n_runs=2)
        assert runner.last_record is not None    # kept in memory regardless
        assert runner.bench_path is None

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PATH", str(tmp_path / "b.json"))
        assert runner_mod.default_bench_path() == tmp_path / "b.json"
        monkeypatch.setenv("REPRO_BENCH_PATH", "")
        assert runner_mod.default_bench_path() is None
        monkeypatch.delenv("REPRO_BENCH_PATH")
        assert runner_mod.default_bench_path() == \
            runner_mod.DEFAULT_BENCH_PATH


class TestBenchHistory:
    """The BENCH file is an append-only bounded history, not a single
    record: every sweep adds to it and regression guards diff against
    older entries, so overwriting would erase the baseline."""

    def test_appends_across_sweeps(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        runner = SweepRunner(n_jobs=None, bench_path=path)
        runner.run_points(points()[:1], n_runs=2, sweep_name="first")
        runner.run_points(points()[:1], n_runs=2, sweep_name="second")
        records = runner_mod.read_bench_records(path)
        assert [r["sweep"] for r in records] == ["first", "second"]

    def test_history_is_bounded(self, tmp_path):
        path = tmp_path / "b.json"
        for i in range(runner_mod.BENCH_HISTORY_LIMIT + 5):
            runner_mod.append_bench_record(
                path, {"schema": runner_mod.BENCH_SCHEMA, "i": i})
        records = runner_mod.read_bench_records(path)
        assert len(records) == runner_mod.BENCH_HISTORY_LIMIT
        assert records[-1]["i"] == runner_mod.BENCH_HISTORY_LIMIT + 4
        assert records[0]["i"] == 5            # oldest dropped first

    def test_absorbs_legacy_bare_record(self, tmp_path):
        """A pre-history file holding one bare v1 record becomes the
        first entry of the container instead of being clobbered."""
        path = tmp_path / "b.json"
        legacy = {"schema": runner_mod.BENCH_SCHEMA, "sweep": "old"}
        path.write_text(json.dumps(legacy))
        runner_mod.append_bench_record(
            path, {"schema": runner_mod.BENCH_SCHEMA, "sweep": "new"})
        records = runner_mod.read_bench_records(path)
        assert [r["sweep"] for r in records] == ["old", "new"]
        data = json.loads(path.read_text())
        assert data["schema"] == runner_mod.BENCH_LOG_SCHEMA

    def test_malformed_file_reads_empty(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{not json")
        assert runner_mod.read_bench_records(path) == []

    def test_latest_record_filters_by_sweep(self, tmp_path):
        path = tmp_path / "b.json"
        for name in ("a", "b", "a"):
            runner_mod.append_bench_record(
                path, {"schema": runner_mod.BENCH_SCHEMA, "sweep": name})
        latest = runner_mod.latest_bench_record(path, sweep="b")
        assert latest is not None and latest["sweep"] == "b"
        assert runner_mod.latest_bench_record(path)["sweep"] == "a"
        assert runner_mod.latest_bench_record(path, sweep="zzz") is None

    def test_run_id_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ID", "build-42")
        assert runner_mod.bench_run_id() == "build-42"
        monkeypatch.setenv("REPRO_BENCH_TIMESTAMP", "1234.5")
        assert runner_mod.bench_timestamp() == 1234.5

    def test_records_carry_identity_and_engines(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        runner = SweepRunner(n_jobs=None, bench_path=path)
        runner.run_points(points()[:1], n_runs=2, sweep_name="ids")
        [record] = runner_mod.read_bench_records(path)
        assert "timestamp" in record and "run_id" in record
        assert record["engines"] == ["des"]


class TestPoolSharing:
    def test_pool_persists_across_sweeps(self):
        r = SweepRunner(n_jobs=2)
        r.run_points(points()[:1], n_runs=2)
        first = runner_mod._POOL
        assert first is not None
        r.run_points(points()[:2], n_runs=2)
        assert runner_mod._POOL is first    # same executor, no rebuild

    def test_pool_rebuilt_on_size_change(self):
        SweepRunner(n_jobs=2).run_points(points()[:1], n_runs=2)
        first = runner_mod._POOL
        SweepRunner(n_jobs=3).run_points(points()[:1], n_runs=2)
        assert runner_mod._POOL is not first
        assert runner_mod._POOL_WORKERS == 3

    def test_shutdown_pool(self):
        SweepRunner(n_jobs=2).run_points(points()[:1], n_runs=2)
        shutdown_pool()
        assert runner_mod._POOL is None


class TestMapTasks:
    def test_order_preserved(self):
        r = SweepRunner(n_jobs=2)
        assert r.map_tasks(_double, [3, 1, 2]) == [6, 2, 4]

    def test_serial_fallback(self):
        r = SweepRunner(n_jobs=None)
        assert r.map_tasks(_double, [5]) == [10]


def _double(x):
    return 2 * x


class TestValidation:
    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            SweepRunner().run_points(points(), n_runs=0)

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            SweepRunner().run_points([], n_runs=1)

    def test_rejects_negative_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(n_jobs=-2)

    def test_estimate_returns_result_type(self):
        r = estimate_p_loss(tiny(), n_runs=2)
        assert isinstance(r, MonteCarloResult)
        assert r.aggregate is not None
